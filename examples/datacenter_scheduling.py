#!/usr/bin/env python
"""Datacenter scheduling with inferred models.

The paper's motivating scenario (§1, §3.2): a datacenter runs diverse
software on heterogeneous hardware, cannot profile every (job, node-type)
pair, and must still "link data to decisions".  This example:

1. defines four heterogeneous node types (big OoO cores, balanced cores,
   small efficient cores, cache-rich cores) as Table 2 points, each with a
   provisioning cost;
2. boot-straps an integrated model from sparse profiles: historical
   profiles on assorted older hardware, plus each application observed on
   only TWO of the four current node types;
3. uses the model to place each job on the node type with the best
   predicted performance per cost;
4. compares model-driven placement against an oracle (profiles everything)
   and naive uniform placement.
"""

import numpy as np

from repro.core import GeneticSearch, ProfileDataset, ProfileRecord
from repro.profiling import SOFTWARE_VARIABLE_NAMES, profile_application
from repro.uarch import (
    HARDWARE_VARIABLE_NAMES,
    Simulator,
    config_from_levels,
    sample_configs,
)
from repro.workloads import generate_trace, spec2006_suite

SHARD_LENGTH = 5_000

#: Node types as Table 2 level tuples
#: (width, window, assoc, mshr, d$, i$, l2, l2lat, ialu, imul, falu, fmul, ports)
#: and a relative provisioning cost per time unit.
NODE_TYPES = {
    "big-core": ((3, 5, 2, 3, 3, 3, 3, 1, 3, 1, 2, 1, 3), 2.60),
    "balanced": ((2, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1), 1.35),
    "small-efficient": ((0, 0, 1, 1, 0, 0, 0, 4, 0, 0, 0, 0, 0), 0.72),
    "cache-rich": ((1, 2, 3, 2, 3, 3, 4, 0, 1, 0, 1, 0, 1), 1.25),
}


def main() -> None:
    rng = np.random.default_rng(42)
    simulator = Simulator()
    nodes = {
        name: (config_from_levels(levels), cost)
        for name, (levels, cost) in NODE_TYPES.items()
    }

    print("1. sparse profiling")
    print("   - historical profiles on 20 assorted legacy architectures")
    print("   - each application observed on only 2 of the 4 current node types")
    train = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)
    corpus = {}
    node_names = list(nodes)
    legacy = sample_configs(20, rng)
    for k, (app, spec) in enumerate(spec2006_suite().items()):
        trace = generate_trace(spec, 6 * SHARD_LENGTH, seed=3, shard_length=SHARD_LENGTH)
        shards = trace.shards(SHARD_LENGTH)
        profiles = profile_application(trace, SHARD_LENGTH, application=app)
        corpus[app] = (shards, profiles)

        for config in legacy[k::2]:  # half the legacy fleet each
            i = int(rng.integers(0, len(shards)))
            train.add(
                ProfileRecord(
                    app, profiles[i].x, config.as_vector(),
                    simulator.cpi(shards[i], config),
                )
            )
        observed = [node_names[k % 4], node_names[(k + 1) % 4]]
        for node_name in observed:
            config, _ = nodes[node_name]
            for i in range(0, len(shards), 2):
                train.add(
                    ProfileRecord(
                        app, profiles[i].x, config.as_vector(),
                        simulator.cpi(shards[i], config),
                    )
                )
        print(f"   {app:<10s} current-generation profiles: {observed}")

    print("2. inferring the shared hardware-software model ...")
    search = GeneticSearch(population_size=16, seed=1)
    model = search.run(train, generations=4).best_model(train)

    print("3. placing jobs by predicted performance per cost")
    print(f"   {'job':<10s} {'chosen':<16s} {'oracle':<16s} {'pred CPIxcost':>13s} {'true CPIxcost':>13s}")
    chosen_scores, oracle_scores, uniform_scores = [], [], []
    agreements = 0
    for app, (shards, profiles) in corpus.items():
        predicted = {}
        for name, (config, cost) in nodes.items():
            per_shard = [
                model.predict_one(p.x, config.as_vector()) for p in profiles
            ]
            predicted[name] = float(np.mean(per_shard)) * cost
        choice = min(predicted, key=predicted.get)

        true = {
            name: simulator.application_cpi(shards, config) * cost
            for name, (config, cost) in nodes.items()
        }
        oracle = min(true, key=true.get)
        agreements += choice == oracle
        chosen_scores.append(true[choice])
        oracle_scores.append(true[oracle])
        uniform_scores.append(float(np.mean(list(true.values()))))
        print(
            f"   {app:<10s} {choice:<16s} {oracle:<16s} "
            f"{predicted[choice]:13.2f} {true[choice]:13.2f}"
        )

    model_mean = np.mean(chosen_scores)
    oracle_mean = np.mean(oracle_scores)
    uniform_mean = np.mean(uniform_scores)
    print("4. placement quality (mean CPI x cost across jobs; lower is better)")
    print(f"   uniform random placement: {uniform_mean:.2f}")
    print(f"   model-driven placement:   {model_mean:.2f}")
    print(f"   oracle placement:         {oracle_mean:.2f}")
    print(f"   node-type agreement with oracle: {agreements}/{len(corpus)}")
    recovered = (uniform_mean - model_mean) / max(uniform_mean - oracle_mean, 1e-9)
    print(
        f"   the model recovers {100 * recovered:.0f}% of the oracle's advantage "
        "without exhaustive profiling"
    )


if __name__ == "__main__":
    main()
