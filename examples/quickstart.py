#!/usr/bin/env python
"""Quickstart: infer an integrated hardware-software performance model.

This walks the paper's §2-§3 pipeline end to end, at a small scale that
runs in well under a minute:

1. generate synthetic SPEC2006-like applications and break them into
   shards (§2.1);
2. profile each shard's microarchitecture-independent characteristics
   (Table 1);
3. sparsely sample hardware-software interactions on the Table 2 design
   space with the out-of-order timing model;
4. run the genetic search to choose variables, transformations and
   interactions automatically (§3.4);
5. validate the inferred model on held-out application-architecture pairs.
"""

import numpy as np

from repro.core import GeneticSearch, ProfileDataset, ProfileRecord
from repro.profiling import SOFTWARE_VARIABLE_NAMES, profile_application
from repro.uarch import HARDWARE_VARIABLE_NAMES, Simulator, sample_configs
from repro.workloads import generate_trace, spec2006_suite

SHARD_LENGTH = 5_000
CONFIGS_PER_APP = 50


def main() -> None:
    rng = np.random.default_rng(2012)
    simulator = Simulator()

    train = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)
    validate = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)

    print("1. generating + profiling applications ...")
    for name, spec in spec2006_suite().items():
        trace = generate_trace(spec, 6 * SHARD_LENGTH, seed=1, shard_length=SHARD_LENGTH)
        shards = trace.shards(SHARD_LENGTH)
        profiles = profile_application(trace, SHARD_LENGTH, application=name)

        # 2. sparse sampling: each architecture sees one random shard.
        for config in sample_configs(CONFIGS_PER_APP, rng):
            i = int(rng.integers(0, len(shards)))
            cpi = simulator.cpi(shards[i], config)
            record = ProfileRecord(name, profiles[i].x, config.as_vector(), cpi)
            (train if rng.random() < 0.8 else validate).add(record)
    print(f"   {len(train)} training profiles, {len(validate)} validation profiles")

    print("2. genetic search for the model specification ...")
    search = GeneticSearch(population_size=20, seed=7)
    result = search.run(
        train,
        generations=6,
        progress=lambda r: print(
            f"   generation {r.generation}: best mean error {r.best_fitness:.1%}"
        ),
    )

    print("3. fitting + validating the winning specification ...")
    model = result.best_model(train)
    score = model.score(validate)
    print(f"   validation median error: {score['median_error']:.1%}")
    print(f"   predicted-vs-true correlation: {score['correlation']:.3f}")

    print("4. what the search selected (Table 3 style):")
    for transform, variables in model.transform_summary().items():
        if variables:
            print(f"   {transform:<16s} {', '.join(variables)}")

    record = validate.records[0]
    prediction = model.predict_one(record.x, record.y)
    print(
        f"5. single prediction: {record.application} -> "
        f"predicted CPI {prediction:.2f}, measured CPI {record.z:.2f}"
    )


if __name__ == "__main__":
    main()
