#!/usr/bin/env python
"""Adaptive architecture reconfiguration driven by an inferred model.

The paper's opening motivation: "adaptive chips must navigate performance
and power trade-offs" with sparse data (§1), with inferred models as the
foundation for "control mechanisms for reconfigurable architectures".
This example plays that controller:

1. train an integrated model from sparse profiles.  Domain knowledge
   enters exactly as §3.1 describes: the architect knows that ILP
   (producer-consumer distances, x10..x12) interacts with machine width
   (y1) and window (y2), so those product terms are added to the
   hand-specified model — without them no pairwise model can tell a
   streaming phase from a recurrence phase when choosing a width;
2. run an application with strong phase behavior (bwaves: a streaming
   phase that converts width into speed, and a recurrence phase that
   cannot) shard by shard;
3. at each shard, pick the operating point minimizing *predicted*
   CPI x operating cost from a reconfigurable menu;
4. compare, by true simulation, against every *static* choice of
   operating point — adaptation should dominate all of them.
"""

import numpy as np

from repro.core import (
    InferredModel,
    ModelSpec,
    ProfileDataset,
    ProfileRecord,
    manual_general_spec,
)
from repro.profiling import SOFTWARE_VARIABLE_NAMES, profile_application
from repro.uarch import (
    HARDWARE_VARIABLE_NAMES,
    Simulator,
    config_from_levels,
    sample_configs,
)
from repro.workloads import generate_trace, spec2006_suite

SHARD_LENGTH = 5_000

#: Reconfigurable operating points (a big.LITTLE-style menu) with relative
#: energy/area cost per cycle.
OPERATING_POINTS = {
    "wide": ((3, 5, 2, 3, 3, 3, 3, 1, 3, 1, 2, 1, 3), 1.80),
    "balanced": ((2, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1), 1.15),
    "narrow-efficient": ((0, 3, 2, 2, 2, 2, 2, 2, 1, 0, 1, 0, 1), 1.00),
}


def architect_spec() -> ModelSpec:
    """The manual model plus the width/window x ILP interactions an
    architect adds for an adaptation controller (§3.1's domain knowledge)."""
    base = manual_general_spec()
    return ModelSpec(
        transforms=base.transforms,
        interactions=base.interactions
        | {("x10", "y1"), ("x11", "y1"), ("x12", "y1"), ("x10", "y2"), ("x2", "y2")},
    )


def main() -> None:
    rng = np.random.default_rng(23)
    simulator = Simulator()

    print("1. training the integrated model from sparse profiles ...")
    train = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)
    suite = spec2006_suite()
    for name, spec in suite.items():
        trace = generate_trace(spec, 6 * SHARD_LENGTH, seed=5, shard_length=SHARD_LENGTH)
        shards = trace.shards(SHARD_LENGTH)
        profiles = profile_application(trace, SHARD_LENGTH, application=name)
        for config in sample_configs(40, rng):
            i = int(rng.integers(0, len(shards)))
            train.add(
                ProfileRecord(name, profiles[i].x, config.as_vector(),
                              simulator.cpi(shards[i], config))
            )
    model = InferredModel.fit(architect_spec(), train)

    points = {
        name: (config_from_levels(levels), cost)
        for name, (levels, cost) in OPERATING_POINTS.items()
    }

    print("2. running bwaves shard by shard, adapting the operating point")
    trace = generate_trace(suite["bwaves"], 8 * SHARD_LENGTH, seed=77, shard_length=SHARD_LENGTH)
    shards = trace.shards(SHARD_LENGTH)
    profiles = profile_application(trace, SHARD_LENGTH, application="bwaves")

    print(f"   {'shard':>6s} {'adaptive point':<18s} {'true CPIxcost':>13s}")
    adaptive_total = 0.0
    static_totals = {name: 0.0 for name in points}
    switches = 0
    last = None
    for i, (shard, profile) in enumerate(zip(shards, profiles)):
        predicted = {
            name: model.predict_one(profile.x, config.as_vector()) * cost
            for name, (config, cost) in points.items()
        }
        choice = min(predicted, key=predicted.get)
        if last is not None and choice != last:
            switches += 1
        last = choice

        config, cost = points[choice]
        adaptive_score = simulator.cpi(shard, config) * cost
        adaptive_total += adaptive_score * len(shard)
        for name, (static_config, static_cost) in points.items():
            static_totals[name] += (
                simulator.cpi(shard, static_config) * static_cost * len(shard)
            )
        print(f"   {i:>6d} {choice:<18s} {adaptive_score:>13.3f}")

    print("3. results (cost-weighted cycles; lower is better)")
    for name, total in static_totals.items():
        print(f"   static {name:<18s} {total:12,.0f}   ({total / adaptive_total:.3f}x adaptive)")
    print(f"   adaptive ({switches} reconfigurations) {adaptive_total:10,.0f}")
    best_static = min(static_totals.values())
    print(
        f"   adaptation beats the best static point by "
        f"{best_static / adaptive_total - 1:.1%} and the worst by "
        f"{max(static_totals.values()) / adaptive_total - 1:.1%}"
    )
    print(
        "   (the controller upshifts for the streaming phase, which can\n"
        "   convert width into speed, and downshifts for the recurrence\n"
        "   phase, which cannot — §1's 'adapt structural resources to\n"
        "   dynamic application behavior', priced honestly)"
    )


if __name__ == "__main__":
    main()
