#!/usr/bin/env python
"""System dynamics: automatic model updates as new software arrives.

The paper's §3.2-§3.3 inductive flow, live:

* a steady-state system has profiled a benchmark suite and trained model M;
* a *familiar* newcomer (a fresh job running known software) arrives:
  its predictions are already accurate, so it is absorbed silently;
* a *novel* newcomer (FP-heavy bwaves, deliberately excluded from the
  boot-strap suite) arrives: predictions miss, the manager waits for the
  10-20 extra profiles the paper prescribes, then re-specifies and refits;
* after the update, the newcomer's predictions are re-checked.
"""

import numpy as np

from repro.core import GeneticSearch, ModelManager, ProfileDataset, ProfileRecord
from repro.profiling import SOFTWARE_VARIABLE_NAMES, profile_application
from repro.uarch import HARDWARE_VARIABLE_NAMES, Simulator, sample_configs
from repro.workloads import application_spec, generate_trace

SHARD_LENGTH = 5_000
BOOTSTRAP_APPS = ("astar", "bzip2", "gemsFDTD", "hmmer", "omnetpp", "sjeng")


def profile_records(app_name, spec, simulator, configs, rng, seed=11):
    trace = generate_trace(spec, 6 * SHARD_LENGTH, seed=seed, shard_length=SHARD_LENGTH)
    shards = trace.shards(SHARD_LENGTH)
    profiles = profile_application(trace, SHARD_LENGTH, application=app_name)
    records = []
    for config in configs:
        i = int(rng.integers(0, len(shards)))
        records.append(
            ProfileRecord(
                app_name, profiles[i].x, config.as_vector(),
                simulator.cpi(shards[i], config),
            )
        )
    return records


def main() -> None:
    rng = np.random.default_rng(8)
    simulator = Simulator()

    print("1. boot-strapping the steady state (6 applications, no bwaves)")
    dataset = ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)
    for app in BOOTSTRAP_APPS:
        records = profile_records(
            app, application_spec(app), simulator, sample_configs(40, rng), rng
        )
        dataset.extend(records)

    manager = ModelManager(
        dataset,
        search=GeneticSearch(population_size=16, seed=3),
        generations=4,
        update_generations=2,
        min_update_profiles=12,
        # "The desired accuracy depends on how predictions are used. For
        # example, median errors less than 10-15% may be sufficient to make
        # coarse-grained resource allocations." (§3.2)
        error_tolerance=2.5,
    )
    manager.train()
    print(f"   steady-state mean error: {manager.steady_state_error:.1%}")

    # Paper, footnote 3: "a new application could arise from new jobs,
    # input data, or code optimizations."  The mildest case is a new *job*:
    # a fresh dynamic instance of known software.
    print("2. familiar perturbation: a new sjeng job (same code, new run)")
    outcome = manager.observe(
        profile_records("sjeng-job2", application_spec("sjeng"), simulator,
                        sample_configs(6, rng), rng, seed=21)
    )
    print(
        f"   median error {outcome.median_error:.1%} vs steady-state "
        f"{outcome.steady_state_error:.1%} -> accurate={outcome.accurate}, "
        f"update={outcome.update_triggered}"
    )

    print("3. novel perturbation: bwaves (the paper's outlier) arrives")
    bwaves = application_spec("bwaves")
    first = manager.observe(
        profile_records("bwaves", bwaves, simulator, sample_configs(6, rng), rng, seed=22)
    )
    print(
        f"   first 6 profiles: median error {first.median_error:.1%} "
        f"-> accurate={first.accurate}, update={first.update_triggered} "
        f"(pending={manager.pending_profiles('bwaves')})"
    )
    second = manager.observe(
        profile_records("bwaves", bwaves, simulator, sample_configs(8, rng), rng, seed=23)
    )
    print(
        f"   8 more profiles: update_triggered={second.update_triggered} "
        f"(threshold: {manager.min_update_profiles})"
    )

    print("4. post-update check on fresh bwaves pairs")
    probe_records = profile_records(
        "bwaves", bwaves, simulator, sample_configs(10, rng), rng, seed=24
    )
    probe = ProfileDataset(dataset.x_names, dataset.y_names, probe_records)
    score = manager.model.score(probe)
    print(
        f"   median error {score['median_error']:.1%}, "
        f"correlation {score['correlation']:.3f}"
    )
    print(
        "   (bwaves remains harder than interpolation — §4.5 — but the "
        "update pulled it into a usable range)"
    )


if __name__ == "__main__":
    main()
