#!/usr/bin/env python
"""Coordinated hardware-software tuning for sparse matrix-vector multiply.

The paper's §5 case study: given a sparse matrix and a reconfigurable
cache, choose the register-blocking (software) and the cache geometry
(hardware) *together*.  Domain-specific software parameters — block rows,
block columns, fill ratio — replace the thirteen instruction-level
characteristics, and a compact inferred model makes the search tractable.

Run for any Table 4 matrix:  python spmv_autotuning.py [matrix-name]
"""

import sys

import numpy as np

from repro.spmv import (
    MATRIX_NAMES,
    SpMVSpace,
    TuningSearch,
    fit_spmv_model,
    table4_matrix,
    tuning_cache_candidates,
)


def main(matrix_name: str = "nasasrb") -> None:
    if matrix_name not in MATRIX_NAMES:
        raise SystemExit(f"unknown matrix {matrix_name!r}; choose from {MATRIX_NAMES}")
    rng = np.random.default_rng(5)
    matrix = table4_matrix(matrix_name, seed=0)
    space = SpMVSpace(matrix)
    print(f"matrix {matrix.name}: {matrix.n_rows}x{matrix.n_cols}, nnz={matrix.nnz}")

    # --- fill-ratio landscape (the software cost surface) -------------------
    print("\nfill ratio by block size (rows down, cols across):")
    print("      " + "".join(f"{c:>6d}" for c in range(1, 9)))
    for r in range(1, 9):
        row = "".join(f"{space.fill_ratio(r, c):6.2f}" for c in range(1, 9))
        print(f"  r={r} {row}")

    # --- train the domain-specific model ------------------------------------
    print("\nsampling 200 (block size, cache) profiles + fitting the model ...")
    train = space.sample_dataset(200, rng, "mflops")
    model = fit_spmv_model(train)
    holdout = space.sample_dataset(60, rng, "mflops")
    score = model.score(holdout)
    print(
        f"model: median error {score['median_error']:.1%}, "
        f"correlation {score['correlation']:.3f} on held-out samples"
    )

    # --- the three tuning strategies (Figure 16) ----------------------------
    search = TuningSearch(space, model, verify_top=5)
    caches = tuning_cache_candidates(30, rng)
    baseline = search.baseline()
    app = search.application_tuning()
    arch = search.architecture_tuning(caches)
    coord = search.coordinated_tuning(caches)

    print("\ntuning results (true simulated values):")
    print(f"  {'strategy':<14s} {'block':>6s} {'cache':<28s} {'Mflop/s':>8s} {'speedup':>8s} {'nJ/Flop':>8s}")
    for result in (baseline, app, arch, coord):
        print(
            f"  {result.strategy:<14s} {result.r}x{result.c:<4d} "
            f"{result.cache.key:<28s} {result.mflops:8.1f} "
            f"{result.speedup:8.2f} {result.nj_per_flop:8.2f}"
        )

    print(
        "\nthe paper's qualitative result: application tuning is cheap and\n"
        "saves energy; architecture tuning is faster but burns energy on\n"
        "wider lines; coordinated tuning compounds the speedups while\n"
        "keeping energy at or below the baseline."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "nasasrb")
