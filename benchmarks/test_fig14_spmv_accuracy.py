"""Figure 14 — SpMV performance and power model accuracy (all 11 matrices)."""

from conftest import print_report

from repro.experiments import fig14_spmv
from repro.spmv import MATRIX_NAMES, TABLE4


def test_table4_suite_printed(scale):
    """Table 4 — the matrix suite itself (paper values vs. synthetic)."""
    from repro.spmv import table4_suite

    suite = table4_suite(seed=0)
    lines = [
        "Table 4 — sparse matrix suite (paper-scale -> synthetic stand-in)",
        f"  {'matrix':<10s} {'paper N':>8s} {'paper nnz':>9s} "
        f"{'ours N':>7s} {'ours nnz':>8s} {'sparsity':>9s}  structure",
    ]
    for info in TABLE4:
        m = suite[info.name]
        lines.append(
            f"  {info.name:<10s} {info.paper_dimension:>8d} "
            f"{info.paper_nnz:>9d} {m.n_rows:>7d} {m.nnz:>8d} "
            f"{m.sparsity:>9.2e}  {info.structure}"
        )
    print_report("\n".join(lines))
    assert len(suite) == 11


def test_fig14_spmv_accuracy(benchmark, scale):
    result = benchmark.pedantic(
        fig14_spmv.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig14_spmv.report(result))

    assert set(result.per_matrix) == set(MATRIX_NAMES)
    # Shape: single-digit median errors for both targets (paper: 4-6%).
    assert result.median_of_medians_perf < 0.10
    assert result.median_of_medians_power < 0.10
    # Every matrix is predicted usefully.
    for name, acc in result.per_matrix.items():
        assert acc.performance.median < 0.20, name
        assert acc.power.median < 0.20, name
        assert acc.performance_rho > 0.85, name
