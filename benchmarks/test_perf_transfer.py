"""Benchmark: cross-backend transfer — warm-started vs cold GA search.

The transfer mechanism (DESIGN.md §13) is only worth shipping if
warm-starting backend B's genetic search from a specification population
evolved on backend A reliably reaches the cold arm's final fitness in
fewer generations.  This benchmark runs the same paired-trial study as
``python -m repro.experiments transfer`` — CPU-searched source
population seeding a GPU-backend search — and gates the aggregate
generations-to-target ratio.

Writes ``BENCH_transfer.json`` at the repository root (gated against the
committed baseline by ``scripts/check_bench.py``: ``speedup`` — total
cold generations over total warm generations across the paired trials —
is floor-gated; the raw millisecond timings, generation counts, and
shared-representation scores are informational) and dumps the obs
registry to ``reports/metrics_transfer.jsonl``.

Run from the repository root::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_transfer.py -q

``REPRO_BENCH_SMOKE=1`` drops to the small experiment scale for CI.
Both arms are fully seeded, so a given scale reproduces bit-identical
generation counts — the gate is deterministic, only the timings vary.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.transfer import transfer_search
from repro.experiments.common import (
    SCALES,
    build_general_dataset,
    run_genetic_search,
)
from repro.experiments.transfer_demo import TRANSFER_SIZES

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_transfer.json"

SCALE = SCALES["small" if SMOKE else "bench"]

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    if not RESULTS:
        return
    payload = {
        "smoke": SMOKE,
        "scale": SCALE.name,
        **RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_dir = obs.default_report_dir()
    if report_dir is not None and obs.enabled():
        obs.export_jsonl(report_dir / "metrics_transfer.jsonl", run="transfer")


class TestTransferPerf:
    def test_warm_start_beats_cold(self):
        sizes = TRANSFER_SIZES[SCALE.name]

        start = time.perf_counter()
        train_cpu, _ = build_general_dataset(SCALE, backend="cpu")
        source = run_genetic_search(train_cpu, SCALE, tag="main")
        source_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        train_gpu, val_gpu = build_general_dataset(SCALE, backend="gpu")
        target_data_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        outcome = transfer_search(
            source,
            train_gpu,
            val_gpu,
            source_backend="cpu",
            target_backend="gpu",
            population_size=sizes["population"],
            generations=sizes["generations"],
            seed=sizes["seed"],
            pairs=sizes["pairs"],
        )
        transfer_ms = (time.perf_counter() - start) * 1e3

        wins = sum(
            t.warm_generations < t.cold_generations for t in outcome.trials
        )
        RESULTS["transfer"] = {
            "speedup": round(outcome.speedup, 2),
            "cold_generations_total": outcome.cold_generations,
            "warm_generations_total": outcome.warm_generations,
            "generations_saved": outcome.generations_saved,
            "pairs": len(outcome.trials),
            "trials_won": wins,
            "shared_spec_correlation": round(
                outcome.shared_spec_score["correlation"], 3
            ),
            "shared_spec_median_error": round(
                outcome.shared_spec_score["median_error"], 4
            ),
            "source_search_ms": round(source_ms, 1),
            "target_dataset_ms": round(target_data_ms, 1),
            "transfer_study_ms": round(transfer_ms, 1),
        }

        # The study's headline claim, at every scale: warm-starting from
        # the CPU-searched population reaches the cold arm's final best
        # in fewer total generations, winning the majority of trials.
        assert outcome.warm_generations < outcome.cold_generations, (
            f"warm start needed {outcome.warm_generations} total "
            f"generations vs cold {outcome.cold_generations}"
        )
        assert wins * 2 > len(outcome.trials), (
            f"warm start won only {wins}/{len(outcome.trials)} paired trials"
        )
        if not SMOKE:
            assert outcome.speedup >= 1.5, (
                f"cross-backend warm start must be >= 1.5x fewer "
                f"generations-to-target, measured {outcome.speedup:.2f}x"
            )
            assert outcome.shared_spec_score["correlation"] >= 0.5, (
                "shared-representation refit lost rank correlation on the "
                f"GPU backend: {outcome.shared_spec_score['correlation']:.3f}"
            )
