"""Figure 15 — profiled vs. predicted block-size topology (nasasrb)."""

from conftest import print_report

from repro.experiments import fig15_topology


def test_fig15_topology(benchmark, scale):
    result = benchmark.pedantic(
        fig15_topology.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig15_topology.report(result))

    # Shape: the predicted topology tracks the profiled one.
    assert result.correlation > 0.8
    # The model finds a genuinely good block size: its predicted best is
    # within the true top performers.
    assert result.top_set_overlap >= 1
    # nasasrb's natural blocking is 3/6-aligned; the true best reflects it.
    assert result.true_best[0] in (3, 6) and result.true_best[1] in (3, 6)
    # Discontinuities: blockings adjacent to 6x6 that profile worse than
    # 1x1 are also predicted worse than 1x1.
    assert result.discontinuity_captured
