"""Benchmark: drift-triggered re-tuning vs from-scratch exhaustive search.

The online re-tuning loop (DESIGN.md §12) is only deployable if a
model-guided re-tune is much cheaper than re-running the exhaustive
coordinated search it replaces.  This benchmark times both on the same
candidate pool over a fresh :class:`~repro.spmv.SpMVSpace` per arm
(memoization would otherwise contaminate the comparison):

1. **Exhaustive** — truly simulate every (r, c, cache) candidate, the
   offline bootstrap-tuning cost.
2. **Retune** — rank all candidates with a fitted SpMV model, verify the
   top-5 with true simulations, re-measure the incumbent, and account
   the switch-over cost (what :class:`repro.stream.OnlineRetuner` runs
   after every re-specification).

Writes ``BENCH_tuning.json`` at the repository root (gated against the
committed baseline by ``scripts/check_bench.py``: ``speedup`` is
floor-gated, the raw millisecond timings and the quality fraction are
informational) and dumps the obs registry to
``reports/metrics_tuning.jsonl``.

Run from the repository root::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_retune.py -q

``REPRO_BENCH_SMOKE=1`` shrinks the candidate pool and reps for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.spmv import TuningSearch, default_cache, fit_spmv_model
from repro.spmv.matrices import fem_matrix
from repro.spmv.space import SpMVSpace
from repro.stream import OnlineRetuner, SpMVStreamSource, TuningState

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_tuning.json"

N_CACHES = 6 if SMOKE else 10
TRAIN_RECORDS = 48 if SMOKE else 120
REPS = 1 if SMOKE else 3

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    if not RESULTS:
        return
    payload = {
        "smoke": SMOKE,
        "n_caches": N_CACHES,
        "reps": REPS,
        **RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_dir = obs.default_report_dir()
    if report_dir is not None and obs.enabled():
        obs.export_jsonl(report_dir / "metrics_tuning.jsonl", run="tuning")


@pytest.fixture(scope="module")
def workload():
    """Matrix, candidate pool, fitted model, and a warm trace store."""
    matrix = fem_matrix(40, 3, 4, 8, 13, "bench-tuning")
    source = SpMVStreamSource(matrix, seed=0, n_caches=N_CACHES)
    model = fit_spmv_model(
        source.sample(TRAIN_RECORDS, np.random.default_rng(3))
    )
    # Warm pass: every candidate simulated once on a throwaway space so
    # both timed arms measure simulation cost, not one-off trace builds,
    # and the true optimum is known for the quality check.
    warm = SpMVSpace(matrix, seed=0)
    truth = {
        (r, c, cache.key): warm.evaluate(r, c, cache).mflops
        for r, c, cache in source.candidates
    }
    incumbent = TuningState(1, 1, default_cache(), warm.evaluate(1, 1, default_cache()).mflops)
    return dict(
        matrix=matrix,
        source=source,
        model=model,
        best_true=max(truth.values()),
        incumbent=incumbent,
    )


class TestRetunePerf:
    def test_retune_vs_exhaustive(self, workload):
        source = workload["source"]
        candidates = source.candidates

        # Arm 1: from-scratch exhaustive coordinated search.
        exhaustive = []
        for _ in range(REPS):
            space = SpMVSpace(workload["matrix"], seed=0)
            start = time.perf_counter()
            search = TuningSearch(space, model=None)
            best_ex = search.choose_verified(candidates)
            exhaustive.append(time.perf_counter() - start)
        exhaustive_s = min(exhaustive)

        # Arm 2: model-guided retune (rank all, verify top-5, re-measure
        # the incumbent, decide against the amortized switch-over cost).
        retune = []
        for _ in range(REPS):
            space = SpMVSpace(workload["matrix"], seed=0)
            retuner = OnlineRetuner(lambda: space, source.caches)
            retuner.current = workload["incumbent"]
            start = time.perf_counter()
            decision = retuner.retune(workload["model"], trigger="manual")
            retune.append(time.perf_counter() - start)
        retune_s = min(retune)

        speedup = exhaustive_s / retune_s
        quality = decision.candidate.mflops / workload["best_true"]
        RESULTS["retune_vs_exhaustive"] = {
            "exhaustive_ms": round(exhaustive_s * 1e3, 2),
            "retune_ms": round(retune_s * 1e3, 2),
            "speedup": round(speedup, 1),
            "candidates": len(candidates),
            "verified_per_retune": retuner.verify_top + 1,  # top-N + incumbent
            "quality_fraction": round(quality, 4),
        }
        # The reported winner is always a true measurement, and the
        # exhaustive arm found the known optimum.
        assert decision.verified
        assert best_ex.mflops == workload["best_true"]
        if not SMOKE:
            assert speedup >= 5.0, (
                f"model-guided retune must be >= 5x cheaper than exhaustive "
                f"search, measured {speedup:.1f}x "
                f"({retune_s * 1e3:.1f} ms vs {exhaustive_s * 1e3:.1f} ms)"
            )
            assert quality >= 0.5, (
                f"verified retune winner reached only {quality:.2f} of the "
                f"true optimum"
            )
