"""Validation — the interval model against cycle-level simulation."""

import numpy as np
from conftest import print_report

from repro.experiments import val_timing


def test_val_timing(benchmark, scale):
    result = benchmark.pedantic(val_timing.run, args=(scale,), rounds=1, iterations=1)
    print_report(val_timing.report(result))

    # The fast model must rank architectures like the structural simulator
    # for most applications, and its magnitudes must stay in a modest band.
    pearsons = list(result.per_app_pearson.values())
    assert np.median(pearsons) > 0.8
    assert min(pearsons) > 0.6
    assert 0.3 < np.median(result.ratios) < 2.0
    assert (result.ratios > 0.25).all() and (result.ratios < 4.0).all()
