"""Figure 16 — application / architecture / coordinated tuning."""

from conftest import print_report

from repro.experiments import fig16_tuning


def test_fig16_tuning(benchmark, scale):
    result = benchmark.pedantic(
        fig16_tuning.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig16_tuning.report(result))

    # Shape (paper: 1.6x / 2.7x / 5.0x): coordinated tuning beats either
    # strategy alone, and architecture tuning beats application tuning.
    assert result.gmean_coord_speedup > result.gmean_arch_speedup
    assert result.gmean_coord_speedup > result.gmean_app_speedup
    assert result.gmean_arch_speedup > result.gmean_app_speedup
    assert result.gmean_app_speedup > 1.1
    assert result.gmean_coord_speedup > 2.5

    # Energy (paper: 17 -> 11 with app tuning; ~25 with arch tuning;
    # coordinated ~0.9x): application tuning reduces energy, architecture
    # tuning increases it, coordinated lands at-or-below baseline.
    assert result.mean_app_nj < result.mean_baseline_nj
    assert result.mean_arch_nj > result.mean_baseline_nj
    assert result.mean_coord_nj < result.mean_arch_nj
    assert result.mean_coord_nj <= 1.1 * result.mean_baseline_nj
