"""Table 3 — transformations selected by the converged genetic search."""

from conftest import print_report

from repro.experiments import table3_transforms


def test_table3_transforms(benchmark, scale):
    result = benchmark.pedantic(
        table3_transforms.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(table3_transforms.report(result))

    # Shape: the search uses the whole transformation vocabulary — some
    # variables dropped, some linear, some non-linear.
    used_rows = [label for label, names in result.rows.items() if names]
    assert len(used_rows) >= 3
    # Not everything survives: at least one variable is un-used, echoing
    # the paper's dropped y12.
    assert result.rows["un-used"]
    # And non-linear transforms are in play (paper: y2 needs splines).
    nonlinear = (
        result.rows["poly, degree 2"]
        + result.rows["poly, degree 3"]
        + result.rows["spline, 3 knots"]
    )
    assert nonlinear
