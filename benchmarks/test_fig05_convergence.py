"""Figure 5 — genetic-search convergence."""

from conftest import print_report

from repro.experiments import fig05_convergence


def test_fig05_convergence(benchmark, scale):
    result = benchmark.pedantic(
        fig05_convergence.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig05_convergence.report(result))

    # Shape: accuracy improves over generations (errors fall).
    assert result.sum_errors[-1] <= result.sum_errors[0]
    # Useful models appear after only a few generations: the best model is
    # already in single-digit-per-app territory early on.
    assert min(result.best_fitness) < 0.25
