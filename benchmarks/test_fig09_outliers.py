"""Figure 9 — bwaves as a behavioral and performance outlier."""

from conftest import print_report

from repro.experiments import fig09_outliers


def test_fig09_outliers(benchmark, scale):
    result = benchmark.pedantic(
        fig09_outliers.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig09_outliers.report(result))

    # Shape: sjeng resembles its training set; bwaves does not.
    assert result.bwaves_max_delta > 2.0 * result.sjeng_max_delta
    assert result.bwaves_max_delta > 2.0

    # Directionality (paper): bwaves has more taken branches (x2) and FP
    # ops (x3, x4); fewer integer (x6) and memory (x7) operations.
    deltas = result.deltas["bwaves"]
    assert deltas[1] > 0 and deltas[2] > 0 and deltas[3] > 0
    assert deltas[5] < 0 and deltas[6] < 0

    # Performance: bwaves sits below the other applications' CPI cluster
    # and spreads differently (bimodal in the paper).
    assert result.cpi_bwaves.mean() < result.cpi_others.mean()
    assert result.bimodality_gap > 1.2
