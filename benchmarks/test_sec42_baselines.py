"""§4.2 — automated genetic search vs. manual and stepwise baselines."""

from conftest import print_report

from repro.experiments import sec42_baselines


def test_sec42_baselines(benchmark, scale):
    result = benchmark.pedantic(
        sec42_baselines.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(sec42_baselines.report(result))

    # Shape: the genetic search beats the hand-specified model (paper: by
    # ~10% relative).
    assert result.genetic_error < result.manual_error
    # And all approaches produce optimization-grade correlations.
    assert result.genetic_rho > 0.85
