"""§4.3 — reduced profiling costs from the integrated model."""

from conftest import print_report

from repro.experiments import sec43_cost


def test_sec43_cost(benchmark, scale):
    result = benchmark.pedantic(
        sec43_cost.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(sec43_cost.report(result))

    # Shape: at every budget the integrated model is at least as accurate
    # as per-application hardware-only models on average.
    wins = sum(
        ie <= pe
        for ie, pe in zip(result.integrated_errors, result.per_app_errors)
    )
    assert wins >= len(result.budgets) - 1

    # And it reaches the accuracy target with fewer profiles per app
    # (paper: 2-4x fewer).
    if result.cost_reduction is not None:
        assert result.cost_reduction >= 2.0
    else:
        assert result.integrated_budget_at_target is not None
