"""Figure 3 — variance stabilization of long-tailed locality measures."""

from conftest import print_report

from repro.experiments import fig03_variance


def test_fig03_variance(benchmark, scale):
    result = benchmark.pedantic(
        fig03_variance.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig03_variance.report(result))

    # Shape: raw sums are strongly right-skewed; the power ladder fixes it.
    assert result.raw_skewness > 1.0
    assert abs(result.transformed_skewness) < 0.6 * result.raw_skewness
    # The automatic ladder reaches for a strong root (paper uses 1/5).
    assert result.chosen_power >= 3
    # Outliers an order of magnitude above the common case.
    assert result.tail_ratio > 5.0
