"""Benchmark: the online serving subsystem under load.

Boots the full service (genetic bootstrap → registry publish → TCP server
with micro-batching), then measures three things the ISSUE acceptance
criteria name:

1. **Throughput** — the load generator drives concurrent single-profile
   predictions; non-smoke runs assert >= 1000 predictions/sec sustained.
2. **Batching equivalence** — every response under load is bit-identical
   to the sequential ``predict_one`` answer of the model version that
   served it.
3. **Live update** — an outlier application triggers a genetic
   re-specification mid-traffic; the swap must complete with zero failed
   in-flight requests and a monotonically increased version.

Writes latency percentiles (p50/p95/p99), throughput, and the server-side
batch-occupancy histogram to ``BENCH_serve.json`` at the repository root.

Run from the repository root::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_serve.py -q

``REPRO_BENCH_SMOKE=1`` shrinks the load and skips the throughput floor so
CI can exercise the path quickly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.serve import (
    BatchConfig,
    LoadGenerator,
    ModelKey,
    ServeClient,
    ServerThread,
    build_service,
    build_sharded_service,
    demo_dataset,
    outlier_profiles,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

CONCURRENCY = 8 if SMOKE else 32
REQUESTS = 2_000 if SMOKE else 20_000
UPDATE_TRAFFIC = 500 if SMOKE else 4_000

SHARDS = 2 if SMOKE else 8
SHARD_REQUESTS = 2_000 if SMOKE else 40_000
SHARD_PROCESSES = 2 if SMOKE else 4
SOAK_CLIENTS = 200 if SMOKE else 4_000

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    if not RESULTS:
        return
    payload = {
        "smoke": SMOKE,
        "concurrency": CONCURRENCY,
        "requests": REQUESTS,
        **RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_dir = obs.default_report_dir()
    if report_dir is not None and obs.enabled():
        obs.export_jsonl(report_dir / "metrics_serve.jsonl", run="serve")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    server, serving, registry = build_service(
        demo_dataset(n_apps=4, n_per_app=30, seed=0),
        tmp_path_factory.mktemp("registry"),
        generations=2,
        update_generations=1,
        population_size=8,
        min_update_profiles=10,
        batch_config=BatchConfig(max_batch=64, max_latency_s=0.002),
    )
    with ServerThread(server) as thread:
        yield thread, server, serving, registry
    serving.close()


def _request_rows(n: int, n_vars: int = 5, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(loc=0.8, scale=0.6, size=(n, n_vars))


class TestServeThroughput:
    def test_load_generator_sustains_floor(self, service):
        thread, server, *_ = service
        rows = _request_rows(256)
        report = LoadGenerator(
            "127.0.0.1", thread.port, rows, concurrency=CONCURRENCY
        ).run(REQUESTS)

        assert report.failed == 0
        batching = report.server_stats["batching"]
        RESULTS["load"] = {
            "throughput_rps": report.throughput_rps,
            "latency_ms": report.latency_ms,
            "requests": report.requests,
            "failed": report.failed,
            "mean_batch_occupancy": batching["mean_occupancy"],
            "batch_occupancy_histogram": batching["occupancy_histogram"],
            "batching_ticks": batching["ticks"],
        }
        if not SMOKE:
            assert report.throughput_rps >= 1000.0, (
                f"expected >= 1000 predictions/sec, measured "
                f"{report.throughput_rps}"
            )
        # Micro-batching actually coalesced concurrent requests.
        assert batching["mean_occupancy"] > 1.0

    def test_batched_responses_bit_identical_to_sequential(self, service):
        thread, server, *_ = service
        version, model = server.slot.get()
        rows = _request_rows(64, seed=2)

        # Concurrent clients (batched server-side) ...
        results: dict = {}

        def drive(indices):
            with ServeClient(port=thread.port) as client:
                for i in indices:
                    results[i] = client.predict_row(rows[i].tolist())

        chunks = np.array_split(np.arange(len(rows)), 8)
        threads = [
            threading.Thread(target=drive, args=(chunk,)) for chunk in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # ... against the sequential reference, per served version.
        mismatches = 0
        for i, reply in results.items():
            assert reply["model_version"] == version
            expected = model.predict_one(rows[i][:3], rows[i][3:])
            if reply["prediction"] != expected:
                mismatches += 1
        RESULTS["equivalence"] = {
            "rows_checked": len(results),
            "mismatches": mismatches,
        }
        assert mismatches == 0

    def test_live_update_zero_failed_requests(self, service):
        thread, server, serving, registry = service
        v_before = server.slot.version
        rows = _request_rows(128, seed=3)
        failures = []
        versions_seen = set()
        stop = threading.Event()

        def traffic():
            with ServeClient(port=thread.port) as client:
                sent = 0
                while sent < UPDATE_TRAFFIC and not stop.is_set():
                    try:
                        reply = client.predict_row(
                            rows[sent % len(rows)].tolist()
                        )
                        versions_seen.add(reply["model_version"])
                    except Exception as exc:  # any failure is a finding
                        failures.append(repr(exc))
                    sent += 1

        workers = [threading.Thread(target=traffic) for _ in range(4)]
        for w in workers:
            w.start()

        # Mid-traffic: a behaviorally new application forces a genetic
        # re-specification and an atomic model swap.
        with ServeClient(port=thread.port) as client:
            profiles = [
                {"x": p.x.tolist(), "y": p.y.tolist(), "z": p.z}
                for p in outlier_profiles("hot-new-app", n=12)
            ]
            reply = client.observe("hot-new-app", profiles)
            assert reply["update_scheduled"], (
                "outlier application failed to trigger an update: "
                f"{reply}"
            )
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                stats = client.stats()
                updates = stats["updates"]
                if updates["updates_completed"] or updates["updates_failed"]:
                    break
                time.sleep(0.05)

        stop.set()
        for w in workers:
            w.join(60)
        v_after = server.slot.version

        RESULTS["live_update"] = {
            "version_before": v_before,
            "version_after": v_after,
            "traffic_requests": UPDATE_TRAFFIC * 4,
            "failed_during_update": len(failures),
            "versions_observed": sorted(versions_seen),
            "updates_completed": serving.stats.updates_completed,
        }
        assert not failures, f"requests failed during update: {failures[:3]}"
        assert serving.stats.updates_failed == 0
        assert v_after == v_before + 1
        assert versions_seen <= {v_before, v_after}
        # Durable too, not just live.
        assert registry.versions(ModelKey("demo", "suite"))[-1] == v_after


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    supervisor = build_sharded_service(
        demo_dataset(n_apps=4, n_per_app=30, seed=0),
        tmp_path_factory.mktemp("registry_sharded"),
        n_shards=SHARDS,
        generations=2,
        update_generations=1,
        population_size=8,
        min_update_profiles=10,
        batch_config=BatchConfig(max_batch=64, max_latency_s=0.002),
    )
    with supervisor:
        yield supervisor


class TestShardedServe:
    """The sharded fleet under multi-process load.

    Results land under ``RESULTS["sharded"]``.  ``speedup_vs_single``
    and the per-shard split are recorded as *informational* fields (see
    ``scripts/check_bench.py``): parallel speedup is a property of the
    host's core count (``cores`` is recorded alongside), and per-shard
    balance is kernel scheduling luck.  The >= 5x acceptance assert
    therefore only arms on machines with >= 8 cores.
    """

    def test_fleet_throughput_multiprocess_load(self, fleet):
        rows = _request_rows(256)
        report = LoadGenerator(
            "127.0.0.1",
            fleet.port,
            rows,
            concurrency=CONCURRENCY,
            processes=SHARD_PROCESSES,
        ).run(SHARD_REQUESTS)
        assert report.failed == 0

        stats = fleet.fleet_stats()
        assert stats["live"] == SHARDS
        # Every shard serves the same published version.
        assert len(stats["versions"]) == 1

        per_shard = {}
        for shard_id, s in stats["per_shard"].items():
            if not s.get("ok"):
                continue
            per_shard[shard_id] = {
                "requests": s["requests"],
                "predictions": s["predictions"],
                "mean_batch_occupancy": s["batching"]["mean_occupancy"],
            }
        single_rps = RESULTS.get("load", {}).get("throughput_rps", 0.0)
        speedup = (
            round(report.throughput_rps / single_rps, 2) if single_rps else 0.0
        )
        RESULTS["sharded"] = {
            "shards": SHARDS,
            "cores": os.cpu_count(),
            "mode": fleet.mode,
            "driver_processes": SHARD_PROCESSES,
            "load": {
                "throughput_rps": report.throughput_rps,
                "latency_ms": report.latency_ms,
                "requests": report.requests,
                "failed": report.failed,
            },
            "speedup_vs_single": speedup,
            "per_shard": per_shard,
        }
        if not SMOKE:
            assert report.throughput_rps >= 1000.0
        if not SMOKE and (os.cpu_count() or 1) >= 8:
            assert speedup >= 5.0, (
                f"expected >= 5x over single-process serving on an "
                f"{os.cpu_count()}-core host, measured {speedup}x"
            )

    def test_fleet_soak_connection_churn(self, fleet):
        rows = _request_rows(128, seed=5)
        report = LoadGenerator(
            "127.0.0.1",
            fleet.port,
            rows,
            concurrency=CONCURRENCY,
            processes=SHARD_PROCESSES,
        ).soak(SOAK_CLIENTS, requests_per_client=4)
        assert report.failed == 0
        # Connection churn really happened: one TCP lifetime per client.
        assert report.connections >= SOAK_CLIENTS
        RESULTS.setdefault("sharded", {})["soak"] = {
            "clients": report.clients,
            "connections": report.connections,
            "requests": report.requests,
            "failed": report.failed,
            "throughput_rps": report.throughput_rps,
        }
