"""Benchmark: the streaming re-specification subsystem.

Measures the two numbers the refresh/respec split lives on:

1. **Ingest throughput** — observations folded per second through the
   full ingest path (prequential scoring, Gram rank-k update, per-batch
   coefficient refresh).
2. **Refresh vs re-spec cost** — a coefficient refresh is a p×p solve
   over the accumulated blocks; a re-specification is a warm-started GA
   pass plus a full state rebuild.  The acceptance criterion is a >= 10x
   gap (in practice it is orders of magnitude), which is what makes
   refresh-on-every-batch a sane default.

Writes ``BENCH_stream.json`` at the repository root (gated against the
committed baseline by ``scripts/check_bench.py``: ``observations_per_sec``
and ``speedup`` are floor-gated, the raw millisecond timings are
informational) and dumps the obs registry to
``reports/metrics_stream.jsonl``.

Run from the repository root::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_stream.py -q

``REPRO_BENCH_SMOKE=1`` shrinks the batch count for CI.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.genetic import GeneticSearch
from repro.serve.bootstrap import _app_records, demo_dataset
from repro.stream import DriftConfig, StreamingRespecifier

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_stream.json"

BATCHES = 30 if SMOKE else 200
BATCH_RECORDS = 16
REFRESH_REPS = 20 if SMOKE else 100
RESPEC_REPS = 2 if SMOKE else 5

RESULTS: dict = {}

#: A calm detector: this benchmark times the maintenance actions
#: themselves, so ingest must not veer off into re-specifications.
CALM = DriftConfig(window=64, min_fill=16, trip_ratio=50.0, clear_ratio=1.1)


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    if not RESULTS:
        return
    payload = {
        "smoke": SMOKE,
        "batches": BATCHES,
        "batch_records": BATCH_RECORDS,
        **RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_dir = obs.default_report_dir()
    if report_dir is not None and obs.enabled():
        obs.export_jsonl(report_dir / "metrics_stream.jsonl", run="stream")


@pytest.fixture(scope="module")
def respecifier():
    dataset = demo_dataset(n_apps=4, n_per_app=30, seed=0)
    search = GeneticSearch(population_size=8, seed=0)
    respec = StreamingRespecifier(dataset, search, CALM)
    respec.bootstrap(generations=2)
    respec.set_baseline(1.0)
    return respec


def _batches(respec, n, seed=7):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        batch = ProfileDataset(respec.dataset.x_names, respec.dataset.y_names)
        for record in _app_records("app0", BATCH_RECORDS, rng, shift=0.2):
            batch.add(record)
        out.append(batch)
    return out


class TestStreamPerf:
    def test_ingest_throughput(self, respecifier):
        batches = _batches(respecifier, BATCHES)
        start = time.perf_counter()
        refreshed = 0
        for batch in batches:
            outcome = respecifier.ingest(batch, allow_respec=False)
            refreshed += outcome.refreshed
        elapsed = time.perf_counter() - start
        records = BATCHES * BATCH_RECORDS
        RESULTS["ingest"] = {
            "observations_per_sec": round(records / elapsed, 1),
            "records": records,
            "refreshes": refreshed,
            "ingest_seconds_total": round(elapsed, 4),
        }
        # The refresh path must have been live, not silently failing.
        assert refreshed == BATCHES
        if not SMOKE:
            assert records / elapsed >= 500.0

    def test_refresh_at_least_10x_cheaper_than_respec(self, respecifier):
        # Refresh: p×p solve + coefficient rebind, timed hot.
        respecifier.refresh()  # warm any lazy state
        start = time.perf_counter()
        for _ in range(REFRESH_REPS):
            assert respecifier.refresh()
        refresh_s = (time.perf_counter() - start) / REFRESH_REPS

        # Re-specification: warm-started GA + adopt (accumulator rebuild,
        # committee refit, detector reset).
        start = time.perf_counter()
        for _ in range(RESPEC_REPS):
            respecifier.respec(generations=1)
        respec_s = (time.perf_counter() - start) / RESPEC_REPS

        speedup = respec_s / refresh_s
        RESULTS["refresh_vs_respec"] = {
            "refresh_ms": round(refresh_s * 1e3, 4),
            "respec_ms": round(respec_s * 1e3, 4),
            "speedup": round(speedup, 1),
            "refresh_reps": REFRESH_REPS,
            "respec_reps": RESPEC_REPS,
        }
        assert speedup >= 10.0, (
            f"refresh must be >= 10x cheaper than re-specification, "
            f"measured {speedup:.1f}x "
            f"({refresh_s * 1e3:.3f} ms vs {respec_s * 1e3:.3f} ms)"
        )
