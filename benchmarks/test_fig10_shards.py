"""Figure 10 — shard-level leave-one-application-out extrapolation."""

from conftest import print_report

from repro.experiments import fig10_shards


def test_fig10_shards(benchmark, scale):
    result = benchmark.pedantic(
        fig10_shards.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig10_shards.report(result))

    # Shape: shard behavior shared across applications predicts newcomers.
    # (Bands are for the bench scale; the paper's full sample counts —
    # REPRO_SCALE=full — tighten both.)
    assert result.overall.median < 0.25
    assert result.overall_rho > 0.7

    # Most applications individually are predicted well.
    good = [
        app
        for app, stats in result.per_application.items()
        if stats.median < 0.30
    ]
    assert len(good) >= 4

    # Extrapolation difficulty is non-uniform across applications (§4.5):
    # some targets are much harder than others.  (In this substrate the
    # range-clamped predictor rescues bwaves' CPI numerically even though
    # it is the most behaviorally distant application — that distance is
    # asserted directly by benchmarks/test_fig09_outliers.py.)
    medians = {a: s.median for a, s in result.per_application.items()}
    assert max(medians.values()) > 1.5 * min(medians.values())
