"""Figure 4 — interaction frequencies across the best models."""

from conftest import print_report

from repro.experiments import fig04_interactions


def test_fig04_interactions(benchmark, scale):
    result = benchmark.pedantic(
        fig04_interactions.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig04_interactions.report(result))

    # Shape: interactions exist in the best models, and the population
    # keeps some diversity (no single pair is the entire story).
    total = sum(result.region_totals.values())
    assert total > 0
    assert len(result.top_pairs) >= 2
    # The matrix is symmetric by construction.
    assert (result.counts == result.counts.T).all()
