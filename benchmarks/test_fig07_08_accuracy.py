"""Figures 7 & 8 — accuracy across interpolation/extrapolation scenarios."""

from conftest import print_report

from repro.experiments import fig07_08_accuracy


def test_fig07_08_accuracy(benchmark, scale):
    result = benchmark.pedantic(
        fig07_08_accuracy.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig07_08_accuracy.report(result))

    # Shape: interpolation is accurate (paper: ~5% median; abstract allows
    # 8-10% for general applications) and strongly correlated.  The bands
    # below are for the default bench scale; REPRO_SCALE=full tightens them.
    assert result.interpolation.errors.median < 0.15
    assert result.interpolation.correlation > 0.85

    # Extrapolation with updates stays in the same accuracy band.
    assert result.variant_extrapolation.errors.median < 0.20
    assert result.variant_extrapolation.correlation > 0.8
    assert result.new_software.errors.median < 0.20
    assert result.new_software.correlation > 0.8

    # New hardware + software is the hardest scenario, but trends hold.
    assert result.new_hardware_software.correlation > 0.75
