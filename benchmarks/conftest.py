"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures, prints the
rows/series the paper reports, and asserts the qualitative *shape* (who
wins, by roughly what factor).  Results are cached under ``.cache/``; the
first run at a given scale pays the simulation cost, later runs replay.

Select the scale with ``REPRO_SCALE`` (small / bench / full); ``bench`` is
the default.

Text reports additionally accumulate in ``<report-dir>/bench_reports.txt``
through the same mechanism the experiment CLI uses (``$REPRO_REPORT_DIR``,
default ``reports/``, ``-`` disables), so a benchmark session leaves a
reviewable artifact instead of scrollback.
"""

import pytest

from repro.experiments.common import current_scale
from repro.obs import default_report_dir

_report_file_truncated = False


@pytest.fixture(scope="session")
def scale():
    return current_scale()


def report_path():
    """``bench_reports.txt`` under the active report dir, or ``None``."""
    report_dir = default_report_dir()
    return None if report_dir is None else report_dir / "bench_reports.txt"


def print_report(text: str) -> None:
    """Print a figure/table report, visibly separated in pytest output."""
    global _report_file_truncated
    print()
    print("=" * 78)
    print(text)
    print("=" * 78)
    path = report_path()
    if path is not None:
        mode = "a" if _report_file_truncated else "w"
        _report_file_truncated = True
        with open(path, mode) as handle:
            handle.write(text.rstrip("\n") + "\n" + "=" * 78 + "\n")
