"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures, prints the
rows/series the paper reports, and asserts the qualitative *shape* (who
wins, by roughly what factor).  Results are cached under ``.cache/``; the
first run at a given scale pays the simulation cost, later runs replay.

Select the scale with ``REPRO_SCALE`` (small / bench / full); ``bench`` is
the default.
"""

import pytest

from repro.experiments.common import current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


def print_report(text: str) -> None:
    """Print a figure/table report, visibly separated in pytest output."""
    print()
    print("=" * 78)
    print(text)
    print("=" * 78)
