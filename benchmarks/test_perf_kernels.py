"""Micro-benchmarks for the vectorized simulation kernels.

Times the reference (per-access Python loop) implementations against the
numpy fast paths of the cache simulator and the stack-distance kernel,
plus the genetic search's evaluation throughput, and writes the numbers
to ``BENCH_kernels.json`` at the repository root.

Run from the repository root::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_kernels.py -q

``REPRO_BENCH_SMOKE=1`` shrinks the streams ~10x and skips the speedup
assertion, so CI can exercise every code path in seconds; the committed
report should be regenerated without it.

Every benchmark asserts exact miss-count / distance equality between the
reference and fast implementations before timing them, so the report
never quotes a speedup for a divergent kernel.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import GeneticSearch, ProfileDataset, ProfileRecord
from repro.kernels.batched import simulate_caches, stack_distances_many_addresses
from repro.profiling.reuse import stack_distances, stack_distances_reference
from repro.spmv import SetAssociativeCache

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_ACCESSES = 10_000 if SMOKE else 100_000
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Dump whatever ran to ``BENCH_kernels.json`` after the module."""
    yield
    if not RESULTS:
        return
    payload = {
        "smoke": SMOKE,
        "n_accesses": N_ACCESSES,
        "kernels": RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_dir = obs.default_report_dir()
    if report_dir is not None and obs.enabled():
        obs.export_jsonl(report_dir / "metrics_kernels.jsonl", run="kernels")


def _best_seconds(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(name: str, n_ops: int, before_s: float, after_s: float, **extra):
    entry = {
        "n_ops": n_ops,
        "before_ops_per_sec": round(n_ops / before_s, 1),
        "after_ops_per_sec": round(n_ops / after_s, 1),
        "speedup": round(before_s / after_s, 2),
        **extra,
    }
    RESULTS[name] = entry
    return entry


def _time_cache(make_cache, addrs, name: str, **extra):
    """Time reference vs. fast simulation; fresh cache per repetition.

    (A warm cache would see fewer misses on later repetitions, so reusing
    one object across reps silently benchmarks a different workload.)
    """
    ref_misses = make_cache().simulate_reference(addrs)
    fast_misses = make_cache().simulate(addrs)
    assert fast_misses == ref_misses
    before = _best_seconds(lambda: make_cache().simulate_reference(addrs), 2)
    after = _best_seconds(lambda: make_cache().simulate(addrs), 3)
    return _record(name, len(addrs), before, after, misses=ref_misses, **extra)


class TestCacheSimulator:
    def test_fully_associative_speedup(self):
        """The ISSUE acceptance case: identical LRU miss counts and a >=10x
        win on a 100k-access stream (fully associative, random conflicts —
        the geometry where the stack-distance path does all the work)."""
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 4096, size=N_ACCESSES) * 64

        def make():
            return SetAssociativeCache(64 * 1024, 64, 1024, "LRU")

        entry = _time_cache(make, addrs, "cache_sim_fully_assoc_lru",
                            geometry="64KB/64B/1024-way LRU, random stream")
        if not SMOKE:
            assert entry["speedup"] >= 10.0

    def test_low_associativity_random(self):
        """1- and 2-way closed forms on a worst-case random stream (no
        duplicate collapse to exploit) — recorded, not floor-asserted."""
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 20, size=N_ACCESSES) * 64
        for ways in (1, 2):
            _time_cache(
                lambda w=ways: SetAssociativeCache(64 * 1024, 64, w, "LRU"),
                addrs,
                f"cache_sim_{ways}way_random",
                geometry=f"64KB/64B/{ways}-way LRU, random stream",
            )

    def test_mid_associativity_runs(self):
        """8-way on a run-heavy stream, the shape real SpMV traces have:
        the collapse-first path wins; random 8-way streams would take the
        probe's reference fallback instead (speedup ~1, never a cliff)."""
        rng = np.random.default_rng(2)
        base = rng.integers(0, 1 << 20, size=N_ACCESSES // 8)
        addrs = np.repeat(base, 8) * 64
        _time_cache(
            lambda: SetAssociativeCache(64 * 1024, 64, 8, "LRU"),
            addrs,
            "cache_sim_8way_runs",
            geometry="64KB/64B/8-way LRU, runs-of-8 stream",
        )


class TestStackDistances:
    def test_vectorized_speedup(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 4096, size=N_ACCESSES) * 64
        ref_d, ref_cold = stack_distances_reference(addrs)
        fast_d, fast_cold = stack_distances(addrs)
        assert fast_cold == ref_cold
        assert np.array_equal(fast_d, ref_d)
        before = _best_seconds(lambda: stack_distances_reference(addrs), 2)
        after = _best_seconds(lambda: stack_distances(addrs), 3)
        entry = _record("stack_distances_random", len(addrs), before, after,
                        stream="uniform over 4096 blocks")
        if not SMOKE:
            assert entry["speedup"] >= 5.0

    def test_vectorized_speedup_runs(self):
        """Run-heavy streams collapse before the O(M log M) pass, so the
        speedup is far larger than on the random stream."""
        rng = np.random.default_rng(4)
        base = rng.integers(0, 4096, size=N_ACCESSES // 8)
        addrs = np.repeat(base, 8) * 64
        ref_d, ref_cold = stack_distances_reference(addrs)
        fast_d, fast_cold = stack_distances(addrs)
        assert fast_cold == ref_cold
        assert np.array_equal(fast_d, ref_d)
        before = _best_seconds(lambda: stack_distances_reference(addrs), 2)
        after = _best_seconds(lambda: stack_distances(addrs), 3)
        _record("stack_distances_runs", len(addrs), before, after,
                stream="runs of 8 over 4096 blocks")


class TestBatchedEngine:
    """The struct-of-arrays batched engine vs. the per-pair loop."""

    def test_batched_lru_pairs_speedup(self):
        """ISSUE acceptance: >=5x pairs/sec over the per-pair loop at a
        batch of >=1024 LRU configs on one trace, with bit-identical miss
        counts.  (Randomized policies consume per-config lazy RNG draws
        and fall back to the per-pair simulator by design, so the
        headline batch is LRU — the policy the pipeline sweeps.)"""
        n_accesses = 4_000 if SMOKE else 20_000
        n_configs = 256 if SMOKE else 1024
        rng = np.random.default_rng(6)
        addrs = rng.integers(0, 2048, size=n_accesses) * 64
        specs = [
            (int(line * ways * sets), int(line), int(ways), "LRU")
            for line, ways, sets in zip(
                rng.choice([32, 64], size=n_configs),
                rng.choice([1, 2, 4, 8], size=n_configs),
                rng.choice([16, 32, 64, 128], size=n_configs),
            )
        ]

        def per_pair():
            return [SetAssociativeCache(*s).simulate(addrs) for s in specs]

        def batched():
            return simulate_caches(addrs, specs)

        assert list(batched()) == per_pair()
        before = _best_seconds(per_pair, 1 if SMOKE else 2)
        after = _best_seconds(batched, 2 if SMOKE else 3)
        entry = _record(
            "batched_engine_lru", n_configs, before, after,
            n_configs=n_configs, accesses_per_config=n_accesses,
            geometry="random 32-64B lines, 1-8 ways, 16-128 sets, LRU",
        )
        if not SMOKE:
            assert n_configs >= 1024
            assert entry["speedup"] >= 5.0

    def test_batched_stack_distance_streams(self):
        """Many short shard streams through one concatenated pass —
        identical distance histograms, recorded throughput.  The shape
        (hundreds of sub-DIRECT_MIN streams) mirrors shard-profile
        workloads, where the per-call setup the concatenation amortizes
        dominates; streams past DIRECT_MIN dispatch directly and tie the
        loop by construction."""
        n_streams = 128 if SMOKE else 512
        length = max(32, N_ACCESSES // n_streams)
        rng = np.random.default_rng(7)
        streams = [
            rng.integers(0, 4096, size=length) * 64 for _ in range(n_streams)
        ]
        batched = stack_distances_many_addresses(streams, block_bytes=64)
        for addrs, (distances, n_cold) in zip(streams, batched):
            ref_d, ref_cold = stack_distances(addrs)
            assert n_cold == ref_cold
            assert np.array_equal(distances, ref_d)
        before = _best_seconds(
            lambda: [stack_distances(addrs) for addrs in streams], 2
        )
        after = _best_seconds(
            lambda: stack_distances_many_addresses(streams, block_bytes=64), 3
        )
        _record(
            "batched_stack_distances", n_streams * length, before, after,
            n_streams=n_streams, stream_length=length,
        )


def _synthetic_dataset(n_per_app: int) -> ProfileDataset:
    rng = np.random.default_rng(0)
    ds = ProfileDataset(("x1", "x2"), ("y1", "y2"))
    for k, app in enumerate(("alpha", "beta", "gamma")):
        for _ in range(n_per_app):
            x = rng.normal(loc=k, scale=1.0, size=2)
            y = rng.uniform(0.5, 2.0, size=2)
            z = 2.0 + 0.5 * x[0] - 0.3 * x[1] + 0.8 * y[0] + 0.4 * x[0] * y[0]
            ds.add(ProfileRecord(app, x, y, float(np.exp(z / 4.0))))
    return ds


class TestGeneticSearch:
    def test_generation_throughput(self):
        """Candidate evaluations per second for one serial GA run.

        ``run(dataset, G)`` scores G populations, so the op count is
        ``population_size * generations``.
        """
        ds = _synthetic_dataset(10 if SMOKE else 30)
        population, generations = (8, 2) if SMOKE else (16, 3)

        def run():
            GeneticSearch(
                population_size=population, seed=0, n_workers=1
            ).run(ds, generations=generations)

        seconds = _best_seconds(run, 1 if SMOKE else 2)
        n_evals = population * generations
        RESULTS["ga_evaluation"] = {
            "n_ops": n_evals,
            "evals_per_sec": round(n_evals / seconds, 2),
            "generations_per_sec": round(generations / seconds, 3),
            "population_size": population,
            "n_records": len(ds),
        }
        assert seconds > 0
