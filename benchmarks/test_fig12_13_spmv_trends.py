"""Figures 12 & 13 — SpMV blocking and cache parameter trends (raefsky3)."""

import numpy as np
from conftest import print_report

from repro.experiments import fig12_13_trends


def test_fig12_13_trends(benchmark, scale):
    result = benchmark.pedantic(
        fig12_13_trends.run, args=(scale,), rounds=1, iterations=1
    )
    print_report(fig12_13_trends.report(result))

    # Figure 12: 8 block rows maximize performance.
    assert max(result.by_brow, key=result.by_brow.get) == 8
    # Non-monotonic: 6 or 7 block rows are NOT better than 8.
    assert result.by_brow[8] > result.by_brow[6]
    assert result.by_brow[8] > result.by_brow[7]
    # Block columns: multiples of 4 (1, 4, 8 in the paper) beat their
    # immediate non-multiple neighbors on average.
    mult4 = np.mean([result.by_bcol[c] for c in (1, 4, 8)])
    other = np.mean([result.by_bcol[c] for c in (3, 5, 6, 7)])
    assert mult4 > other
    # Heavy fill harms performance.
    bins = list(result.by_fill_bin.values())
    assert bins[0] > bins[-1]

    # Figure 13: larger lines stream better — monotone increasing averages.
    lines = list(result.by_line.values())
    assert all(b > a for a, b in zip(lines, lines[1:]))
    # Highest associativity is not the winner (LRU-stack pollution).
    assert max(result.by_dways, key=result.by_dways.get) != 8
