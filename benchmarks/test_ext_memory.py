"""Extension — do memory-behavior characteristics (x14..x17) pay off?

An honest experimental question rather than a foregone conclusion: the
paper *suggests* memory-bound workloads "may require" such parameters
(§4.1, §7).  In this substrate the answer is mixed — extra behavioral
dimensions add signal but also widen the space a leave-one-out newcomer
can fall outside of (the §4.5 coverage problem) — so the assertions below
are structural and the numbers are reported for the record.
"""

import numpy as np
from conftest import print_report

from repro.experiments import ext_memory


def test_ext_memory(benchmark, scale):
    result = benchmark.pedantic(ext_memory.run, args=(scale,), rounds=1, iterations=1)
    print_report(ext_memory.report(result))

    for value in (
        result.base_overall,
        result.extended_overall,
        *result.base_memory_bound.values(),
        *result.extended_memory_bound.values(),
    ):
        assert np.isfinite(value) and value >= 0.0
    # The extended space must remain in a usable band — the additions may
    # not help, but they must not break the model.
    assert result.extended_overall < 3.0 * max(result.base_overall, 0.05)
