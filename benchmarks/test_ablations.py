"""Ablations — the marginal value of each methodology ingredient."""

from conftest import print_report

from repro.experiments import ablations


def test_ablations(benchmark, scale):
    result = benchmark.pedantic(ablations.run, args=(scale,), rounds=1, iterations=1)
    print_report(ablations.report(result))

    # Sharding matters: monolithic application profiles are worse (§2.1).
    assert result.monolithic_error >= result.baseline_error
    # The log response scale matters for multiplicative performance metrics.
    assert result.identity_response_error > result.baseline_error
    # Variance stabilization must at least not hurt (its main benefit is
    # robustness to long-tailed profiles, which interpolation under-samples).
    assert result.unstabilized_error < 1.5 * result.baseline_error

    # §4.5: synthetic coverage benchmarks, coordinated with real profiles
    # via re-specification, substantially improve outlier extrapolation.
    assert result.outlier_error_augmented < 0.75 * result.outlier_error_plain
