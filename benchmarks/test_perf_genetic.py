"""Benchmark: batched fitness engine vs. the reference inner loop.

Runs one seeded :class:`GeneticSearch` twice on the same dataset — once
with ``evaluator=evaluate_spec`` (the reference per-application oracle)
and once on the default batched :class:`FitnessEngine` path — and writes
generation wall-time, fits/sec, column-store and memoization hit rates,
and the speedup to ``BENCH_genetic.json`` at the repository root.

Run from the repository root::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_genetic.py -q

``REPRO_BENCH_SMOKE=1`` shrinks the search so CI can exercise the path in
seconds and skips the speedup floor; the committed report should be
regenerated without it.

Both paths draw the same split seed (same search seed) and score on the
same fixed per-application splits, so the comparison is like-for-like;
the benchmark asserts both searches converge to the same best
specification (or the same fitness to 1e-8) before quoting a speedup.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import GeneticSearch, ProfileDataset, ProfileRecord, evaluate_spec

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_genetic.json"

#: Many applications amplify the leave-one-application-out redundancy the
#: engine removes — the paper's setting has dozens of applications.
N_APPS = 4 if SMOKE else 8
N_PER_APP = 20 if SMOKE else 40
POPULATION, GENERATIONS = (8, 2) if SMOKE else (20, 4)

RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    """Dump whatever ran to ``BENCH_genetic.json`` after the module."""
    yield
    if not RESULTS:
        return
    payload = {
        "smoke": SMOKE,
        "n_applications": N_APPS,
        "n_records": N_APPS * N_PER_APP,
        "population_size": POPULATION,
        "generations": GENERATIONS,
        **RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_dir = obs.default_report_dir()
    if report_dir is not None and obs.enabled():
        obs.export_jsonl(report_dir / "metrics_genetic.jsonl", run="genetic")


def _dataset() -> ProfileDataset:
    rng = np.random.default_rng(0)
    ds = ProfileDataset(("x1", "x2", "x3"), ("y1", "y2"))
    apps = [f"app{k}" for k in range(N_APPS)]
    for k, app in enumerate(apps):
        for _ in range(N_PER_APP):
            x = rng.normal(loc=k * 0.5, scale=1.0, size=3)
            y = rng.uniform(0.5, 2.0, size=2)
            z = (
                2.0 + 0.5 * x[0] - 0.3 * x[1] + 0.2 * x[2] ** 2
                + 0.8 * y[0] + 0.4 * x[0] * y[0]
                + rng.normal(0, 0.01)
            )
            ds.add(ProfileRecord(app, x, y, float(np.exp(z / 4.0))))
    return ds


def _timed_search(dataset, evaluator):
    search = GeneticSearch(
        population_size=POPULATION, seed=0, n_workers=1, evaluator=evaluator
    )
    start = time.perf_counter()
    result = search.run(dataset, generations=GENERATIONS)
    return result, time.perf_counter() - start, search.last_eval_stats


class TestEngineSpeedup:
    def test_engine_vs_reference(self):
        """The ISSUE acceptance case: >=5x on a seeded search, same winner."""
        ds = _dataset()
        reference, ref_seconds, _ = _timed_search(ds, evaluate_spec)
        engine, eng_seconds, stats = _timed_search(ds, None)

        # Equivalence gate before any speedup is quoted: both paths score
        # on the same fixed splits; the batched path's only deviations are
        # the documented shared-transform/shared-prune approximations.
        assert (
            engine.best_chromosome == reference.best_chromosome
            or engine.best_fitness.fitness
            == pytest.approx(reference.best_fitness.fitness, abs=1e-8)
        ), "engine and reference searches diverged"

        n_scored = stats["candidates_scored"]
        n_fits = stats["gram_fits"] + stats["lstsq_fallbacks"]
        speedup = ref_seconds / eng_seconds
        RESULTS["search"] = {
            "reference_seconds": round(ref_seconds, 4),
            "engine_seconds": round(eng_seconds, 4),
            "speedup": round(speedup, 2),
            "generation_seconds_reference": round(ref_seconds / GENERATIONS, 4),
            "generation_seconds_engine": round(eng_seconds / GENERATIONS, 4),
            "candidates_scored": int(n_scored),
            "engine_evaluations": int(stats["engine_evaluations"]),
            "fits_per_sec": round(n_fits / eng_seconds, 1),
            "gram_fits": int(stats["gram_fits"]),
            "lstsq_fallbacks": int(stats["lstsq_fallbacks"]),
            "memo_hit_rate": round(stats["memo_hit_rate"], 4),
            "column_hit_rate": round(stats["column_hit_rate"], 4),
            "best_fitness_reference": reference.best_fitness.fitness,
            "best_fitness_engine": engine.best_fitness.fitness,
            "same_best_chromosome": bool(
                engine.best_chromosome == reference.best_chromosome
            ),
        }
        if not SMOKE:
            assert speedup >= 5.0, f"expected >=5x, measured {speedup:.2f}x"


class TestObservabilityOverhead:
    def test_obs_overhead_within_two_percent(self):
        """The ISSUE acceptance case: the instrumented search (REPRO_OBS=1,
        the default) stays within 2% of the uninstrumented runtime.

        Instrumentation is per-generation spans plus a handful of counter
        increments per spec evaluation, so the overhead should be noise;
        best-of-3 timings keep scheduler jitter out of the ratio.  The
        floor is asserted on non-smoke runs only (smoke searches finish in
        milliseconds, where timer noise alone exceeds 2%).
        """
        ds = _dataset()
        _timed_search(ds, None)  # warm transforms/caches out of the timings

        def best_of(enabled: bool, reps: int = 3) -> float:
            obs.configure(enabled=enabled)
            try:
                return min(_timed_search(ds, None)[1] for _ in range(reps))
            finally:
                obs.configure(enabled=True)

        instrumented = best_of(True)
        uninstrumented = best_of(False)
        overhead = instrumented / uninstrumented - 1.0
        RESULTS["obs_overhead"] = {
            "instrumented_seconds": round(instrumented, 4),
            "uninstrumented_seconds": round(uninstrumented, 4),
            "overhead_fraction": round(overhead, 4),
        }
        if not SMOKE:
            assert overhead <= 0.02, (
                f"observability overhead {overhead:.1%} exceeds the 2% budget"
            )
