"""Exact re-use distance and LRU stack distance measurement.

Two related locality measures appear in the paper:

* **Re-use distance** (Table 1, Figure 3): the number of *instructions*
  separating two consecutive accesses to the same data block.  This is the
  portable temporal-locality measure the models consume.
* **Stack distance**: the number of *distinct blocks* touched between two
  consecutive accesses to the same block.  A fully associative LRU cache of
  capacity C blocks hits exactly when the stack distance is < C, which is
  what the timing models use internally.

Both are computed exactly.  Re-use distances are vectorized with a lexsort.
Stack distances have two exact implementations:

* :func:`stack_distances_reference` — the classic Bennett-Kruskal algorithm
  with a Fenwick (binary indexed) tree, O(M log M) for M accesses but a
  per-access Python loop;
* the default :func:`stack_distances` — a vectorized offline formulation.
  Consecutive same-block repeats (ubiquitous in real traces: sequential
  access walks a cache block several times) are collapsed first — a repeat
  has stack distance 0 by definition and removing it provably changes no
  other access's distance.  On the collapsed stream, with ``prev[i]`` the
  previous access to access *i*'s block, the stack distance is the number
  of *first-in-window* accesses in ``(prev[i], i)``, which reduces to
  ``i - prev[i] - 1 - #{j < i : prev[j] > prev[i]}``.  The remaining term
  is a per-element inversion count, computed without a per-access loop by
  pairwise merge counting (:func:`_count_earlier_greater`), O(M log^2 M)
  of numpy work.  Tiny inputs fall back to the reference.

Both produce bit-identical outputs (asserted by the test suite).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import obs


def _block_ids(addresses: np.ndarray, block_bytes: int) -> np.ndarray:
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ValueError(f"block_bytes must be a positive power of two, got {block_bytes}")
    shift = int(block_bytes).bit_length() - 1
    return np.asarray(addresses, dtype=np.int64) >> shift


def reuse_distances(
    addresses: np.ndarray,
    positions: np.ndarray,
    block_bytes: int = 64,
) -> np.ndarray:
    """Re-use distances, in instructions, for every *re*-access in a stream.

    Parameters
    ----------
    addresses:
        Byte addresses of the accesses, in program order.
    positions:
        Dynamic instruction index of each access (monotonically
        non-decreasing).  Distances are measured on this axis, matching the
        paper's definition ("number of instructions separating two
        consecutive accesses to the same data block").
    block_bytes:
        Block granularity; the paper uses 64B for Table 1 and 256B for
        Figure 3.

    Returns
    -------
    Array with one entry per access that re-touches a previously seen
    block (first touches have no re-use distance and are omitted).
    """
    addresses = np.asarray(addresses)
    positions = np.asarray(positions)
    if addresses.shape != positions.shape:
        raise ValueError("addresses and positions must have the same shape")
    if len(addresses) == 0:
        return np.empty(0, dtype=np.int64)
    blocks = _block_ids(addresses, block_bytes)
    # Stable sort by block keeps program order within each block, so
    # consecutive entries with equal block ids are consecutive accesses.
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    sorted_pos = positions[order]
    same = sorted_blocks[1:] == sorted_blocks[:-1]
    return (sorted_pos[1:] - sorted_pos[:-1])[same]


def mean_reuse_distance(
    addresses: np.ndarray,
    positions: np.ndarray,
    block_bytes: int = 64,
    default: float = 0.0,
) -> float:
    """Average re-use distance; ``default`` when no block is re-accessed."""
    distances = reuse_distances(addresses, positions, block_bytes)
    if len(distances) == 0:
        return float(default)
    return float(distances.mean())


def reuse_distance_sums(
    addresses: np.ndarray,
    positions: np.ndarray,
    block_bytes: int = 256,
) -> float:
    """Sum of all re-use distances in a stream (Figure 3's per-shard metric)."""
    return float(reuse_distances(addresses, positions, block_bytes).sum())


class _Fenwick:
    """Fenwick tree over [0, n): point update, prefix-sum query."""

    def __init__(self, n: int):
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        while i <= self.n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of entries at indices < i."""
        total = 0
        tree = self.tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)


#: Distance assigned to cold (first-touch) accesses: effectively infinite,
#: they miss in any cache.
COLD_DISTANCE = np.int64(2**62)

#: Below this many accesses the constant factors of the vectorized path do
#: not pay off; the Fenwick reference is used instead.
_VECTORIZE_MIN = 64


def stack_distances(
    addresses: np.ndarray,
    block_bytes: int = 64,
) -> Tuple[np.ndarray, int]:
    """Exact LRU stack distance of every access in a stream.

    Dispatches to the vectorized O(M log^2 M) kernel for non-tiny streams
    and to the Fenwick-tree reference otherwise; both produce identical
    outputs.

    Returns
    -------
    distances:
        One entry per access.  First touches (cold accesses) get distance
        ``2**62`` (effectively infinite: they miss in any cache).
    n_cold:
        Number of cold accesses (distinct blocks touched).
    """
    with obs.span("kernel.stack_distances"):
        obs.counter("kernel.stack_accesses").inc(len(addresses))
        blocks = _block_ids(np.asarray(addresses), block_bytes)
        return stack_distances_from_blocks(blocks)


def stack_distances_from_blocks(blocks: np.ndarray) -> Tuple[np.ndarray, int]:
    """:func:`stack_distances` on pre-computed block (line) ids."""
    blocks = np.asarray(blocks, dtype=np.int64)
    if len(blocks) < _VECTORIZE_MIN:
        return _stack_distances_fenwick(blocks)
    return _stack_distances_vectorized(blocks)


def stack_distances_reference(
    addresses: np.ndarray,
    block_bytes: int = 64,
) -> Tuple[np.ndarray, int]:
    """The Bennett-Kruskal Fenwick-tree implementation (per-access loop).

    Kept as the equivalence oracle for :func:`stack_distances`.
    """
    blocks = _block_ids(np.asarray(addresses), block_bytes)
    return _stack_distances_fenwick(blocks)


def _stack_distances_fenwick(blocks: np.ndarray) -> Tuple[np.ndarray, int]:
    m = len(blocks)
    distances = np.empty(m, dtype=np.int64)
    if m == 0:
        return distances, 0

    # Compact block ids to 0..n_blocks-1 for dictionary-free indexing.
    unique, compact = np.unique(blocks, return_inverse=True)
    last_access = np.full(len(unique), -1, dtype=np.int64)

    tree = _Fenwick(m)
    cold = COLD_DISTANCE
    n_cold = 0
    for i in range(m):
        b = compact[i]
        prev = last_access[b]
        if prev < 0:
            distances[i] = cold
            n_cold += 1
        else:
            # Distinct blocks touched since prev = number of "most recent
            # access" markers strictly after prev.
            distances[i] = tree.prefix(m) - tree.prefix(int(prev) + 1)
            tree.add(int(prev), -1)
        tree.add(i, +1)
        last_access[b] = i
    return distances, n_cold


def _prev_occurrence(blocks: np.ndarray) -> np.ndarray:
    """``prev[i]``: index of the previous access to ``blocks[i]``, -1 if none.

    One argsort over composite keys ``compact_id * m + position``: the keys
    are unique, so an unstable (quicksort) argsort is grouping-stable — far
    cheaper than ``kind="stable"``'s radix pass on this data.
    """
    m = len(blocks)
    compact = np.unique(blocks, return_inverse=True)[1]
    key = compact.astype(np.int64) * np.int64(m) + np.arange(m, dtype=np.int64)
    order = np.argsort(key)
    sorted_compact = compact[order]
    prev = np.full(m, -1, dtype=np.int64)
    same = sorted_compact[1:] == sorted_compact[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def stack_distances_and_prev(
    blocks: np.ndarray,
) -> Tuple[np.ndarray, int, np.ndarray, np.ndarray]:
    """Vectorized stack distances plus the collapsed-stream bookkeeping.

    Returns ``(distances, n_cold, collapsed, prev)`` where ``collapsed`` is
    the input with consecutive repeats removed and ``prev`` maps each
    collapsed access to its block's previous collapsed occurrence (-1 on
    first touch).  The extras cost nothing — the distance computation
    produces them anyway — and let callers reconstruct LRU state (an
    access is its block's *last* when no later access points back at it).

    Consecutive repeats of a block are collapsed first: a repeat has
    distance 0 (its window is empty), and because any window that contains
    a repeat also contains the preceding access to the same block, dropping
    repeats changes no other access's distinct count.

    On the collapsed stream, let ``prev[i]`` be the position of the
    previous access to access *i*'s block (-1 on first touch).  Every
    distinct block touched in the window ``(prev[i], i)`` contributes
    exactly one access *j* whose own previous access lies outside the
    window (``prev[j] <= prev[i]``), so

        distance[i] = #{j : prev[i] < j < i}
                      - #{j : prev[i] < j < i, prev[j] > prev[i]}
                    = i - prev[i] - 1 - #{j < i : prev[j] > prev[i]}

    (the window bound on *j* in the subtracted term is implied by
    ``prev[j] > prev[i]`` together with ``prev[j] < j``).  The last term is
    a per-element inversion count over ``prev``.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    m = len(blocks)
    keep = np.empty(m, dtype=bool)
    keep[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=keep[1:])
    idx = np.flatnonzero(keep)
    collapsed = blocks[idx]
    n = len(collapsed)

    prev = _prev_occurrence(collapsed)
    cold_mask = prev < 0
    inversions = _count_earlier_greater(prev)
    collapsed_distances = np.where(
        cold_mask,
        COLD_DISTANCE,
        np.arange(n, dtype=np.int64) - prev - 1 - inversions,
    )
    distances = np.zeros(m, dtype=np.int64)   # repeats: distance 0
    distances[idx] = collapsed_distances
    return distances, int(cold_mask.sum()), collapsed, prev


def _stack_distances_vectorized(blocks: np.ndarray) -> Tuple[np.ndarray, int]:
    distances, n_cold, _, _ = stack_distances_and_prev(blocks)
    return distances, n_cold


def _count_earlier_greater(values: np.ndarray) -> np.ndarray:
    """For each *i*: ``#{j < i : values[j] > values[i]}``, vectorized.

    Bottom-up pairwise counting: for span widths 1, 2, 4, ... every element
    in the right half of a span counts the greater elements in its sorted
    left sibling half.  Summed over all levels this is exactly the set of
    earlier-greater pairs.  The two narrowest levels are plain elementwise
    comparisons; each wider level is one row-sort of the left halves plus a
    single global ``searchsorted`` (rows are made globally comparable by
    adding a per-row offset larger than the value range), so the per-access
    work is all inside numpy: O(M log^2 M) total.  Values are compacted to
    int32 when they fit — the counting only depends on order.
    """
    m = int(len(values))
    counts = np.zeros(m, dtype=np.int64)
    if m < 2:
        return counts
    vmin, vmax = int(values.min()), int(values.max())
    if vmax - vmin >= np.iinfo(np.int32).max - 2:
        # Only order matters: compact wide-range values to dense ranks.
        values = np.unique(values, return_inverse=True)[1]
        vmin, vmax = 0, int(values.max())
    # Shift to a zero base so the working array always fits int32.
    v = (np.asarray(values, dtype=np.int64) - vmin).astype(np.int32)
    vmax -= vmin
    lo = np.int32(-1)                         # padding sentinel, never "greater"
    big = np.int64(vmax + 3)                  # per-row key offset

    # Width-1 level: each odd position counts its even left neighbour.
    n2 = m // 2
    counts[1:2 * n2:2] += v[0:2 * n2:2] > v[1:2 * n2:2]
    if m <= 2:
        return counts

    arr = np.full(-(-m // 4) * 4, lo, dtype=v.dtype)
    arr[:m] = v
    counts_padded = np.zeros(len(arr), dtype=np.int64)

    # Width-2 level: min/max sort the two left entries, compare elementwise.
    quads = arr.reshape(-1, 4)
    left_lo = np.minimum(quads[:, 0], quads[:, 1])
    left_hi = np.maximum(quads[:, 0], quads[:, 1])
    for col in (2, 3):
        counts_padded[col::4] += left_lo > quads[:, col]
        counts_padded[col::4] += left_hi > quads[:, col]

    width = 4
    while width < m:
        span = 2 * width
        n_pairs = -(-len(arr) // span)
        padded = n_pairs * span
        if padded != len(arr):
            grown = np.full(padded, lo, dtype=v.dtype)
            grown[:len(arr)] = arr
            arr = grown
            grown_counts = np.zeros(padded, dtype=np.int64)
            grown_counts[:len(counts_padded)] = counts_padded
            counts_padded = grown_counts
        blocks = arr.reshape(n_pairs, span)
        left = np.sort(blocks[:, :width], axis=1)
        right = blocks[:, width:]

        row_offset = (np.arange(n_pairs, dtype=np.int64) * big)[:, None]
        keys = (left + row_offset).ravel()          # globally sorted
        queries = (right + row_offset).ravel()
        n_le = np.searchsorted(keys, queries, side="right")
        n_le -= np.repeat(np.arange(n_pairs, dtype=np.int64) * width, width)
        # width - n_le = number of left entries greater than the query.
        counts_padded.reshape(n_pairs, span)[:, width:] += (
            (width - n_le).reshape(n_pairs, width)
        )
        width = span
    counts += counts_padded[:m]
    return counts
