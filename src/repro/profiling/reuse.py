"""Exact re-use distance and LRU stack distance measurement.

Two related locality measures appear in the paper:

* **Re-use distance** (Table 1, Figure 3): the number of *instructions*
  separating two consecutive accesses to the same data block.  This is the
  portable temporal-locality measure the models consume.
* **Stack distance**: the number of *distinct blocks* touched between two
  consecutive accesses to the same block.  A fully associative LRU cache of
  capacity C blocks hits exactly when the stack distance is < C, which is
  what the timing models use internally.

Both are computed exactly.  Re-use distances are vectorized with a lexsort;
stack distances use the classic Bennett-Kruskal algorithm with a Fenwick
(binary indexed) tree, O(M log M) for M accesses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _block_ids(addresses: np.ndarray, block_bytes: int) -> np.ndarray:
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ValueError(f"block_bytes must be a positive power of two, got {block_bytes}")
    shift = int(block_bytes).bit_length() - 1
    return np.asarray(addresses, dtype=np.int64) >> shift


def reuse_distances(
    addresses: np.ndarray,
    positions: np.ndarray,
    block_bytes: int = 64,
) -> np.ndarray:
    """Re-use distances, in instructions, for every *re*-access in a stream.

    Parameters
    ----------
    addresses:
        Byte addresses of the accesses, in program order.
    positions:
        Dynamic instruction index of each access (monotonically
        non-decreasing).  Distances are measured on this axis, matching the
        paper's definition ("number of instructions separating two
        consecutive accesses to the same data block").
    block_bytes:
        Block granularity; the paper uses 64B for Table 1 and 256B for
        Figure 3.

    Returns
    -------
    Array with one entry per access that re-touches a previously seen
    block (first touches have no re-use distance and are omitted).
    """
    addresses = np.asarray(addresses)
    positions = np.asarray(positions)
    if addresses.shape != positions.shape:
        raise ValueError("addresses and positions must have the same shape")
    if len(addresses) == 0:
        return np.empty(0, dtype=np.int64)
    blocks = _block_ids(addresses, block_bytes)
    # Stable sort by block keeps program order within each block, so
    # consecutive entries with equal block ids are consecutive accesses.
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    sorted_pos = positions[order]
    same = sorted_blocks[1:] == sorted_blocks[:-1]
    return (sorted_pos[1:] - sorted_pos[:-1])[same]


def mean_reuse_distance(
    addresses: np.ndarray,
    positions: np.ndarray,
    block_bytes: int = 64,
    default: float = 0.0,
) -> float:
    """Average re-use distance; ``default`` when no block is re-accessed."""
    distances = reuse_distances(addresses, positions, block_bytes)
    if len(distances) == 0:
        return float(default)
    return float(distances.mean())


def reuse_distance_sums(
    addresses: np.ndarray,
    positions: np.ndarray,
    block_bytes: int = 256,
) -> float:
    """Sum of all re-use distances in a stream (Figure 3's per-shard metric)."""
    return float(reuse_distances(addresses, positions, block_bytes).sum())


class _Fenwick:
    """Fenwick tree over [0, n): point update, prefix-sum query."""

    def __init__(self, n: int):
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        while i <= self.n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of entries at indices < i."""
        total = 0
        tree = self.tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)


def stack_distances(
    addresses: np.ndarray,
    block_bytes: int = 64,
) -> Tuple[np.ndarray, int]:
    """Exact LRU stack distance of every access in a stream.

    Returns
    -------
    distances:
        One entry per access.  First touches (cold accesses) get distance
        ``2**62`` (effectively infinite: they miss in any cache).
    n_cold:
        Number of cold accesses (distinct blocks touched).
    """
    blocks = _block_ids(np.asarray(addresses), block_bytes)
    m = len(blocks)
    distances = np.empty(m, dtype=np.int64)
    if m == 0:
        return distances, 0

    # Compact block ids to 0..n_blocks-1 for dictionary-free indexing.
    unique, compact = np.unique(blocks, return_inverse=True)
    last_access = np.full(len(unique), -1, dtype=np.int64)

    tree = _Fenwick(m)
    cold = np.int64(2**62)
    n_cold = 0
    for i in range(m):
        b = compact[i]
        prev = last_access[b]
        if prev < 0:
            distances[i] = cold
            n_cold += 1
        else:
            # Distinct blocks touched since prev = number of "most recent
            # access" markers strictly after prev.
            distances[i] = tree.prefix(m) - tree.prefix(int(prev) + 1)
            tree.add(int(prev), -1)
        tree.add(i, +1)
        last_access[b] = i
    return distances, n_cold
