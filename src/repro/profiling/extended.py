"""Extended memory-behavior characteristics (the paper's future work).

Table 1's thirteen characteristics "primarily capture processor-bound
workload behavior.  Other workloads may require memory or I/O
characteristics.  For memory-bound workloads, such parameters might include
memory hierarchy latencies, memory channel bandwidth, application
concurrency, and memory request burstiness" (§4.1); §7 lists the same as a
direction for future work.

This module implements four such portable measures (x14..x17), all still
microarchitecture independent:

=====  ===================================================================
x14    memory footprint — distinct 64B data blocks touched in the shard
x15    memory request burstiness — coefficient of variation of the
       instruction gaps between *far* accesses (stack distance beyond a
       fixed horizon), i.e. the accesses any realistic cache must fetch
x16    streaming fraction — share of data accesses at unit (8B) stride,
       a bandwidth-demand proxy
x17    code footprint — distinct 64B instruction blocks touched
=====  ===================================================================

:func:`profile_shard_extended` returns the concatenated 17-value vector;
``repro.experiments.ext_memory`` measures what the additions buy for
memory-bound applications.
"""

from __future__ import annotations

import numpy as np

from repro.isa.trace import Trace
from repro.profiling.characteristics import (
    N_CHARACTERISTICS,
    SOFTWARE_VARIABLE_NAMES,
    profile_shard,
)
from repro.profiling.reuse import stack_distances

N_EXTENDED = 4

EXTENDED_VARIABLE_NAMES = SOFTWARE_VARIABLE_NAMES + tuple(
    f"x{i}" for i in range(N_CHARACTERISTICS + 1, N_CHARACTERISTICS + N_EXTENDED + 1)
)

EXTENDED_VARIABLE_LABELS = {
    "x14": "memory footprint (distinct 64B data blocks)",
    "x15": "memory request burstiness (CV of far-access gaps)",
    "x16": "streaming fraction (unit-stride data accesses)",
    "x17": "code footprint (distinct 64B instruction blocks)",
}

#: Stack distance (in 64B blocks) beyond which an access is considered a
#: capacity fetch for burstiness purposes; chosen inside the Table 2 L1
#: range so it is not tied to any single configuration.
FAR_HORIZON_BLOCKS = 512

WORD_BYTES = 8


def profile_shard_extended(shard: Trace) -> np.ndarray:
    """Profile a shard into the extended x1..x17 characteristic vector."""
    base = profile_shard(shard)

    mem_positions = np.flatnonzero(shard.memory_mask())
    addrs = shard.addr[mem_positions]

    if len(addrs):
        blocks = addrs >> 6
        footprint = float(len(np.unique(blocks)))
        distances, _ = stack_distances(addrs, block_bytes=64)
        far_positions = mem_positions[distances >= FAR_HORIZON_BLOCKS]
        burstiness = _gap_cv(far_positions, len(shard))
        strides = np.diff(addrs)
        streaming = float((strides == WORD_BYTES).mean()) if len(strides) else 0.0
    else:
        footprint, burstiness, streaming = 0.0, 0.0, 0.0

    code_footprint = float(len(np.unique(shard.iaddr >> 6)))
    return np.concatenate(
        [base, [footprint, burstiness, streaming, code_footprint]]
    )


def _gap_cv(positions: np.ndarray, shard_length: int) -> float:
    """Coefficient of variation of the instruction gaps between events.

    Zero or one event yields 0 (no burst structure observable); uniform
    spacing yields ~0; clustered (bursty) events yield > 1.
    """
    if len(positions) < 2:
        return 0.0
    gaps = np.diff(np.sort(positions)).astype(float)
    mean = gaps.mean()
    if mean <= 0:
        return 0.0
    return float(gaps.std() / mean)
