"""Shard-level profiling of whole applications (§2.1).

Applications are broken into equal-instruction shards; each shard is
profiled independently.  Sharding is deliberately agnostic to phase
behavior — a fixed, pre-determined shard length shorter than typical phases
preserves intra-application diversity without any phase-detection machinery.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.isa.trace import Trace
from repro.profiling.characteristics import profile_shard

#: Default shard length in dynamic instructions.  The paper uses 10M; this
#: reproduction scales the entire system down 1000x (see DESIGN.md §4).
DEFAULT_SHARD_LENGTH = 10_000


@dataclasses.dataclass(frozen=True)
class ShardProfile:
    """Microarchitecture-independent profile of one shard.

    Attributes
    ----------
    application:
        Name of the application the shard came from.
    index:
        Shard index within the application.
    x:
        Table 1 characteristic vector (x1..x13).
    """

    application: str
    index: int
    x: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))

    @property
    def key(self) -> str:
        return f"{self.application}/shard{self.index:03d}"


def profile_application(
    trace: Trace,
    shard_length: int = DEFAULT_SHARD_LENGTH,
    application: str = None,
) -> List[ShardProfile]:
    """Break ``trace`` into shards and profile each one."""
    name = application or trace.name
    return [
        ShardProfile(name, i, profile_shard(shard))
        for i, shard in enumerate(trace.shards(shard_length))
    ]
