"""The thirteen portable software characteristics of Table 1.

Measured per shard on the committed instruction stream:

=====  ==========================================================
x1     # control instructions
x2     # taken branches
x3     # floating-point ALU instructions
x4     # floating-point multiply/divide instructions
x5     # integer multiply/divide instructions
x6     # integer ALU instructions
x7     # memory instructions
x8     average re-use distance for 64B data-cache blocks
x9     average re-use distance for 64B instruction-cache blocks
x10    # instructions between a floating-point ALU op and its consumer
x11    # instructions between a floating-point multiply and its consumer
x12    # instructions between an integer multiply and its consumer
x13    average basic block size (# instructions / # branches)
=====  ==========================================================

All are microarchitecture independent: none references a cache size, a
pipeline width, or any other hardware parameter.
"""

from __future__ import annotations

import numpy as np

from repro.isa.instructions import OpClass
from repro.isa.trace import Trace
from repro.profiling.reuse import mean_reuse_distance

N_CHARACTERISTICS = 13

SOFTWARE_VARIABLE_NAMES = tuple(f"x{i}" for i in range(1, N_CHARACTERISTICS + 1))

SOFTWARE_VARIABLE_LABELS = {
    "x1": "# control",
    "x2": "# taken branches",
    "x3": "# float ALU",
    "x4": "# float mul/div",
    "x5": "# integer mul/div",
    "x6": "# integer ALU",
    "x7": "# memory",
    "x8": "avg re-use distance, 64B d-cache blocks",
    "x9": "avg re-use distance, 64B i-cache blocks",
    "x10": "producer-consumer distance, float ALU",
    "x11": "producer-consumer distance, float mul/div",
    "x12": "producer-consumer distance, int mul/div",
    "x13": "avg basic block size",
}


def profile_shard(shard: Trace) -> np.ndarray:
    """Profile one shard into its Table 1 characteristic vector.

    Returns a float array of length :data:`N_CHARACTERISTICS`, ordered
    x1..x13.
    """
    n = len(shard)
    if n == 0:
        raise ValueError("cannot profile an empty shard")
    counts = shard.opclass_counts()

    x = np.zeros(N_CHARACTERISTICS, dtype=float)
    x[0] = counts[OpClass.CONTROL]
    x[1] = int(shard.taken.sum())
    x[2] = counts[OpClass.FP_ALU]
    x[3] = counts[OpClass.FP_MULDIV]
    x[4] = counts[OpClass.INT_MULDIV]
    x[5] = counts[OpClass.INT_ALU]
    x[6] = counts[OpClass.MEMORY]

    mem = shard.memory_mask()
    mem_pos = np.flatnonzero(mem)
    x[7] = mean_reuse_distance(
        shard.addr[mem_pos], mem_pos, block_bytes=64, default=float(n)
    )
    all_pos = np.arange(n)
    x[8] = mean_reuse_distance(shard.iaddr, all_pos, block_bytes=64, default=float(n))

    x[9] = _producer_consumer_distance(shard, OpClass.FP_ALU)
    x[10] = _producer_consumer_distance(shard, OpClass.FP_MULDIV)
    x[11] = _producer_consumer_distance(shard, OpClass.INT_MULDIV)

    n_branches = max(1, int(counts[OpClass.CONTROL]))
    x[12] = n / n_branches
    return x


def _producer_consumer_distance(shard: Trace, producer_class: OpClass) -> float:
    """Average dynamic distance from a producer of ``producer_class`` to
    its consumer.

    Each instruction's ``dep`` field points back to its critical producer;
    we collect the distances whose producer belongs to the requested class.
    Consumers whose producer lies before the shard boundary are skipped
    (their producer class is unobservable within the shard).  Returns 0
    when the class never produces a consumed value — "rare floating-point
    divides are not strong predictors" (§3.1) manifests exactly here.
    """
    dep = shard.dep
    idx = np.arange(len(shard))
    valid = (dep > 0) & (idx - dep >= 0)
    if not valid.any():
        return 0.0
    producers = idx[valid] - dep[valid]
    mask = shard.op[producers] == int(producer_class)
    if not mask.any():
        return 0.0
    return float(dep[valid][mask].mean())
