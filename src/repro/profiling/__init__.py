"""Microarchitecture-independent software profiling.

This package implements the paper's profiling layer (§2.1-§2.2, Table 1):

* :mod:`repro.profiling.reuse` — exact re-use distances (instructions
  between consecutive accesses to the same block) and exact LRU stack
  distances (distinct blocks between those accesses), for arbitrary block
  sizes;
* :mod:`repro.profiling.characteristics` — the thirteen portable software
  characteristics of Table 1, measured per shard;
* :mod:`repro.profiling.shards` — shard-level profiling of whole
  applications.

All measures are computed on the committed (architectural) instruction
stream and are therefore independent of any out-of-order microarchitecture,
which is what embedding counters in Gem5's commit stage achieves in the
paper (§4.1).
"""

from repro.profiling.reuse import (
    reuse_distances,
    mean_reuse_distance,
    stack_distances,
    stack_distances_reference,
    reuse_distance_sums,
)
from repro.profiling.characteristics import (
    N_CHARACTERISTICS,
    SOFTWARE_VARIABLE_NAMES,
    SOFTWARE_VARIABLE_LABELS,
    profile_shard,
)
from repro.profiling.shards import ShardProfile, profile_application
from repro.profiling.extended import (
    EXTENDED_VARIABLE_NAMES,
    EXTENDED_VARIABLE_LABELS,
    profile_shard_extended,
)

__all__ = [
    "reuse_distances",
    "mean_reuse_distance",
    "stack_distances",
    "stack_distances_reference",
    "reuse_distance_sums",
    "N_CHARACTERISTICS",
    "SOFTWARE_VARIABLE_NAMES",
    "SOFTWARE_VARIABLE_LABELS",
    "profile_shard",
    "ShardProfile",
    "profile_application",
    "EXTENDED_VARIABLE_NAMES",
    "EXTENDED_VARIABLE_LABELS",
    "profile_shard_extended",
]
