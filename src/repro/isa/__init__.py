"""Instruction-set substrate: opcode classes and dynamic instruction traces.

This package defines the trace format shared by the synthetic workload
generator (:mod:`repro.workloads`), the microarchitecture-independent
profiler (:mod:`repro.profiling`) and the out-of-order timing model
(:mod:`repro.uarch`).

A *trace* is the committed (architectural) dynamic instruction stream of one
application or shard.  Profiling the committed stream is what the paper
achieves by embedding counters in Gem5's commit stage: the measured
characteristics are independent of the out-of-order microarchitecture.
"""

from repro.isa.instructions import (
    OpClass,
    TRACE_DTYPE,
    FU_LATENCY,
    empty_trace,
    opclass_names,
)
from repro.isa.trace import Trace

__all__ = [
    "OpClass",
    "TRACE_DTYPE",
    "FU_LATENCY",
    "empty_trace",
    "opclass_names",
    "Trace",
]
