"""Opcode classes and the structured-array layout of a dynamic trace.

The six opcode classes mirror the instruction-mix characteristics the paper
profiles (Table 1): control, floating-point ALU, floating-point
multiply/divide, integer multiply/divide, integer ALU, and memory.
"""

from __future__ import annotations

import enum

import numpy as np


class OpClass(enum.IntEnum):
    """Architectural opcode class of a dynamic instruction.

    The integer values index into per-class arrays throughout the package
    (instruction-mix counters, functional-unit latency tables), so they must
    stay dense and start at zero.
    """

    CONTROL = 0
    FP_ALU = 1
    FP_MULDIV = 2
    INT_MULDIV = 3
    INT_ALU = 4
    MEMORY = 5


N_OPCLASSES = len(OpClass)


def opclass_names() -> list:
    """Return opcode-class names ordered by their integer value."""
    return [c.name for c in sorted(OpClass, key=int)]


#: Execution latency (cycles) of each opcode class on its functional unit.
#: Indexed by :class:`OpClass`.  Memory latency here is the L1 hit latency;
#: miss latencies are added by the cache model.
FU_LATENCY = np.array(
    [
        1.0,  # CONTROL: resolved in one execute cycle
        3.0,  # FP_ALU: pipelined FP add
        6.0,  # FP_MULDIV: multiply/divide, partially pipelined
        8.0,  # INT_MULDIV
        1.0,  # INT_ALU
        2.0,  # MEMORY: L1 hit (address generation + access)
    ]
)

#: Issue interval (cycles between successive ops on one unit).  Fully
#: pipelined units have interval 1; divides stall their unit longer.
FU_ISSUE_INTERVAL = np.array(
    [
        1.0,  # CONTROL
        1.0,  # FP_ALU
        4.0,  # FP_MULDIV
        5.0,  # INT_MULDIV
        1.0,  # INT_ALU
        1.0,  # MEMORY
    ]
)


#: Layout of one dynamic instruction in a trace.
#:
#: ``op``    opcode class (:class:`OpClass` value).
#: ``taken`` for CONTROL ops, whether the branch is taken; zero otherwise.
#: ``miss``  for CONTROL ops, whether a reference predictor mispredicts it.
#:           This is a *software* property in our substrate (Table 2 has no
#:           predictor parameters); the timing model charges a width-dependent
#:           penalty per mispredict.
#: ``dep``   distance, in dynamic instructions, to the producer of this
#:           instruction's critical source operand; 0 means no in-window
#:           dependence.
#: ``addr``  byte address touched by MEMORY ops; 0 otherwise.
#: ``iaddr`` byte address of the instruction itself (for instruction-cache
#:           locality).
TRACE_DTYPE = np.dtype(
    [
        ("op", np.int8),
        ("taken", np.bool_),
        ("miss", np.bool_),
        ("dep", np.int32),
        ("addr", np.int64),
        ("iaddr", np.int64),
    ]
)


def empty_trace(n: int) -> np.ndarray:
    """Allocate a zeroed trace array of ``n`` instructions."""
    if n < 0:
        raise ValueError(f"trace length must be non-negative, got {n}")
    return np.zeros(n, dtype=TRACE_DTYPE)
