"""The :class:`Trace` wrapper around a structured instruction array.

A trace is immutable from the caller's perspective: slicing produces views,
and all derived quantities (instruction mix, shard boundaries) are computed
on demand.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.isa.instructions import N_OPCLASSES, OpClass, TRACE_DTYPE, empty_trace


class Trace:
    """A committed dynamic instruction stream.

    Parameters
    ----------
    data:
        Structured array with dtype :data:`repro.isa.TRACE_DTYPE`.
    name:
        Human-readable identifier, e.g. ``"astar"`` or ``"astar/shard007"``.
    """

    def __init__(self, data: np.ndarray, name: str = "trace"):
        if data.dtype != TRACE_DTYPE:
            raise TypeError(
                f"trace data must have dtype TRACE_DTYPE, got {data.dtype}"
            )
        self._data = data
        self.name = name

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self)} instructions)"

    @property
    def data(self) -> np.ndarray:
        """The underlying structured array (treat as read-only)."""
        return self._data

    # -- field accessors ----------------------------------------------------------

    @property
    def op(self) -> np.ndarray:
        return self._data["op"]

    @property
    def taken(self) -> np.ndarray:
        return self._data["taken"]

    @property
    def miss(self) -> np.ndarray:
        return self._data["miss"]

    @property
    def dep(self) -> np.ndarray:
        return self._data["dep"]

    @property
    def addr(self) -> np.ndarray:
        return self._data["addr"]

    @property
    def iaddr(self) -> np.ndarray:
        return self._data["iaddr"]

    # -- derived quantities -------------------------------------------------------

    def opclass_counts(self) -> np.ndarray:
        """Count of instructions per opcode class, indexed by :class:`OpClass`."""
        return np.bincount(self.op, minlength=N_OPCLASSES).astype(np.int64)

    def memory_mask(self) -> np.ndarray:
        return self.op == int(OpClass.MEMORY)

    def control_mask(self) -> np.ndarray:
        return self.op == int(OpClass.CONTROL)

    # -- composition --------------------------------------------------------------

    def slice(self, start: int, stop: int, name: str = None) -> "Trace":
        """Return a view of instructions ``[start, stop)`` as a new trace."""
        if not 0 <= start <= stop <= len(self):
            raise IndexError(
                f"slice [{start}, {stop}) out of bounds for trace of {len(self)}"
            )
        return Trace(self._data[start:stop], name or f"{self.name}[{start}:{stop}]")

    def shards(self, length: int) -> List["Trace"]:
        """Split into equal-length shards of ``length`` instructions.

        Shards carry an equal number of instructions, matching the paper's
        sharding strategy (§2.1).  A trailing remainder shorter than
        ``length`` is dropped so every shard is directly comparable.
        """
        if length <= 0:
            raise ValueError(f"shard length must be positive, got {length}")
        n_shards = len(self) // length
        return [
            self.slice(i * length, (i + 1) * length, f"{self.name}/shard{i:03d}")
            for i in range(n_shards)
        ]

    def iter_shards(self, length: int) -> Iterator["Trace"]:
        """Yield shards lazily; same semantics as :meth:`shards`."""
        for shard in self.shards(length):
            yield shard

    @staticmethod
    def concatenate(traces: Sequence["Trace"], name: str = "concat") -> "Trace":
        """Concatenate traces into one stream (e.g. phases of an application)."""
        if not traces:
            return Trace(empty_trace(0), name)
        data = np.concatenate([t.data for t in traces])
        return Trace(data, name)
