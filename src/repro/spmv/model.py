"""Domain-specific SpMV performance and power models (§5.3).

With semantic software parameters, the model shrinks: splines over block
dimensions and fill ratio, a handful of cache terms, and the interactions
that matter (fill x line size, block size x cache capacity).  This fixed
specification is itself small enough to write down — the paper's point that
"domain-specific software parameters produce smaller, more accurate
models" — but a genetic refinement can still be requested.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import ProfileDataset
from repro.core.design import ModelSpec
from repro.core.genetic import GeneticSearch
from repro.core.model import InferredModel
from repro.core.transforms import TransformKind


def spmv_model_spec() -> ModelSpec:
    """The default domain-specific specification.

    Variables: x1 = brow, x2 = bcol, x3 = fill ratio; y1 = line size,
    y2 = D$ size, y3 = D$ ways, y4 = D$ replacement, y5 = I$ size,
    y6 = I$ ways, y7 = I$ replacement.
    """
    transforms = {
        "x1": TransformKind.SPLINE,     # non-monotonic in block rows (Fig. 12)
        "x2": TransformKind.SPLINE,     # non-monotonic in block columns
        "x3": TransformKind.SPLINE,     # fill ratio: benign until it is not
        "y1": TransformKind.QUADRATIC,  # line size: amortization + overshoot
        "y2": TransformKind.QUADRATIC,  # capacity: diminishing returns
        "y3": TransformKind.QUADRATIC,  # associativity (Fig. 13's LRU effect)
        "y4": TransformKind.LINEAR,     # replacement policy level
        "y5": TransformKind.LINEAR,     # I-cache barely matters for SpMV
        "y6": TransformKind.EXCLUDED,
        "y7": TransformKind.EXCLUDED,
    }
    interactions = frozenset(
        {
            ("x3", "y1"),  # fill x line size: wasted bandwidth
            ("x1", "y1"),  # block rows x line: streaming alignment
            ("x2", "y1"),  # block cols x line: source re-use per line
            ("x3", "y2"),  # fill x capacity
            ("x1", "x2"),  # the block shape itself
            ("x3", "y3"),  # fill x associativity
            ("y1", "y2"),  # line x capacity (fewer, larger lines)
        }
    )
    return ModelSpec(transforms=transforms, interactions=interactions)


def fit_spmv_model(
    dataset: ProfileDataset,
    refine_generations: int = 0,
    seed: int = 0,
) -> InferredModel:
    """Fit the domain-specific model on sampled profiles.

    ``refine_generations > 0`` lets the genetic heuristic polish the fixed
    specification (seeding the initial population is not required — the
    space is small enough that a short random-start search recovers it).
    """
    if refine_generations > 0:
        search = GeneticSearch(population_size=24, seed=seed)
        result = search.run(dataset, refine_generations)
        return result.best_model(dataset)
    return InferredModel.fit(spmv_model_spec(), dataset)


def predicted_topology(
    model: InferredModel,
    space,
    cache,
) -> np.ndarray:
    """8x8 grid of *predicted* Mflop/s over block sizes (Figure 15b)."""
    from repro.spmv.space import BLOCK_SIZES, SPMV_SOFTWARE_NAMES
    from repro.spmv.cache import SPMV_HARDWARE_NAMES
    from repro.core.dataset import ProfileRecord

    probe = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
    for r in BLOCK_SIZES:
        for c in BLOCK_SIZES:
            probe.add(
                ProfileRecord(
                    space.matrix.name,
                    space.software_vector(r, c),
                    cache.as_vector(),
                    0.0,
                )
            )
    predictions = model.predict(probe)
    return predictions.reshape(len(BLOCK_SIZES), len(BLOCK_SIZES))
