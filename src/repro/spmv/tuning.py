"""Coordinated hardware-software tuning for SpMV (§5.3, Figure 16).

Three strategies, all driven by inferred models rather than exhaustive
profiling:

* **application tuning** — fix the cache at the untuned baseline, choose
  the matrix block size;
* **architecture tuning** — fix the code at 1x1 (unblocked), choose the
  cache configuration;
* **coordinated tuning** — choose block size and cache together.

Each search ranks candidates with the model, then *verifies the top
candidates with true measurements* — the standard model-guided-search
protocol (the paper's "hill climbing heuristics that use models to find
higher performance", §4.3).  Reported speedups and energies are always true
simulated values, never model outputs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.model import InferredModel
from repro.spmv.cache import (
    CacheConfig,
    SPMV_HARDWARE_NAMES,
    default_cache,
    sample_cache_configs,
)
from repro.spmv.space import BLOCK_SIZES, SPMV_SOFTWARE_NAMES, SpMVSpace


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning strategy on one matrix."""

    strategy: str
    r: int
    c: int
    cache: CacheConfig
    mflops: float
    nj_per_flop: float
    baseline_mflops: float
    baseline_nj_per_flop: float

    @property
    def speedup(self) -> float:
        return self.mflops / self.baseline_mflops

    @property
    def energy_ratio(self) -> float:
        """Tuned energy per flop relative to baseline (< 1 is better)."""
        return self.nj_per_flop / self.baseline_nj_per_flop


class TuningSearch:
    """Model-guided tuning over one matrix's SpMV-cache space."""

    def __init__(
        self,
        space: SpMVSpace,
        model: Optional[InferredModel] = None,
        baseline_cache: Optional[CacheConfig] = None,
        verify_top: int = 5,
    ):
        self.space = space
        self.model = model
        self.baseline_cache = baseline_cache or default_cache()
        self.verify_top = max(1, verify_top)
        self._baseline = space.evaluate(1, 1, self.baseline_cache)

    # -- public strategies ----------------------------------------------------------

    def baseline(self) -> TuningResult:
        return self._result("baseline", 1, 1, self.baseline_cache)

    def application_tuning(self) -> TuningResult:
        """Best block size on the baseline cache."""
        candidates = [
            (r, c, self.baseline_cache) for r in BLOCK_SIZES for c in BLOCK_SIZES
        ]
        r, c, cache = self._choose(candidates)
        return self._result("application", r, c, cache)

    def architecture_tuning(
        self, caches: Sequence[CacheConfig]
    ) -> TuningResult:
        """Best cache configuration for the unblocked (1x1) code."""
        candidates = [(1, 1, cache) for cache in caches]
        r, c, cache = self._choose(candidates)
        return self._result("architecture", r, c, cache)

    def coordinated_tuning(
        self, caches: Sequence[CacheConfig]
    ) -> TuningResult:
        """Best (block size, cache) pair chosen together."""
        candidates = [
            (r, c, cache)
            for cache in caches
            for r in BLOCK_SIZES
            for c in BLOCK_SIZES
        ]
        r, c, cache = self._choose(candidates)
        return self._result("coordinated", r, c, cache)

    # -- internals ------------------------------------------------------------------

    def _choose(
        self, candidates: List[Tuple[int, int, CacheConfig]]
    ) -> Tuple[int, int, CacheConfig]:
        """Rank with the model (if any), then verify the top few for real."""
        if self.model is None:
            scored = [
                (self.space.evaluate(r, c, cache).mflops, i)
                for i, (r, c, cache) in enumerate(candidates)
            ]
            best = max(scored)[1]
            return candidates[best]

        probe = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
        for r, c, cache in candidates:
            probe.add(
                ProfileRecord(
                    self.space.matrix.name,
                    self.space.software_vector(r, c),
                    cache.as_vector(),
                    0.0,
                )
            )
        predictions = self.model.predict(probe)
        top = np.argsort(predictions)[::-1][: self.verify_top]
        best_true, best_idx = -np.inf, int(top[0])
        for i in top:
            r, c, cache = candidates[int(i)]
            true = self.space.evaluate(r, c, cache).mflops
            if true > best_true:
                best_true, best_idx = true, int(i)
        return candidates[best_idx]

    def _result(self, strategy: str, r: int, c: int, cache: CacheConfig) -> TuningResult:
        outcome = self.space.evaluate(r, c, cache)
        return TuningResult(
            strategy=strategy,
            r=r,
            c=c,
            cache=cache,
            mflops=outcome.mflops,
            nj_per_flop=outcome.nj_per_flop,
            baseline_mflops=self._baseline.mflops,
            baseline_nj_per_flop=self._baseline.nj_per_flop,
        )


def tuning_cache_candidates(
    n: int, rng: np.random.Generator, include_default: bool = True
) -> List[CacheConfig]:
    """Candidate cache set for architecture/coordinated tuning."""
    caches = sample_cache_configs(n, rng)
    if include_default:
        caches.append(default_cache())
    return caches
