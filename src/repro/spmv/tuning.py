"""Coordinated hardware-software tuning for SpMV (§5.3, Figure 16).

Three strategies, all driven by inferred models rather than exhaustive
profiling:

* **application tuning** — fix the cache at the untuned baseline, choose
  the matrix block size;
* **architecture tuning** — fix the code at 1x1 (unblocked), choose the
  cache configuration;
* **coordinated tuning** — choose block size and cache together.

Each search ranks candidates with the model, then *verifies the top
candidates with true measurements* — the standard model-guided-search
protocol (the paper's "hill climbing heuristics that use models to find
higher performance", §4.3).  Reported speedups and energies are always true
simulated values, never model outputs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.model import InferredModel
from repro.spmv.cache import (
    CacheConfig,
    SPMV_HARDWARE_NAMES,
    default_cache,
    sample_cache_configs,
)
from repro.spmv.space import BLOCK_SIZES, SPMV_SOFTWARE_NAMES, SpMVSpace


class NoVerifiedCandidateError(RuntimeError):
    """Every candidate selected for verification failed true measurement."""


@dataclasses.dataclass(frozen=True)
class VerifiedCandidate:
    """One candidate whose performance was *truly measured* (never modeled).

    ``predicted`` is the model's score used for ranking (equal to
    ``mflops`` in the model-free exhaustive path); ``mflops`` is always a
    true simulated measurement from :meth:`SpMVSpace.evaluate`.
    """

    r: int
    c: int
    cache: CacheConfig
    predicted: float
    mflops: float

    @property
    def key(self) -> str:
        return f"{self.r}x{self.c}/{self.cache.key}"


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning strategy on one matrix."""

    strategy: str
    r: int
    c: int
    cache: CacheConfig
    mflops: float
    nj_per_flop: float
    baseline_mflops: float
    baseline_nj_per_flop: float

    @property
    def speedup(self) -> float:
        return self.mflops / self.baseline_mflops

    @property
    def energy_ratio(self) -> float:
        """Tuned energy per flop relative to baseline (< 1 is better)."""
        return self.nj_per_flop / self.baseline_nj_per_flop


class TuningSearch:
    """Model-guided tuning over one matrix's SpMV-cache space."""

    def __init__(
        self,
        space: SpMVSpace,
        model: Optional[InferredModel] = None,
        baseline_cache: Optional[CacheConfig] = None,
        verify_top: int = 5,
    ):
        self.space = space
        self.model = model
        self.baseline_cache = baseline_cache or default_cache()
        self.verify_top = max(1, verify_top)
        self._baseline = space.evaluate(1, 1, self.baseline_cache)

    # -- public strategies ----------------------------------------------------------

    def baseline(self) -> TuningResult:
        return self._result("baseline", 1, 1, self.baseline_cache)

    def application_tuning(self) -> TuningResult:
        """Best block size on the baseline cache."""
        candidates = [
            (r, c, self.baseline_cache) for r in BLOCK_SIZES for c in BLOCK_SIZES
        ]
        r, c, cache = self._choose(candidates)
        return self._result("application", r, c, cache)

    def architecture_tuning(
        self, caches: Sequence[CacheConfig]
    ) -> TuningResult:
        """Best cache configuration for the unblocked (1x1) code."""
        candidates = [(1, 1, cache) for cache in caches]
        r, c, cache = self._choose(candidates)
        return self._result("architecture", r, c, cache)

    def coordinated_tuning(
        self, caches: Sequence[CacheConfig]
    ) -> TuningResult:
        """Best (block size, cache) pair chosen together."""
        candidates = [
            (r, c, cache)
            for cache in caches
            for r in BLOCK_SIZES
            for c in BLOCK_SIZES
        ]
        r, c, cache = self._choose(candidates)
        return self._result("coordinated", r, c, cache)

    # -- internals ------------------------------------------------------------------

    def rank_and_verify(
        self, candidates: List[Tuple[int, int, CacheConfig]]
    ) -> List[VerifiedCandidate]:
        """Model-rank the candidates, truly measure the top few.

        Returns the verified candidates in ranking order (model score
        descending; candidate order in the model-free exhaustive path,
        where every candidate is measured).  Candidates whose measurement
        raises are skipped — a tuner must be able to survive a single
        broken configuration — and if *nothing* survives verification,
        :class:`NoVerifiedCandidateError` is raised rather than ever
        falling back to a model-only winner.
        """
        if not candidates:
            raise ValueError("no candidates to tune over")
        if self.model is None:
            order = np.arange(len(candidates))
            predictions = None
        else:
            probe = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
            for r, c, cache in candidates:
                probe.add(
                    ProfileRecord(
                        self.space.matrix.name,
                        self.space.software_vector(r, c),
                        cache.as_vector(),
                        0.0,
                    )
                )
            predictions = self.model.predict(probe)
            order = np.argsort(predictions)[::-1][: self.verify_top]
        verified: List[VerifiedCandidate] = []
        for i in order:
            r, c, cache = candidates[int(i)]
            try:
                true = float(self.space.evaluate(r, c, cache).mflops)
            except Exception:
                continue
            predicted = true if predictions is None else float(predictions[int(i)])
            verified.append(VerifiedCandidate(r, c, cache, predicted, true))
        if not verified:
            raise NoVerifiedCandidateError(
                f"all {len(order)} verification measurements failed"
            )
        return verified

    def choose_verified(
        self, candidates: List[Tuple[int, int, CacheConfig]]
    ) -> VerifiedCandidate:
        """The best truly-measured candidate.

        Ties on true Mflop/s break toward the model's ranking (earliest
        verified entry) when a model guides the search, and toward the
        last candidate in the exhaustive path (the historical behaviour
        of the max-scan, kept so memoized experiment digests are stable).
        """
        verified = self.rank_and_verify(candidates)
        if self.model is None:
            best = max(enumerate(verified), key=lambda t: (t[1].mflops, t[0]))[1]
        else:
            best = verified[0]
            for entry in verified[1:]:
                if entry.mflops > best.mflops:
                    best = entry
        return best

    def _choose(
        self, candidates: List[Tuple[int, int, CacheConfig]]
    ) -> Tuple[int, int, CacheConfig]:
        """Rank with the model (if any), then verify the top few for real."""
        best = self.choose_verified(candidates)
        return best.r, best.c, best.cache

    def _result(self, strategy: str, r: int, c: int, cache: CacheConfig) -> TuningResult:
        outcome = self.space.evaluate(r, c, cache)
        return TuningResult(
            strategy=strategy,
            r=r,
            c=c,
            cache=cache,
            mflops=outcome.mflops,
            nj_per_flop=outcome.nj_per_flop,
            baseline_mflops=self._baseline.mflops,
            baseline_nj_per_flop=self._baseline.nj_per_flop,
        )


def tuning_cache_candidates(
    n: int, rng: np.random.Generator, include_default: bool = True
) -> List[CacheConfig]:
    """Candidate cache set for architecture/coordinated tuning."""
    caches = sample_cache_configs(n, rng)
    if include_default:
        caches.append(default_cache())
    return caches
