"""Set-associative cache simulation for the SpMV study (Table 5).

Unlike the analytic miss model of the general study, the SpMV substrate
*simulates* the cache exactly: the blocked kernel's real address stream is
driven through a set-associative cache with the configured line size,
capacity, associativity, and replacement policy (LRU, NMRU, or random).
The paper's Figure 13 effects — streaming lines amortizing off-chip
latency, high associativity holding never-re-used matrix values on the LRU
stack — emerge from this simulation rather than being assumed.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, List, Sequence

import numpy as np

LINE_BYTES_LEVELS = (16, 32, 64, 128)                  # y1: 16B :: 2x :: 128B
DSIZE_KB_LEVELS = (4, 8, 16, 32, 64, 128, 256)         # y2: 4KB :: 2x :: 256KB
DWAYS_LEVELS = (1, 2, 4, 8)                            # y3: 1 :: 2x :: 8
REPL_POLICIES = ("LRU", "NMRU", "RND")                 # y4 / y7
ISIZE_KB_LEVELS = (2, 4, 8, 16, 32, 64, 128)           # y5: 2KB :: 2x :: 128KB
IWAYS_LEVELS = (1, 2, 4, 8)                            # y6


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """One point in the Table 5 cache-architecture space."""

    line_bytes: int
    dsize_kb: int
    dways: int
    drepl: str
    isize_kb: int
    iways: int
    irepl: str

    def __post_init__(self):
        if self.line_bytes not in LINE_BYTES_LEVELS:
            raise ValueError(f"line_bytes must be in {LINE_BYTES_LEVELS}")
        if self.dsize_kb not in DSIZE_KB_LEVELS:
            raise ValueError(f"dsize_kb must be in {DSIZE_KB_LEVELS}")
        if self.dways not in DWAYS_LEVELS:
            raise ValueError(f"dways must be in {DWAYS_LEVELS}")
        if self.isize_kb not in ISIZE_KB_LEVELS:
            raise ValueError(f"isize_kb must be in {ISIZE_KB_LEVELS}")
        if self.iways not in IWAYS_LEVELS:
            raise ValueError(f"iways must be in {IWAYS_LEVELS}")
        for policy in (self.drepl, self.irepl):
            if policy not in REPL_POLICIES:
                raise ValueError(f"replacement must be in {REPL_POLICIES}")

    def as_vector(self) -> np.ndarray:
        """The y1..y7 vector for the domain-specific regression model.

        Replacement policies are encoded by their level index (LRU=0,
        NMRU=1, RND=2).
        """
        return np.array(
            [
                self.line_bytes,
                self.dsize_kb,
                self.dways,
                REPL_POLICIES.index(self.drepl),
                self.isize_kb,
                self.iways,
                REPL_POLICIES.index(self.irepl),
            ],
            dtype=float,
        )

    @property
    def key(self) -> str:
        return (
            f"L{self.line_bytes}-D{self.dsize_kb}x{self.dways}{self.drepl}"
            f"-I{self.isize_kb}x{self.iways}{self.irepl}"
        )


SPMV_HARDWARE_NAMES = ("y1", "y2", "y3", "y4", "y5", "y6", "y7")

SPMV_HARDWARE_LABELS = {
    "y1": "line size (B)",
    "y2": "data cache size (KB)",
    "y3": "data cache ways",
    "y4": "data replacement policy",
    "y5": "instruction cache size (KB)",
    "y6": "instruction cache ways",
    "y7": "instruction replacement policy",
}


def default_cache() -> CacheConfig:
    """The untuned baseline architecture for the Figure 16 comparison.

    A conservative embedded configuration: short lines and a small data
    cache.  Short lines are the natural power-conscious default for an
    Xtensa-class part (less over-fetch), which is precisely why
    architecture tuning has so much streaming bandwidth to recover (§5.3).
    """
    return CacheConfig(
        line_bytes=16, dsize_kb=8, dways=2, drepl="LRU",
        isize_kb=8, iways=2, irepl="LRU",
    )


def sample_cache_configs(n: int, rng: np.random.Generator) -> List[CacheConfig]:
    """Sample ``n`` distinct cache configurations uniformly."""
    seen = set()
    out: List[CacheConfig] = []
    attempts = 0
    while len(out) < n and attempts < 100 * n:
        attempts += 1
        cfg = CacheConfig(
            line_bytes=int(rng.choice(LINE_BYTES_LEVELS)),
            dsize_kb=int(rng.choice(DSIZE_KB_LEVELS)),
            dways=int(rng.choice(DWAYS_LEVELS)),
            drepl=str(rng.choice(REPL_POLICIES)),
            isize_kb=int(rng.choice(ISIZE_KB_LEVELS)),
            iways=int(rng.choice(IWAYS_LEVELS)),
            irepl=str(rng.choice(REPL_POLICIES)),
        )
        if cfg.key in seen:
            continue
        seen.add(cfg.key)
        out.append(cfg)
    if len(out) < n:
        raise RuntimeError(f"could not sample {n} distinct cache configurations")
    return out


def enumerate_cache_configs() -> Iterator[CacheConfig]:
    """Enumerate the full Table 5 cache space."""
    for line, dsz, dw, dr, isz, iw, ir in itertools.product(
        LINE_BYTES_LEVELS, DSIZE_KB_LEVELS, DWAYS_LEVELS, REPL_POLICIES,
        ISIZE_KB_LEVELS, IWAYS_LEVELS, REPL_POLICIES,
    ):
        yield CacheConfig(line, dsz, dw, dr, isz, iw, ir)


class SetAssociativeCache:
    """An exact set-associative cache simulator.

    Parameters
    ----------
    size_bytes, line_bytes, ways:
        Geometry.  ``size_bytes`` must be a multiple of
        ``line_bytes * ways``.
    policy:
        ``"LRU"`` (evict least recently used), ``"NMRU"`` (evict a random
        line that is not the most recently used), or ``"RND"``.
    seed:
        Seed for the randomized policies.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        policy: str = "LRU",
        seed: int = 0,
    ):
        if policy not in REPL_POLICIES:
            raise ValueError(f"policy must be in {REPL_POLICIES}")
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines * line_bytes != size_bytes:
            raise ValueError("size must be a multiple of the line size")
        self.n_sets = max(1, n_lines // ways)
        if self.n_sets * ways * line_bytes != size_bytes:
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.ways = ways
        self.line_bytes = line_bytes
        self.policy = policy
        self._line_shift = line_bytes.bit_length() - 1
        # Per set: list of tags, most recently used first.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]

    def probe(self, address: int) -> bool:
        """Check whether an address would hit, without touching any state."""
        line = int(address) >> self._line_shift
        return line in self._sets[line % self.n_sets]

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = int(address) >> self._line_shift
        ways_list = self._sets[line % self.n_sets]
        try:
            position = ways_list.index(line)
        except ValueError:
            self._insert(ways_list, line)
            return False
        if position != 0:
            del ways_list[position]
            ways_list.insert(0, line)
        return True

    def simulate(self, addresses: Sequence[int]) -> int:
        """Run a full address stream; returns the miss count.

        Tight-loop implementation of :meth:`access` for throughput.
        """
        misses = 0
        sets = self._sets
        n_sets = self.n_sets
        ways = self.ways
        shift = self._line_shift
        policy = self.policy
        rng = self._rng
        lines = (np.asarray(addresses, dtype=np.int64) >> shift).tolist()
        if policy == "RND":
            evict_draws = iter(rng.integers(0, ways, size=len(lines)).tolist())
        elif policy == "NMRU":
            evict_draws = iter(
                (1 + rng.integers(0, max(1, ways - 1), size=len(lines))).tolist()
            )
        for line in lines:
            ways_list = sets[line % n_sets]
            if line in ways_list:
                if ways_list[0] != line:
                    ways_list.remove(line)
                    ways_list.insert(0, line)
                continue
            misses += 1
            if len(ways_list) >= ways:
                if policy == "LRU":
                    ways_list.pop()
                else:
                    victim = min(next(evict_draws), len(ways_list) - 1)
                    del ways_list[victim]
            ways_list.insert(0, line)
        return misses

    def _insert(self, ways_list: List[int], line: int) -> None:
        if len(ways_list) >= self.ways:
            if self.policy == "LRU":
                ways_list.pop()
            elif self.policy == "NMRU":
                victim = 1 + int(self._rng.integers(0, max(1, self.ways - 1)))
                del ways_list[min(victim, len(ways_list) - 1)]
            else:  # RND
                del ways_list[int(self._rng.integers(0, len(ways_list)))]
        ways_list.insert(0, line)
