"""Set-associative cache simulation for the SpMV study (Table 5).

Unlike the analytic miss model of the general study, the SpMV substrate
*simulates* the cache exactly: the blocked kernel's real address stream is
driven through a set-associative cache with the configured line size,
capacity, associativity, and replacement policy (LRU, NMRU, or random).
The paper's Figure 13 effects — streaming lines amortizing off-chip
latency, high associativity holding never-re-used matrix values on the LRU
stack — emerge from this simulation rather than being assumed.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, List, Sequence

import numpy as np

from repro import obs
from repro.profiling.reuse import stack_distances_and_prev

#: Below this many accesses the vectorized LRU path's setup cost is not
#: worth it; short streams go through the reference loop.
_VECTORIZE_MIN = 256

LINE_BYTES_LEVELS = (16, 32, 64, 128)                  # y1: 16B :: 2x :: 128B
DSIZE_KB_LEVELS = (4, 8, 16, 32, 64, 128, 256)         # y2: 4KB :: 2x :: 256KB
DWAYS_LEVELS = (1, 2, 4, 8)                            # y3: 1 :: 2x :: 8
REPL_POLICIES = ("LRU", "NMRU", "RND")                 # y4 / y7
ISIZE_KB_LEVELS = (2, 4, 8, 16, 32, 64, 128)           # y5: 2KB :: 2x :: 128KB
IWAYS_LEVELS = (1, 2, 4, 8)                            # y6


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """One point in the Table 5 cache-architecture space."""

    line_bytes: int
    dsize_kb: int
    dways: int
    drepl: str
    isize_kb: int
    iways: int
    irepl: str

    def __post_init__(self):
        if self.line_bytes not in LINE_BYTES_LEVELS:
            raise ValueError(f"line_bytes must be in {LINE_BYTES_LEVELS}")
        if self.dsize_kb not in DSIZE_KB_LEVELS:
            raise ValueError(f"dsize_kb must be in {DSIZE_KB_LEVELS}")
        if self.dways not in DWAYS_LEVELS:
            raise ValueError(f"dways must be in {DWAYS_LEVELS}")
        if self.isize_kb not in ISIZE_KB_LEVELS:
            raise ValueError(f"isize_kb must be in {ISIZE_KB_LEVELS}")
        if self.iways not in IWAYS_LEVELS:
            raise ValueError(f"iways must be in {IWAYS_LEVELS}")
        for policy in (self.drepl, self.irepl):
            if policy not in REPL_POLICIES:
                raise ValueError(f"replacement must be in {REPL_POLICIES}")

    def as_vector(self) -> np.ndarray:
        """The y1..y7 vector for the domain-specific regression model.

        Replacement policies are encoded by their level index (LRU=0,
        NMRU=1, RND=2).
        """
        return np.array(
            [
                self.line_bytes,
                self.dsize_kb,
                self.dways,
                REPL_POLICIES.index(self.drepl),
                self.isize_kb,
                self.iways,
                REPL_POLICIES.index(self.irepl),
            ],
            dtype=float,
        )

    @property
    def key(self) -> str:
        return (
            f"L{self.line_bytes}-D{self.dsize_kb}x{self.dways}{self.drepl}"
            f"-I{self.isize_kb}x{self.iways}{self.irepl}"
        )


SPMV_HARDWARE_NAMES = ("y1", "y2", "y3", "y4", "y5", "y6", "y7")

SPMV_HARDWARE_LABELS = {
    "y1": "line size (B)",
    "y2": "data cache size (KB)",
    "y3": "data cache ways",
    "y4": "data replacement policy",
    "y5": "instruction cache size (KB)",
    "y6": "instruction cache ways",
    "y7": "instruction replacement policy",
}


def default_cache() -> CacheConfig:
    """The untuned baseline architecture for the Figure 16 comparison.

    A conservative embedded configuration: short lines and a small data
    cache.  Short lines are the natural power-conscious default for an
    Xtensa-class part (less over-fetch), which is precisely why
    architecture tuning has so much streaming bandwidth to recover (§5.3).
    """
    return CacheConfig(
        line_bytes=16, dsize_kb=8, dways=2, drepl="LRU",
        isize_kb=8, iways=2, irepl="LRU",
    )


def sample_cache_configs(n: int, rng: np.random.Generator) -> List[CacheConfig]:
    """Sample ``n`` distinct cache configurations uniformly."""
    seen = set()
    out: List[CacheConfig] = []
    attempts = 0
    while len(out) < n and attempts < 100 * n:
        attempts += 1
        cfg = CacheConfig(
            line_bytes=int(rng.choice(LINE_BYTES_LEVELS)),
            dsize_kb=int(rng.choice(DSIZE_KB_LEVELS)),
            dways=int(rng.choice(DWAYS_LEVELS)),
            drepl=str(rng.choice(REPL_POLICIES)),
            isize_kb=int(rng.choice(ISIZE_KB_LEVELS)),
            iways=int(rng.choice(IWAYS_LEVELS)),
            irepl=str(rng.choice(REPL_POLICIES)),
        )
        if cfg.key in seen:
            continue
        seen.add(cfg.key)
        out.append(cfg)
    if len(out) < n:
        raise RuntimeError(f"could not sample {n} distinct cache configurations")
    return out


def enumerate_cache_configs() -> Iterator[CacheConfig]:
    """Enumerate the full Table 5 cache space."""
    for line, dsz, dw, dr, isz, iw, ir in itertools.product(
        LINE_BYTES_LEVELS, DSIZE_KB_LEVELS, DWAYS_LEVELS, REPL_POLICIES,
        ISIZE_KB_LEVELS, IWAYS_LEVELS, REPL_POLICIES,
    ):
        yield CacheConfig(line, dsz, dw, dr, isz, iw, ir)


class SetAssociativeCache:
    """An exact set-associative cache simulator.

    Parameters
    ----------
    size_bytes, line_bytes, ways:
        Geometry.  ``size_bytes`` must be a multiple of
        ``line_bytes * ways``.
    policy:
        ``"LRU"`` (evict least recently used), ``"NMRU"`` (evict a random
        line that is not the most recently used), or ``"RND"``.
    seed:
        Seed for the randomized policies.
    """

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int,
        ways: int,
        policy: str = "LRU",
        seed: int = 0,
    ):
        if policy not in REPL_POLICIES:
            raise ValueError(f"policy must be in {REPL_POLICIES}")
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // line_bytes
        if n_lines * line_bytes != size_bytes:
            raise ValueError("size must be a multiple of the line size")
        self.n_sets = max(1, n_lines // ways)
        if self.n_sets * ways * line_bytes != size_bytes:
            raise ValueError("size must be a multiple of line_bytes * ways")
        self.ways = ways
        self.line_bytes = line_bytes
        self.policy = policy
        self._line_shift = line_bytes.bit_length() - 1
        # Per set: list of tags, most recently used first.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]

    def probe(self, address: int) -> bool:
        """Check whether an address would hit, without touching any state."""
        line = int(address) >> self._line_shift
        return line in self._sets[line % self.n_sets]

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = int(address) >> self._line_shift
        ways_list = self._sets[line % self.n_sets]
        try:
            position = ways_list.index(line)
        except ValueError:
            self._insert(ways_list, line)
            return False
        if position != 0:
            del ways_list[position]
            ways_list.insert(0, line)
        return True

    def simulate(self, addresses: Sequence[int]) -> int:
        """Run a full address stream; returns the miss count.

        Equivalent to an :meth:`access` call per address (same miss count,
        same final state, same RNG consumption for the randomized
        policies).  LRU streams long enough to amortize the setup take a
        numpy fast path with no per-access Python work; everything else
        (randomized policies, warm caches, tiny streams) runs the
        reference loop.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        # One span per *stream* (not per access): the timing cost is fixed
        # per call, so the vectorized inner loops stay untouched.
        with obs.span("kernel.cache_sim"):
            obs.counter("kernel.cache_accesses").inc(len(addrs))
            if (
                self.policy == "LRU"
                and len(addrs) >= _VECTORIZE_MIN
                and not any(self._sets)
            ):
                return self._simulate_lru_vectorized(addrs)
            return self.simulate_reference(addrs)

    def _group_by_set(self, lines: np.ndarray) -> np.ndarray:
        """Reorder ``lines`` so each set's subsequence is contiguous.

        Program order is preserved within each set: the sort keys
        ``set * m + position`` are unique, so an unstable argsort is
        grouping-stable at a fraction of ``kind="stable"``'s cost.
        """
        m = len(lines)
        sets = (lines % self.n_sets).astype(np.int64)
        order = np.argsort(sets * np.int64(m) + np.arange(m, dtype=np.int64))
        return lines[order]

    def simulate_reference(self, addresses: Sequence[int]) -> int:
        """Per-access loop implementation of :meth:`simulate`.

        Eviction draws happen lazily, one per conflict miss, exactly as in
        :meth:`access` — so a ``simulate_reference`` call is RNG-identical
        to the equivalent sequence of ``access`` calls (an earlier revision
        pre-drew one victim per *access*, which wasted draws and diverged
        from the incremental API).
        """
        misses = 0
        sets = self._sets
        n_sets = self.n_sets
        ways = self.ways
        policy = self.policy
        rng = self._rng
        lines = (np.asarray(addresses, dtype=np.int64) >> self._line_shift).tolist()
        nmru_span = max(1, ways - 1)
        for line in lines:
            ways_list = sets[line % n_sets]
            if line in ways_list:
                if ways_list[0] != line:
                    ways_list.remove(line)
                    ways_list.insert(0, line)
                continue
            misses += 1
            if len(ways_list) >= ways:
                if policy == "LRU":
                    ways_list.pop()
                elif policy == "NMRU":
                    victim = 1 + int(rng.integers(0, nmru_span))
                    del ways_list[min(victim, len(ways_list) - 1)]
                else:  # RND
                    del ways_list[int(rng.integers(0, len(ways_list)))]
            ways_list.insert(0, line)
        return misses

    def _simulate_lru_vectorized(self, addrs: np.ndarray) -> int:
        """Batched cold-start LRU simulation.

        A set-associative LRU cache hits exactly when the access's *per-set*
        stack distance (distinct lines mapping to the same set touched since
        the previous access to this line) is below the associativity.
        Grouping the stream by set makes each set's subsequence contiguous
        while preserving its program order, so one vectorized stack-distance
        pass over the grouped stream yields every per-set distance at once
        (a line determines its set, so no same-line window ever crosses a
        set boundary).

        One- and two-way caches skip the stack-distance machinery entirely:
        on the repeat-collapsed grouped stream every surviving access has
        distance >= 1, so a direct-mapped cache misses on all of them, and
        a two-way cache hits exactly when the line two collapsed positions
        back is the same (equal lines imply the same set, so no segment
        test is needed).

        For mid-associativity (4-8 way) caches the crossover against the
        reference loop depends on how much the stream collapses, so the
        cheap grouping+collapse probe runs first and falls back to the
        loop when the collapsed stream is still most of the input.
        """
        lines = addrs >> self._line_shift
        grouped = self._group_by_set(lines)
        misses: int
        if self.ways <= 2:
            m = len(grouped)
            keep = np.empty(m, dtype=bool)
            keep[0] = True
            np.not_equal(grouped[1:], grouped[:-1], out=keep[1:])
            collapsed = grouped[keep]
            if self.ways == 1:
                misses = int(len(collapsed))
            else:
                hits2 = collapsed[2:] == collapsed[:-2]
                misses = int(len(collapsed) - hits2.sum())
            self._rebuild_small_ways(collapsed)
        else:
            if self.ways <= 8:
                n_distinct_steps = 1 + int(
                    np.count_nonzero(grouped[1:] != grouped[:-1])
                )
                if 4 * n_distinct_steps > len(grouped):
                    return self.simulate_reference(addrs)
            distances, _, collapsed, prev = stack_distances_and_prev(grouped)
            misses = int((distances >= self.ways).sum())
            self._rebuild_from_collapsed(collapsed, prev)
        return misses

    def _rebuild_small_ways(self, collapsed: np.ndarray) -> None:
        """Final state for 1- and 2-way caches from the collapsed stream.

        Consecutive collapsed entries always differ, so a set's final MRU
        list is simply the last one (or two) entries of its segment.
        """
        self._sets = [[] for _ in range(self.n_sets)]
        if len(collapsed) == 0:
            return
        sets_c = collapsed % self.n_sets
        ends = np.flatnonzero(np.r_[sets_c[1:] != sets_c[:-1], True])
        for end in ends.tolist():
            set_id = int(sets_c[end])
            entry = [int(collapsed[end])]
            if self.ways == 2 and end > 0 and sets_c[end - 1] == set_id:
                entry.append(int(collapsed[end - 1]))
            self._sets[set_id] = entry

    def _rebuild_from_collapsed(
        self, collapsed: np.ndarray, prev: np.ndarray
    ) -> None:
        """Final per-set MRU lists from the collapsed grouped stream.

        An access is its line's *last* when no later access points back at
        it through ``prev``.  Those last accesses appear in (set, program
        order) — the collapsed stream is grouped — so within each set they
        are already recency-sorted (oldest first); keeping the final
        ``ways`` of each segment and appending in reverse builds every MRU
        list without another sort.
        """
        self._sets = [[] for _ in range(self.n_sets)]
        n = len(collapsed)
        if n == 0:
            return
        has_next = np.zeros(n, dtype=bool)
        links = prev[prev >= 0]
        has_next[links] = True
        last_idx = np.flatnonzero(~has_next)
        lines_last = collapsed[last_idx]
        sets_last = lines_last % self.n_sets  # non-decreasing
        starts = np.flatnonzero(np.r_[True, sets_last[1:] != sets_last[:-1]])
        sizes = np.diff(np.r_[starts, len(sets_last)])
        ends_excl = starts + sizes
        rank_from_end = (
            np.repeat(ends_excl, sizes) - 1 - np.arange(len(sets_last))
        )
        keep = rank_from_end < self.ways
        sets_kept = sets_last[keep].tolist()
        lines_kept = lines_last[keep].tolist()
        for set_id, line in zip(reversed(sets_kept), reversed(lines_kept)):
            self._sets[set_id].append(line)

    def _insert(self, ways_list: List[int], line: int) -> None:
        if len(ways_list) >= self.ways:
            if self.policy == "LRU":
                ways_list.pop()
            elif self.policy == "NMRU":
                victim = 1 + int(self._rng.integers(0, max(1, self.ways - 1)))
                del ways_list[min(victim, len(ways_list) - 1)]
            else:  # RND
                del ways_list[int(self._rng.integers(0, len(ways_list)))]
        ways_list.insert(0, line)
