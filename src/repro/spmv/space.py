"""The integrated SpMV-cache space: sampling, evaluation, datasets (§5.3).

Software coordinates are the domain-specific parameters of Table 5:
block rows (x1 = brow), block columns (x2 = bcol), and the fill ratio
(x3 = fR, a function of brow, bcol, and the matrix).  Hardware coordinates
are the seven cache parameters.  Performance is true Mflop/s; power is
nJ/Flop.

"Rather than measure locality with re-use distances, SpMV block sizes
directly quantify the amount of exploitable locality" — which is why three
semantic parameters replace thirteen instruction-level ones.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import store as store_mod
from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.spmv.bcsr import BCSRMatrix, to_bcsr
from repro.spmv.cache import (
    CacheConfig,
    SPMV_HARDWARE_NAMES,
    sample_cache_configs,
)
from repro.spmv.kernel import KernelTrace, kernel_scalars, kernel_trace
from repro.spmv.machine import SpMVResult, run_trace, run_trace_batch
from repro.spmv.matrices import SparseMatrix

SPMV_SOFTWARE_NAMES = ("x1", "x2", "x3")

SPMV_SOFTWARE_LABELS = {
    "x1": "brow (block rows)",
    "x2": "bcol (block columns)",
    "x3": "fR (fill ratio)",
}

BLOCK_SIZES = tuple(range(1, 9))  # 1..8 in each dimension (64 variants)


class SpMVSpace:
    """Evaluation oracle over one matrix's integrated HW-SW space.

    Memoizes BCSR conversions (64 per matrix) and simulation results, so
    repeated tuning searches and dataset builds never re-simulate a
    configuration.
    """

    def __init__(self, matrix: SparseMatrix, seed: int = 0):
        self.matrix = matrix
        self.seed = seed
        self._bcsr: Dict[Tuple[int, int], BCSRMatrix] = {}
        self._traces: Dict[Tuple[int, int], KernelTrace] = {}
        self._results: Dict[Tuple[int, int, str], SpMVResult] = {}

    def bcsr(self, r: int, c: int) -> BCSRMatrix:
        key = (r, c)
        if key not in self._bcsr:
            self._bcsr[key] = to_bcsr(self.matrix, r, c)
        return self._bcsr[key]

    def fill_ratio(self, r: int, c: int) -> float:
        return self.bcsr(r, c).fill_ratio

    def trace(self, r: int, c: int) -> KernelTrace:
        """The (memoized, store-backed) kernel trace for one block size.

        The address stream is deterministic given the matrix and block
        size, so it is published once to :mod:`repro.store` and
        memory-mapped on every later request — across processes and runs
        — instead of re-running the Python tracing loop.  The scalar
        counts are recomputed in closed form from the BCSR conversion.
        """
        key = (r, c)
        trace = self._traces.get(key)
        if trace is None:
            trace = self._load_or_trace(r, c)
            self._traces[key] = trace
        return trace

    def _trace_column_key(self, r: int, c: int) -> str:
        m = self.matrix
        return (
            f"spmv/{m.name}-{m.n_rows}x{m.n_cols}-nnz{m.nnz}/r{r}c{c}"
        )

    def _load_or_trace(self, r: int, c: int) -> KernelTrace:
        if not store_mod.enabled():
            return kernel_trace(self.bcsr(r, c))
        store = store_mod.Store()
        column = self._trace_column_key(r, c)
        bcsr = self.bcsr(r, c)
        try:
            addresses = store.get(column)
        except store_mod.StoreError:
            trace = kernel_trace(bcsr)
            store.put(column, trace.addresses)
            # Serve the freshly published column as a mapping too, so
            # downstream consumers (pool shipping) can swizzle it.
            try:
                addresses = store.get(column)
            except store_mod.StoreError:
                return trace
        n_instructions, true_flops, total_flops, code_bytes = kernel_scalars(bcsr)
        return KernelTrace(
            addresses=addresses,
            n_instructions=n_instructions,
            true_flops=true_flops,
            total_flops=total_flops,
            code_bytes=code_bytes,
        )

    def evaluate(self, r: int, c: int, cache: CacheConfig) -> SpMVResult:
        """Simulate (or recall) one (block size, cache) configuration."""
        key = (r, c, cache.key)
        if key not in self._results:
            self._results[key] = run_trace(
                self.trace(r, c), self.fill_ratio(r, c), cache, self.seed
            )
        return self._results[key]

    def evaluate_batch(
        self, r: int, c: int, caches: Sequence[CacheConfig]
    ) -> List[SpMVResult]:
        """Simulate many caches on one block size in one batched pass.

        Results are bit-identical to per-cache :meth:`evaluate` calls and
        land in the same memo, so the two entry points can be mixed.
        """
        pending = []
        seen = set()
        for cache in caches:
            if (r, c, cache.key) not in self._results and cache.key not in seen:
                seen.add(cache.key)
                pending.append(cache)
        if pending:
            results = run_trace_batch(
                self.trace(r, c), self.fill_ratio(r, c), pending, self.seed
            )
            for cache, result in zip(pending, results):
                self._results[(r, c, cache.key)] = result
        return [self._results[(r, c, cache.key)] for cache in caches]

    # -- dataset construction -------------------------------------------------------

    def software_vector(self, r: int, c: int) -> np.ndarray:
        return np.array([r, c, self.fill_ratio(r, c)], dtype=float)

    def record(
        self, r: int, c: int, cache: CacheConfig, target: str = "mflops"
    ) -> ProfileRecord:
        result = self.evaluate(r, c, cache)
        z = getattr(result, target)
        return ProfileRecord(
            application=self.matrix.name,
            x=self.software_vector(r, c),
            y=cache.as_vector(),
            z=float(z),
            tag=f"{r}x{c}/{cache.key}",
        )

    def sample_dataset(
        self,
        n_samples: int,
        rng: np.random.Generator,
        target: str = "mflops",
    ) -> ProfileDataset:
        """Randomly sample the integrated space into a profile dataset.

        All block-size draws happen up front (the simulation consumes no
        draws from ``rng``, so the draw sequence matches the historical
        sample-then-evaluate loop exactly); evaluation is then grouped by
        block size so each group runs through the batched cache
        simulator.  Records are emitted in draw order — the dataset is
        bit-identical to the per-pair construction.
        """
        dataset = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
        caches = sample_cache_configs(min(n_samples, 2000), rng)
        picks = [
            (int(rng.choice(BLOCK_SIZES)), int(rng.choice(BLOCK_SIZES)))
            for _ in range(n_samples)
        ]
        grouped: Dict[Tuple[int, int], List[int]] = {}
        for i, pick in enumerate(picks):
            grouped.setdefault(pick, []).append(i)
        for (r, c), indices in grouped.items():
            self.evaluate_batch(r, c, [caches[i % len(caches)] for i in indices])
        for i, (r, c) in enumerate(picks):
            dataset.add(self.record(r, c, caches[i % len(caches)], target))
        return dataset

    def topology(self, cache: CacheConfig) -> np.ndarray:
        """8x8 grid of true Mflop/s over all block sizes (Figure 15a)."""
        grid = np.empty((len(BLOCK_SIZES), len(BLOCK_SIZES)))
        for i, r in enumerate(BLOCK_SIZES):
            for j, c in enumerate(BLOCK_SIZES):
                grid[i, j] = self.evaluate(r, c, cache).mflops
        return grid
