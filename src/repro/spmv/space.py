"""The integrated SpMV-cache space: sampling, evaluation, datasets (§5.3).

Software coordinates are the domain-specific parameters of Table 5:
block rows (x1 = brow), block columns (x2 = bcol), and the fill ratio
(x3 = fR, a function of brow, bcol, and the matrix).  Hardware coordinates
are the seven cache parameters.  Performance is true Mflop/s; power is
nJ/Flop.

"Rather than measure locality with re-use distances, SpMV block sizes
directly quantify the amount of exploitable locality" — which is why three
semantic parameters replace thirteen instruction-level ones.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.spmv.bcsr import BCSRMatrix, to_bcsr
from repro.spmv.cache import (
    CacheConfig,
    SPMV_HARDWARE_NAMES,
    sample_cache_configs,
)
from repro.spmv.machine import SpMVResult, run_spmv
from repro.spmv.matrices import SparseMatrix

SPMV_SOFTWARE_NAMES = ("x1", "x2", "x3")

SPMV_SOFTWARE_LABELS = {
    "x1": "brow (block rows)",
    "x2": "bcol (block columns)",
    "x3": "fR (fill ratio)",
}

BLOCK_SIZES = tuple(range(1, 9))  # 1..8 in each dimension (64 variants)


class SpMVSpace:
    """Evaluation oracle over one matrix's integrated HW-SW space.

    Memoizes BCSR conversions (64 per matrix) and simulation results, so
    repeated tuning searches and dataset builds never re-simulate a
    configuration.
    """

    def __init__(self, matrix: SparseMatrix, seed: int = 0):
        self.matrix = matrix
        self.seed = seed
        self._bcsr: Dict[Tuple[int, int], BCSRMatrix] = {}
        self._results: Dict[Tuple[int, int, str], SpMVResult] = {}

    def bcsr(self, r: int, c: int) -> BCSRMatrix:
        key = (r, c)
        if key not in self._bcsr:
            self._bcsr[key] = to_bcsr(self.matrix, r, c)
        return self._bcsr[key]

    def fill_ratio(self, r: int, c: int) -> float:
        return self.bcsr(r, c).fill_ratio

    def evaluate(self, r: int, c: int, cache: CacheConfig) -> SpMVResult:
        """Simulate (or recall) one (block size, cache) configuration."""
        key = (r, c, cache.key)
        if key not in self._results:
            self._results[key] = run_spmv(self.bcsr(r, c), cache, self.seed)
        return self._results[key]

    # -- dataset construction -------------------------------------------------------

    def software_vector(self, r: int, c: int) -> np.ndarray:
        return np.array([r, c, self.fill_ratio(r, c)], dtype=float)

    def record(
        self, r: int, c: int, cache: CacheConfig, target: str = "mflops"
    ) -> ProfileRecord:
        result = self.evaluate(r, c, cache)
        z = getattr(result, target)
        return ProfileRecord(
            application=self.matrix.name,
            x=self.software_vector(r, c),
            y=cache.as_vector(),
            z=float(z),
            tag=f"{r}x{c}/{cache.key}",
        )

    def sample_dataset(
        self,
        n_samples: int,
        rng: np.random.Generator,
        target: str = "mflops",
    ) -> ProfileDataset:
        """Randomly sample the integrated space into a profile dataset."""
        dataset = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
        caches = sample_cache_configs(min(n_samples, 2000), rng)
        for i in range(n_samples):
            r = int(rng.choice(BLOCK_SIZES))
            c = int(rng.choice(BLOCK_SIZES))
            cache = caches[i % len(caches)]
            dataset.add(self.record(r, c, cache, target))
        return dataset

    def topology(self, cache: CacheConfig) -> np.ndarray:
        """8x8 grid of true Mflop/s over all block sizes (Figure 15a)."""
        grid = np.empty((len(BLOCK_SIZES), len(BLOCK_SIZES)))
        for i, r in enumerate(BLOCK_SIZES):
            for j, c in enumerate(BLOCK_SIZES):
                grid[i, j] = self.evaluate(r, c, cache).mflops
        return grid
