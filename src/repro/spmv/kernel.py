"""The blocked SpMV kernel's memory access stream and instruction counts.

The timing model does not run Xtensa binaries; it traces the *exact* memory
reference stream the register-blocked kernel makes (Figure 11's layout) and
counts the instructions an OSKI-style unrolled r x c kernel executes.  The
access stream is what the cache simulator consumes; the instruction count
is what the in-order core model charges at one cycle each.

Per block row, the kernel:

1. reads the block-row pointer (``b_row_start``),
2. loads the r destination elements into registers,
3. for each block: reads its column index, streams the r*c stored values,
   and re-reads the c source elements,
4. stores the r destination elements back.

Data structures live in disjoint address regions so they never alias.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spmv.bcsr import BCSRMatrix

DOUBLE_BYTES = 8
INDEX_BYTES = 4

# Address-region bases (1 GiB apart; no aliasing at any Table 5 geometry).
ROW_START_BASE = 0x1000_0000
COL_IDX_BASE = 0x5000_0000
VALUE_BASE = 0x9000_0000
SOURCE_BASE = 0xD000_0000
DEST_BASE = 0x1_1000_0000

# Instruction-count model for an unrolled r x c kernel iteration.
INSTRUCTIONS_PER_BLOCK_OVERHEAD = 4   # index load, address arithmetic, loop
INSTRUCTIONS_PER_FLOP = 1             # fused multiply-accumulate per stored value pair
INSTRUCTIONS_PER_VALUE_LOAD = 1
INSTRUCTIONS_PER_ROW_OVERHEAD = 6     # row pointer, dest load/store setup


@dataclasses.dataclass(frozen=True)
class KernelTrace:
    """Access stream and operation counts of one blocked SpMV execution."""

    addresses: np.ndarray      # byte addresses, program order
    n_instructions: int
    true_flops: int            # 2 * original nnz (excludes filled zeros)
    total_flops: int           # 2 * stored values (includes filled zeros)
    code_bytes: int            # unrolled kernel footprint for the I-cache


def kernel_scalars(bcsr: BCSRMatrix) -> tuple:
    """``(n_instructions, true_flops, total_flops, code_bytes)`` of one pass.

    Closed-form counts — no tracing loop — so a cached address stream
    (e.g. a :mod:`repro.store` column) can be turned back into a full
    :class:`KernelTrace` without re-tracing.
    """
    r, c = bcsr.r, bcsr.c
    n_instructions = (
        bcsr.n_blocks
        * (
            INSTRUCTIONS_PER_BLOCK_OVERHEAD
            + r * c * (INSTRUCTIONS_PER_FLOP + INSTRUCTIONS_PER_VALUE_LOAD)
            + c  # source loads
        )
        + bcsr.n_block_rows * (INSTRUCTIONS_PER_ROW_OVERHEAD + 2 * r)
    )
    # The unrolled kernel body grows with the block area (OSKI generates one
    # specialized routine per r x c).
    code_bytes = 96 + 20 * r * c
    return (
        int(n_instructions),
        2 * bcsr.original_nnz,
        2 * bcsr.stored_values,
        code_bytes,
    )


def kernel_trace(bcsr: BCSRMatrix) -> KernelTrace:
    """Trace one full v += A u pass over a BCSR matrix."""
    r, c = bcsr.r, bcsr.c
    n_blocks = bcsr.n_blocks
    n_block_rows = bcsr.n_block_rows

    # --- count accesses to pre-size the array ---------------------------------
    per_block = 1 + r * c + c            # col idx + values + source
    per_row = 1 + 2 * r                  # row pointer + dest load/store
    total = n_blocks * per_block + n_block_rows * per_row
    addresses = np.empty(total, dtype=np.int64)

    pos = 0
    value_cursor = 0
    col_idx = bcsr.b_col_idx
    row_start = bcsr.b_row_start
    value_offsets = np.arange(r * c, dtype=np.int64) * DOUBLE_BYTES
    source_offsets = np.arange(c, dtype=np.int64) * DOUBLE_BYTES
    dest_offsets = np.arange(r, dtype=np.int64) * DOUBLE_BYTES

    for brow in range(n_block_rows):
        addresses[pos] = ROW_START_BASE + brow * INDEX_BYTES
        pos += 1
        dest = DEST_BASE + brow * r * DOUBLE_BYTES + dest_offsets
        addresses[pos : pos + r] = dest  # load destinations
        pos += r
        for k in range(row_start[brow], row_start[brow + 1]):
            addresses[pos] = COL_IDX_BASE + k * INDEX_BYTES
            pos += 1
            base = VALUE_BASE + value_cursor * DOUBLE_BYTES
            addresses[pos : pos + r * c] = base + value_offsets
            pos += r * c
            value_cursor += r * c
            src = SOURCE_BASE + col_idx[k] * DOUBLE_BYTES + source_offsets
            addresses[pos : pos + c] = src
            pos += c
        addresses[pos : pos + r] = dest  # store destinations
        pos += r

    n_instructions, true_flops, total_flops, code_bytes = kernel_scalars(bcsr)
    return KernelTrace(
        addresses=addresses[:pos],
        n_instructions=n_instructions,
        true_flops=true_flops,
        total_flops=total_flops,
        code_bytes=code_bytes,
    )
