"""Block compressed sparse row (BCSR) storage and register blocking.

The paper's Figure 11 layout: a matrix is tiled into r x c blocks; blocks
containing at least one non-zero are stored *densely* (explicit zeros fill
the gaps), contiguously in ``b_value``.  ``b_col_idx`` holds the first
column of each stored block and ``b_row_start`` points at each block row's
first entry in ``b_col_idx``.

The **fill ratio** — stored values (original non-zeros plus filled zeros)
divided by original non-zeros — is the software cost of blocking: filled
zeros waste floating-point work and bandwidth but buy dense, streamable
structure (§5.2).

Example (the paper's Figure 11, 2x2 blocks)::

    >>> import numpy as np
    >>> from repro.spmv.matrices import SparseMatrix
    >>> A = np.array([
    ...     [1, 2, 0, 0, 0, 0],
    ...     [3, 4, 0, 0, 5, 6],
    ...     [0, 0, 7, 0, 8, 9],
    ...     [0, 0, 0, 10, 11, 12],
    ... ], dtype=float)
    >>> b = to_bcsr(SparseMatrix.from_dense(A), 2, 2)
    >>> b.b_row_start.tolist()
    [0, 2, 4]
    >>> b.b_col_idx.tolist()
    [0, 4, 2, 4]
    >>> b.b_value.tolist()
    [1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 5.0, 6.0, 7.0, 0.0, 0.0, 10.0, 8.0, 9.0, 11.0, 12.0]
    >>> b.fill_ratio
    1.3333333333333333
"""

from __future__ import annotations

import dataclasses
import numpy as np

from repro.spmv.matrices import SparseMatrix

MAX_BLOCK = 8  # Table 5: block sizes range over 1..8 in each dimension


@dataclasses.dataclass
class BCSRMatrix:
    """An r x c register-blocked sparse matrix."""

    n_rows: int
    n_cols: int
    r: int
    c: int
    b_row_start: np.ndarray   # (n_block_rows + 1,) into b_col_idx
    b_col_idx: np.ndarray     # (n_blocks,) first column of each block
    b_value: np.ndarray       # (n_blocks * r * c,) dense blocks, row-major
    original_nnz: int
    name: str = "bcsr"

    @property
    def n_blocks(self) -> int:
        return len(self.b_col_idx)

    @property
    def n_block_rows(self) -> int:
        return len(self.b_row_start) - 1

    @property
    def stored_values(self) -> int:
        return self.n_blocks * self.r * self.c

    @property
    def fill_ratio(self) -> float:
        """Stored values / original non-zeros (>= 1)."""
        if self.original_nnz == 0:
            return 1.0
        return self.stored_values / self.original_nnz

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Blocked SpMV: v = A u, streaming block by block.

        Mirrors the access pattern the timing model traces: for each block
        row, destination elements stay in registers while source elements
        are re-used c at a time per block.
        """
        u = np.asarray(u, dtype=float)
        if len(u) != self.n_cols:
            raise ValueError(f"vector length {len(u)} != {self.n_cols} columns")
        v = np.zeros(self.n_rows)
        r, c = self.r, self.c
        for brow in range(self.n_block_rows):
            row0 = brow * r
            rows_here = min(r, self.n_rows - row0)
            acc = np.zeros(r)
            for k in range(self.b_row_start[brow], self.b_row_start[brow + 1]):
                col0 = self.b_col_idx[k]
                block = self.b_value[k * r * c : (k + 1) * r * c].reshape(r, c)
                cols_here = min(c, self.n_cols - col0)
                acc += block[:, :cols_here] @ u[col0 : col0 + cols_here]
            v[row0 : row0 + rows_here] += acc[:rows_here]
        return v

    def to_csr(self) -> SparseMatrix:
        """Expand back to CSR (explicit zeros dropped)."""
        r, c = self.r, self.c
        rows, cols, vals = [], [], []
        for brow in range(self.n_block_rows):
            for k in range(self.b_row_start[brow], self.b_row_start[brow + 1]):
                col0 = self.b_col_idx[k]
                block = self.b_value[k * r * c : (k + 1) * r * c].reshape(r, c)
                for i in range(r):
                    row = brow * r + i
                    if row >= self.n_rows:
                        continue
                    for j in range(c):
                        col = col0 + j
                        if col < self.n_cols and block[i, j] != 0.0:
                            rows.append(row)
                            cols.append(col)
                            vals.append(block[i, j])
        return SparseMatrix(
            self.n_rows, self.n_cols,
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals),
            f"{self.name}-csr",
        )


def to_bcsr(matrix: SparseMatrix, r: int, c: int) -> BCSRMatrix:
    """Convert a CSR matrix to r x c BCSR (zero-filling partial blocks)."""
    if not 1 <= r <= MAX_BLOCK or not 1 <= c <= MAX_BLOCK:
        raise ValueError(f"block sizes must be 1..{MAX_BLOCK}, got {r}x{c}")
    n_block_rows = -(-matrix.n_rows // r)

    coo_rows = np.repeat(
        np.arange(matrix.n_rows), np.diff(matrix.indptr)
    )
    coo_cols = matrix.indices
    coo_vals = matrix.values

    brows = coo_rows // r
    bcols = coo_cols // c
    # Sort by (block row, block col), then assign block slots.
    order = np.lexsort((bcols, brows))
    brows_s, bcols_s = brows[order], bcols[order]
    rows_s, cols_s, vals_s = coo_rows[order], coo_cols[order], coo_vals[order]

    if len(brows_s):
        key_change = np.concatenate(
            [[True], (brows_s[1:] != brows_s[:-1]) | (bcols_s[1:] != bcols_s[:-1])]
        )
        block_of_entry = np.cumsum(key_change) - 1
        n_blocks = int(block_of_entry[-1]) + 1
        block_brow = brows_s[key_change]
        block_bcol = bcols_s[key_change]
    else:
        block_of_entry = np.empty(0, dtype=np.int64)
        n_blocks = 0
        block_brow = np.empty(0, dtype=np.int64)
        block_bcol = np.empty(0, dtype=np.int64)

    b_value = np.zeros(n_blocks * r * c)
    in_block_r = rows_s - block_brow[block_of_entry] * r if n_blocks else rows_s
    in_block_c = cols_s - block_bcol[block_of_entry] * c if n_blocks else cols_s
    flat = block_of_entry * (r * c) + in_block_r * c + in_block_c
    b_value[flat] = vals_s

    b_row_start = np.zeros(n_block_rows + 1, dtype=np.int64)
    np.add.at(b_row_start, block_brow + 1, 1)
    b_row_start = np.cumsum(b_row_start)

    return BCSRMatrix(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        r=r,
        c=c,
        b_row_start=b_row_start,
        b_col_idx=block_bcol * c,
        b_value=b_value,
        original_nnz=matrix.nnz,
        name=f"{matrix.name}-{r}x{c}",
    )


def fill_ratio(matrix: SparseMatrix, r: int, c: int) -> float:
    """Fill ratio of blocking ``matrix`` at r x c without materializing values."""
    coo_rows = np.repeat(np.arange(matrix.n_rows), np.diff(matrix.indptr))
    brows = coo_rows // r
    bcols = matrix.indices // c
    n_blocks = len(np.unique(brows * (-(-matrix.n_cols // c)) + bcols))
    if matrix.nnz == 0:
        return 1.0
    return n_blocks * r * c / matrix.nnz
