"""Sparse matrices: CSR storage and the synthetic Table 4 suite.

The paper draws 11 matrices from the NIST Matrix Market [34].  Those files
are unavailable offline, so each Table 4 entry is reproduced as a synthetic
matrix of the same *structure class* at ~1/100 the non-zero count
(DESIGN.md §1):

* **FEM matrices** (3dtube, bcsstk35, bmw7st, crystk02, nasasrb, olafu,
  pwtk, raefsky3, venkat01) are built from dense ``b x b`` node blocks
  scattered along a banded profile — register blocking wins when r, c
  divide the natural block size, and the 4-aligned entries (raefsky3,
  venkat01) show the paper's "multiples of 4" substructure;
* **circuit/device matrices** (bayer02, memplus) are scattered
  scalar entries plus a diagonal — blocking mostly adds fill.

Every generator takes a seed; the suite is deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np


class SparseMatrix:
    """A CSR (compressed sparse row) matrix with float64 values.

    Rows are index-sorted and duplicate entries are coalesced at
    construction.
    """

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        name: str = "matrix",
    ):
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError("rows, cols, values must have equal length")
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if len(rows) and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("row index out of range")
        if len(cols) and (cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError("column index out of range")

        # Coalesce duplicates (summing), then build CSR.
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if len(rows):
            key = rows * n_cols + cols
            first = np.concatenate([[True], key[1:] != key[:-1]])
            groups = np.cumsum(first) - 1
            summed = np.zeros(groups[-1] + 1 if len(groups) else 0)
            np.add.at(summed, groups, values)
            rows, cols, values = rows[first], cols[first], summed

        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(self.indptr, rows + 1, 1)
        self.indptr = np.cumsum(self.indptr)
        self.indices = cols
        self.values = values
        self.name = name

    # -- properties ----------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def sparsity(self) -> float:
        """nnz / (n_rows * n_cols), Table 4's definition."""
        return self.nnz / (self.n_rows * self.n_cols)

    def __repr__(self) -> str:
        return (
            f"SparseMatrix({self.name!r}, {self.n_rows}x{self.n_cols}, "
            f"nnz={self.nnz})"
        )

    # -- conversions -----------------------------------------------------------------

    @staticmethod
    def from_dense(dense: np.ndarray, name: str = "matrix") -> "SparseMatrix":
        dense = np.asarray(dense, dtype=float)
        rows, cols = np.nonzero(dense)
        return SparseMatrix(
            dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols], name
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n_rows, self.n_cols))
        for r in range(self.n_rows):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            out[r, self.indices[lo:hi]] = self.values[lo:hi]
        return out

    def row(self, r: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[r], self.indptr[r + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    # -- arithmetic -------------------------------------------------------------------

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Reference CSR SpMV: v = A u."""
        u = np.asarray(u, dtype=float)
        if len(u) != self.n_cols:
            raise ValueError(f"vector length {len(u)} != {self.n_cols} columns")
        v = np.zeros(self.n_rows)
        for r in range(self.n_rows):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            v[r] = self.values[lo:hi] @ u[self.indices[lo:hi]]
        return v


# --------------------------------------------------------------------------------------
# Synthetic generators
# --------------------------------------------------------------------------------------


def fem_matrix(
    n_nodes: int,
    block: int,
    neighbors: int,
    bandwidth: int,
    seed: int,
    name: str = "fem",
    block_alignment: int = None,
) -> SparseMatrix:
    """Finite-element style matrix: dense node blocks on a banded profile.

    ``n_nodes`` node rows/columns of dense ``block x block`` tiles; each
    node couples with itself and ``neighbors`` random nodes within
    ``bandwidth``.  ``block_alignment`` (default ``block``) sets the tile
    grid alignment — aligning on 4 while drawing larger tiles produces the
    multiples-of-4 substructure of raefsky3/venkat01.
    """
    rng = np.random.default_rng(seed)
    align = block_alignment or block
    n = n_nodes * align
    entries_r: List[np.ndarray] = []
    entries_c: List[np.ndarray] = []

    tile_r, tile_c = np.meshgrid(np.arange(block), np.arange(block), indexing="ij")
    tile_r, tile_c = tile_r.ravel(), tile_c.ravel()

    for node in range(n_nodes):
        base_r = node * align
        partners = {node}
        for _ in range(neighbors):
            offset = int(rng.integers(-bandwidth, bandwidth + 1))
            partner = min(max(node + offset, 0), n_nodes - 1)
            partners.add(partner)
        for partner in partners:
            base_c = partner * align
            rr = base_r + tile_r
            cc = base_c + tile_c
            keep = (rr < n) & (cc < n)
            entries_r.append(rr[keep])
            entries_c.append(cc[keep])

    rows = np.concatenate(entries_r)
    cols = np.concatenate(entries_c)
    values = rng.uniform(0.5, 2.0, size=len(rows))
    return SparseMatrix(n, n, rows, cols, values, name)


def scattered_matrix(
    n: int,
    nnz_target: int,
    seed: int,
    name: str = "scattered",
    diagonal: bool = True,
) -> SparseMatrix:
    """Circuit/device-simulation style matrix: diagonal plus random scatter."""
    rng = np.random.default_rng(seed)
    n_random = max(0, nnz_target - (n if diagonal else 0))
    rows = rng.integers(0, n, size=n_random)
    cols = rng.integers(0, n, size=n_random)
    if diagonal:
        rows = np.concatenate([np.arange(n), rows])
        cols = np.concatenate([np.arange(n), cols])
    values = rng.uniform(0.5, 2.0, size=len(rows))
    return SparseMatrix(n, n, rows, cols, values, name)


@dataclasses.dataclass(frozen=True)
class MatrixInfo:
    """One Table 4 entry: the paper's numbers plus our generator."""

    index: int
    name: str
    paper_dimension: int
    paper_nnz: int
    paper_sparsity: float
    structure: str

    def generate(self, seed: int = 0) -> SparseMatrix:
        return _GENERATORS[self.name](seed)


def _gen_3dtube(seed):
    return fem_matrix(160, 3, 8, 24, seed + 1, "3dtube")


def _gen_bayer02(seed):
    return scattered_matrix(450, 1400, seed + 2, "bayer02")


def _gen_bcsstk35(seed):
    return fem_matrix(170, 3, 6, 20, seed + 3, "bcsstk35")


def _gen_bmw7st(seed):
    return fem_matrix(200, 3, 7, 30, seed + 4, "bmw7st")


def _gen_crystk02(seed):
    return fem_matrix(110, 3, 9, 16, seed + 5, "crystk02")


def _gen_memplus(seed):
    return scattered_matrix(500, 1800, seed + 6, "memplus")


def _gen_nasasrb(seed):
    # 6x6 dense tiles: best blockings at 3x3, 3x6, 6x3, 6x6 (Figure 15).
    return fem_matrix(90, 6, 5, 14, seed + 7, "nasasrb")


def _gen_olafu(seed):
    return fem_matrix(100, 6, 4, 12, seed + 8, "olafu")


def _gen_pwtk(seed):
    return fem_matrix(210, 6, 5, 26, seed + 9, "pwtk")


def _gen_raefsky3(seed):
    # 8x4-aligned dense tiles: block columns 1, 4, 8 equally effective
    # (Figure 12); dense substructure in multiples of 4.
    return fem_matrix(70, 8, 5, 10, seed + 10, "raefsky3", block_alignment=8)


def _gen_venkat01(seed):
    return fem_matrix(140, 4, 6, 18, seed + 11, "venkat01")


_GENERATORS = {
    "3dtube": _gen_3dtube,
    "bayer02": _gen_bayer02,
    "bcsstk35": _gen_bcsstk35,
    "bmw7st": _gen_bmw7st,
    "crystk02": _gen_crystk02,
    "memplus": _gen_memplus,
    "nasasrb": _gen_nasasrb,
    "olafu": _gen_olafu,
    "pwtk": _gen_pwtk,
    "raefsky3": _gen_raefsky3,
    "venkat01": _gen_venkat01,
}

#: The Table 4 registry, in the paper's order.
TABLE4: Tuple[MatrixInfo, ...] = (
    MatrixInfo(1, "3dtube", 45330, 1629474, 7.93e-4, "FEM, 3x3 blocks"),
    MatrixInfo(2, "bayer02", 13935, 63679, 3.28e-4, "chemical process, scattered"),
    MatrixInfo(3, "bcsstk35", 30237, 740200, 8.10e-4, "FEM, 3x3 blocks"),
    MatrixInfo(4, "bmw7st", 141347, 3740507, 1.87e-4, "FEM, 3x3 blocks"),
    MatrixInfo(5, "crystk02", 13965, 491274, 2.52e-3, "FEM, 3x3 blocks"),
    MatrixInfo(6, "memplus", 17758, 126150, 4.00e-4, "circuit, scattered"),
    MatrixInfo(7, "nasasrb", 54870, 1366097, 4.54e-4, "FEM, 6x6 blocks"),
    MatrixInfo(8, "olafu", 16146, 515651, 1.98e-3, "FEM, 6x6 blocks"),
    MatrixInfo(9, "pwtk", 217918, 5926171, 1.25e-4, "FEM, 6x6 blocks"),
    MatrixInfo(10, "raefsky3", 21200, 1488768, 3.31e-3, "FEM, 8x4-aligned blocks"),
    MatrixInfo(11, "venkat01", 62424, 1717792, 4.41e-4, "FEM, 4x4 blocks"),
)

MATRIX_NAMES = tuple(info.name for info in TABLE4)


def table4_matrix(name: str, seed: int = 0) -> SparseMatrix:
    """Generate the synthetic stand-in for one Table 4 matrix."""
    if name not in _GENERATORS:
        raise ValueError(f"unknown matrix {name!r}; choose from {MATRIX_NAMES}")
    return _GENERATORS[name](seed)


def table4_suite(seed: int = 0) -> Dict[str, SparseMatrix]:
    """All eleven synthetic matrices keyed by name."""
    return {name: table4_matrix(name, seed) for name in MATRIX_NAMES}
