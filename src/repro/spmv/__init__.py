"""Sparse matrix-vector multiply: the domain-specific case study (§5).

Everything the paper's SpMV evaluation needs, built from scratch:

* :mod:`repro.spmv.matrices` — CSR matrices and the synthetic Table 4 suite;
* :mod:`repro.spmv.bcsr` — BCSR register blocking and fill ratios (Fig. 11);
* :mod:`repro.spmv.kernel` — the blocked kernel's exact access stream;
* :mod:`repro.spmv.cache` — the Table 5 cache space and an exact
  set-associative simulator (LRU / NMRU / RND);
* :mod:`repro.spmv.machine` — Xtensa-class timing and CACTI/Micron-like
  energy;
* :mod:`repro.spmv.space` — sampling and evaluation over the integrated
  space;
* :mod:`repro.spmv.model` — the compact domain-specific regression models;
* :mod:`repro.spmv.tuning` — application / architecture / coordinated
  tuning (Figure 16).
"""

from repro.spmv.matrices import (
    SparseMatrix,
    MatrixInfo,
    TABLE4,
    MATRIX_NAMES,
    table4_matrix,
    table4_suite,
    fem_matrix,
    scattered_matrix,
)
from repro.spmv.bcsr import BCSRMatrix, to_bcsr, fill_ratio
from repro.spmv.kernel import KernelTrace, kernel_trace
from repro.spmv.cache import (
    CacheConfig,
    SetAssociativeCache,
    SPMV_HARDWARE_NAMES,
    SPMV_HARDWARE_LABELS,
    REPL_POLICIES,
    default_cache,
    sample_cache_configs,
    enumerate_cache_configs,
)
from repro.spmv.machine import SpMVResult, EnergyBreakdown, run_spmv, run_trace, miss_penalty_cycles
from repro.spmv.space import (
    SpMVSpace,
    SPMV_SOFTWARE_NAMES,
    SPMV_SOFTWARE_LABELS,
    BLOCK_SIZES,
)
from repro.spmv.model import spmv_model_spec, fit_spmv_model, predicted_topology
from repro.spmv.tuning import (
    NoVerifiedCandidateError,
    TuningResult,
    TuningSearch,
    VerifiedCandidate,
    tuning_cache_candidates,
)

__all__ = [
    "SparseMatrix",
    "MatrixInfo",
    "TABLE4",
    "MATRIX_NAMES",
    "table4_matrix",
    "table4_suite",
    "fem_matrix",
    "scattered_matrix",
    "BCSRMatrix",
    "to_bcsr",
    "fill_ratio",
    "KernelTrace",
    "kernel_trace",
    "CacheConfig",
    "SetAssociativeCache",
    "SPMV_HARDWARE_NAMES",
    "SPMV_HARDWARE_LABELS",
    "REPL_POLICIES",
    "default_cache",
    "sample_cache_configs",
    "enumerate_cache_configs",
    "SpMVResult",
    "EnergyBreakdown",
    "run_spmv",
    "run_trace",
    "miss_penalty_cycles",
    "SpMVSpace",
    "SPMV_SOFTWARE_NAMES",
    "SPMV_SOFTWARE_LABELS",
    "BLOCK_SIZES",
    "spmv_model_spec",
    "fit_spmv_model",
    "predicted_topology",
    "NoVerifiedCandidateError",
    "TuningResult",
    "TuningSearch",
    "VerifiedCandidate",
    "tuning_cache_candidates",
]
