"""In-order core timing and energy for the SpMV study.

The paper evaluates SpMV on a 400 MHz Tensilica Xtensa class processor with
a reconfigurable cache, estimating energy with CACTI and Micron models
(§5.3).  This module provides the equivalent analytic stand-ins:

* **timing** — a single-issue in-order core: one cycle per instruction plus
  a stall per data/instruction cache miss whose latency has a fixed off-chip
  component and a per-byte transfer component.  Larger lines therefore
  amortize the off-chip component across more bytes — the paper's streaming
  bandwidth effect (Figure 13) — while costing more per transfer.
* **energy** — CACTI-like per-access cache energy growing with capacity,
  associativity, and line size; Micron-like off-chip energy of 6 nJ per
  64-bit word transferred (the paper's own constant, §5.3); and a small
  per-instruction core energy.

Performance is reported as the paper defines it (footnote 4): true Mflop/s
— the numerator excludes operations on filled zeros while the denominator
benefits from any blocking speedup.
"""

from __future__ import annotations

import dataclasses

from repro.spmv.cache import CacheConfig, SetAssociativeCache
from repro.spmv.kernel import KernelTrace, kernel_trace
from repro.spmv.bcsr import BCSRMatrix

CLOCK_HZ = 400e6

# Timing constants (cycles).
MISS_BASE_CYCLES = 36          # off-chip access setup cost
BUS_BYTES_PER_CYCLE = 4        # transfer bandwidth of the memory interface
BASE_CPI = 1.0                 # in-order, single issue, cache hits

# Energy constants (nJ).
MEMORY_NJ_PER_WORD = 6.0       # per 64-bit word transferred off-chip [31]
CORE_NJ_PER_INSTRUCTION = 0.10
CACHE_NJ_BASE = 0.06           # per access of a 16KB, 2-way, 32B-line cache
IFETCH_NJ_SCALE = 0.35         # instruction fetches are cheaper than data
LEAK_NJ_PER_CYCLE_PER_KB = 0.0006


def miss_penalty_cycles(line_bytes: int) -> float:
    """Stall cycles per cache miss for a given line size."""
    return MISS_BASE_CYCLES + line_bytes / BUS_BYTES_PER_CYCLE


def cache_access_nj(size_kb: int, ways: int, line_bytes: int) -> float:
    """CACTI-like per-access energy scaling.

    Square-root capacity scaling, linear associativity surcharge (more ways
    probed per access), and a weak line-size term (wider read-out).
    """
    return (
        CACHE_NJ_BASE
        * (size_kb / 16.0) ** 0.5
        * (1.0 + 0.15 * (ways - 1))
        * (line_bytes / 32.0) ** 0.3
    )


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Where the joules go, in nJ (Figure 16(b)'s explanatory view)."""

    core: float        # per-instruction datapath energy
    dcache: float      # data-cache access energy
    icache: float      # instruction-fetch energy
    memory: float      # off-chip transfers (6 nJ per 64-bit word)
    leakage: float     # capacity-proportional static energy

    @property
    def total(self) -> float:
        return self.core + self.dcache + self.icache + self.memory + self.leakage


@dataclasses.dataclass(frozen=True)
class SpMVResult:
    """Simulated performance/energy of one (blocked matrix, cache) pair."""

    mflops: float              # true Mflop/s (excludes filled zeros)
    nj_per_flop: float         # total energy / true flops
    cycles: float
    n_instructions: int
    data_accesses: int
    data_misses: int
    inst_misses: int
    fill_ratio: float
    time_seconds: float
    energy_nj: float
    energy_breakdown: EnergyBreakdown = None


def run_spmv(bcsr: BCSRMatrix, cache: CacheConfig, seed: int = 0) -> SpMVResult:
    """Simulate one blocked SpMV pass on one cache architecture."""
    trace = kernel_trace(bcsr)
    return run_trace(trace, bcsr.fill_ratio, cache, seed)


def run_trace(
    trace: KernelTrace,
    fill_ratio: float,
    cache: CacheConfig,
    seed: int = 0,
) -> SpMVResult:
    """Timing + energy from a kernel trace (cache simulated exactly)."""
    dcache = SetAssociativeCache(
        cache.dsize_kb * 1024, cache.line_bytes, cache.dways, cache.drepl, seed
    )
    data_misses = dcache.simulate(trace.addresses)
    return _assemble_result(trace, fill_ratio, cache, int(data_misses))


def run_trace_batch(
    trace: KernelTrace,
    fill_ratio: float,
    caches: list[CacheConfig],
    seed: int = 0,
) -> list[SpMVResult]:
    """:func:`run_trace` for many cache configurations of one trace.

    Data-cache miss counts come from the batched struct-of-arrays
    simulator (:func:`repro.kernels.batched.simulate_caches`): LRU
    configurations sharing a (line size, set count) geometry share one
    stack-distance pass, and randomized policies fall back to the exact
    per-pair simulator with the same per-config seed — so every result
    is bit-identical to a :func:`run_trace` call.
    """
    from repro.kernels.batched import simulate_caches

    specs = [
        (cache.dsize_kb * 1024, cache.line_bytes, cache.dways, cache.drepl)
        for cache in caches
    ]
    data_misses = simulate_caches(trace.addresses, specs, seed=seed)
    return [
        _assemble_result(trace, fill_ratio, cache, int(misses))
        for cache, misses in zip(caches, data_misses)
    ]


def _assemble_result(
    trace: KernelTrace,
    fill_ratio: float,
    cache: CacheConfig,
    data_misses: int,
) -> SpMVResult:
    """Timing/energy arithmetic downstream of the data-cache simulation."""
    # The unrolled kernel's code footprint either fits its cache (compulsory
    # misses only) or thrashes; with Table 5 geometries it always fits.
    icache_bytes = cache.isize_kb * 1024
    if trace.code_bytes <= icache_bytes:
        inst_misses = -(-trace.code_bytes // cache.line_bytes)  # compulsory
    else:
        refetch = trace.n_instructions / max(1, icache_bytes // 64)
        inst_misses = int(refetch * (trace.code_bytes // cache.line_bytes))

    penalty = miss_penalty_cycles(cache.line_bytes)
    cycles = (
        trace.n_instructions * BASE_CPI
        + data_misses * penalty
        + inst_misses * penalty
    )
    time_seconds = cycles / CLOCK_HZ
    mflops = trace.true_flops / time_seconds / 1e6

    words_per_line = cache.line_bytes / 8.0
    breakdown = EnergyBreakdown(
        core=trace.n_instructions * CORE_NJ_PER_INSTRUCTION,
        dcache=len(trace.addresses)
        * cache_access_nj(cache.dsize_kb, cache.dways, cache.line_bytes),
        icache=trace.n_instructions
        * IFETCH_NJ_SCALE
        * cache_access_nj(cache.isize_kb, cache.iways, cache.line_bytes),
        memory=(data_misses + inst_misses) * words_per_line * MEMORY_NJ_PER_WORD,
        leakage=cycles * LEAK_NJ_PER_CYCLE_PER_KB * (cache.dsize_kb + cache.isize_kb),
    )
    energy_nj = breakdown.total

    return SpMVResult(
        mflops=float(mflops),
        nj_per_flop=float(energy_nj / trace.true_flops),
        cycles=float(cycles),
        n_instructions=trace.n_instructions,
        data_accesses=len(trace.addresses),
        data_misses=int(data_misses),
        inst_misses=int(inst_misses),
        fill_ratio=float(fill_ratio),
        time_seconds=float(time_seconds),
        energy_nj=float(energy_nj),
        energy_breakdown=breakdown,
    )
