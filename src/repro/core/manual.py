"""A hand-specified baseline model (§4.2, "Comparison with Manual Modeling").

The paper reports that a research assistant needed nearly ten months to
hand-build an integrated hardware-software model, and that the genetic
search beats it by about 10%.  This module encodes the kind of model an
architect would plausibly specify from domain knowledge alone:

* obviously important hardware gets rich transforms (window resources are
  splined — out-of-order smoothing has strongly diminishing returns; cache
  sizes get quadratics for the same reason);
* instruction mix enters linearly;
* the classic architect-approved interactions are included (width with
  branches, caches with memory intensity, window with locality);
* rare-event variables (FP divides) are dropped.

It is a *reasonable* model — and exactly as limited as the paper says
manual models are: biased toward the terms its author thought of.
"""

from __future__ import annotations

from repro.core.design import ModelSpec
from repro.core.transforms import TransformKind


def manual_general_spec() -> ModelSpec:
    """Hand-specified model for the general SPEC-like study.

    Variable names follow Tables 1 and 2 (x1..x13, y1..y13).
    """
    transforms = {
        # Software: instruction mix linear; drop rare FP divides (x4).
        "x1": TransformKind.LINEAR,
        "x2": TransformKind.LINEAR,
        "x3": TransformKind.LINEAR,
        "x4": TransformKind.EXCLUDED,
        "x5": TransformKind.EXCLUDED,
        "x6": TransformKind.LINEAR,
        "x7": TransformKind.LINEAR,
        # Locality measures have long tails: quadratic after stabilization.
        "x8": TransformKind.QUADRATIC,
        "x9": TransformKind.QUADRATIC,
        # ILP distances: linear.
        "x10": TransformKind.LINEAR,
        "x11": TransformKind.LINEAR,
        "x12": TransformKind.EXCLUDED,
        "x13": TransformKind.LINEAR,
        # Hardware: width and window are the architect's headline knobs.
        "y1": TransformKind.QUADRATIC,
        "y2": TransformKind.SPLINE,
        "y3": TransformKind.LINEAR,
        "y4": TransformKind.LINEAR,
        "y5": TransformKind.QUADRATIC,
        "y6": TransformKind.QUADRATIC,
        "y7": TransformKind.QUADRATIC,
        "y8": TransformKind.LINEAR,
        "y9": TransformKind.LINEAR,
        "y10": TransformKind.EXCLUDED,
        "y11": TransformKind.LINEAR,
        "y12": TransformKind.EXCLUDED,
        "y13": TransformKind.LINEAR,
    }
    interactions = frozenset(
        {
            ("x2", "y1"),   # taken branches x width (wrong-path cost)
            ("x7", "y5"),   # memory intensity x D-cache size
            ("x7", "y7"),   # memory intensity x L2 size
            ("x8", "y5"),   # data locality x D-cache size
            ("x8", "y2"),   # data locality x window (miss overlap)
            ("x9", "y6"),   # code locality x I-cache size
            ("x7", "y4"),   # memory intensity x MSHRs
            ("x7", "y8"),   # memory intensity x L2 latency
            ("x13", "y1"),  # basic-block size x width (fetch efficiency)
            ("y1", "y2"),   # width x window
        }
    )
    return ModelSpec(transforms=transforms, interactions=interactions)
