"""Parameter significance from an evolved population (§4.2).

"System analysts benefit, not only from speed and accuracy, but also from
an additional source of insight as the genetic search identifies
determinants of performance."  As models evolve, the population
increasingly prefers certain variables, transformations, and interactions;
this module turns a final population into that insight:

* :func:`inclusion_frequency` — how often each variable appears at all;
* :func:`transform_histogram` — per-variable distribution over transform
  kinds (the data behind Table 3);
* :func:`modal_transforms` / :func:`table3_rows` — the Table 3 view;
* :func:`interaction_matrix` — the symmetric pair-frequency matrix behind
  Figure 4, plus region totals (software-software, software-hardware,
  hardware-hardware);
* :class:`SignificanceReport` — everything above, computed once.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.chromosome import Chromosome
from repro.core.transforms import TransformKind

TRANSFORM_LABELS = {
    TransformKind.EXCLUDED: "un-used",
    TransformKind.LINEAR: "linear",
    TransformKind.QUADRATIC: "poly, degree 2",
    TransformKind.CUBIC: "poly, degree 3",
    TransformKind.SPLINE: "spline, 3 knots",
}

TABLE3_ROW_ORDER = tuple(TRANSFORM_LABELS[k] for k in TransformKind)


def inclusion_frequency(
    population: Sequence[Chromosome], names: Sequence[str]
) -> Dict[str, float]:
    """Fraction of models that include each variable (any transform)."""
    _check(population, names)
    counts = np.zeros(len(names))
    for chromosome in population:
        counts += np.array(chromosome.genes) > 0
    return dict(zip(names, (counts / len(population)).tolist()))


def transform_histogram(
    population: Sequence[Chromosome], names: Sequence[str]
) -> Dict[str, Dict[str, int]]:
    """Per-variable counts over transform kinds across the population."""
    _check(population, names)
    hist: Dict[str, Dict[str, int]] = {
        name: {label: 0 for label in TABLE3_ROW_ORDER} for name in names
    }
    for chromosome in population:
        for name, gene in zip(names, chromosome.genes):
            hist[name][TRANSFORM_LABELS[TransformKind(gene)]] += 1
    return hist


def modal_transforms(
    population: Sequence[Chromosome], names: Sequence[str]
) -> Dict[str, str]:
    """The most common transform per variable (ties: stronger transform)."""
    hist = transform_histogram(population, names)
    modal = {}
    for name, counts in hist.items():
        best = max(
            counts.items(),
            key=lambda item: (item[1], TABLE3_ROW_ORDER.index(item[0])),
        )
        modal[name] = best[0]
    return modal


def table3_rows(
    population: Sequence[Chromosome], names: Sequence[str]
) -> Dict[str, List[str]]:
    """Variables grouped by their modal transform — the paper's Table 3."""
    modal = modal_transforms(population, names)
    rows: Dict[str, List[str]] = {label: [] for label in TABLE3_ROW_ORDER}
    for name in names:
        rows[modal[name]].append(name)
    return rows


def interaction_matrix(
    population: Sequence[Chromosome], names: Sequence[str]
) -> np.ndarray:
    """Symmetric (p, p) matrix of interaction appearance counts (Figure 4)."""
    _check(population, names)
    p = len(names)
    counts = np.zeros((p, p), dtype=int)
    for chromosome in population:
        for i, j in chromosome.interactions:
            counts[i, j] += 1
            counts[j, i] += 1
    return counts


def interaction_regions(
    counts: np.ndarray, n_software: int
) -> Dict[str, int]:
    """Appearance totals by region: sw-sw, sw-hw, hw-hw."""
    p = counts.shape[0]
    regions = {"sw-sw": 0, "sw-hw": 0, "hw-hw": 0}
    for i in range(p):
        for j in range(i + 1, p):
            if counts[i, j] == 0:
                continue
            if j < n_software:
                regions["sw-sw"] += int(counts[i, j])
            elif i >= n_software:
                regions["hw-hw"] += int(counts[i, j])
            else:
                regions["sw-hw"] += int(counts[i, j])
    return regions


def top_interactions(
    counts: np.ndarray, names: Sequence[str], k: int = 10
) -> List[Tuple[str, str, int]]:
    """The k most frequent interaction pairs, descending."""
    pairs = []
    p = len(names)
    for i in range(p):
        for j in range(i + 1, p):
            if counts[i, j] > 0:
                pairs.append((names[i], names[j], int(counts[i, j])))
    pairs.sort(key=lambda item: -item[2])
    return pairs[:k]


@dataclasses.dataclass
class SignificanceReport:
    """Everything the evolved population says about performance drivers."""

    names: Tuple[str, ...]
    n_models: int
    inclusion: Dict[str, float]
    modal: Dict[str, str]
    rows: Dict[str, List[str]]
    interactions: np.ndarray
    regions: Dict[str, int]
    top_pairs: List[Tuple[str, str, int]]

    @staticmethod
    def from_population(
        population: Sequence[Chromosome],
        names: Sequence[str],
        n_software: int,
    ) -> "SignificanceReport":
        counts = interaction_matrix(population, names)
        return SignificanceReport(
            names=tuple(names),
            n_models=len(population),
            inclusion=inclusion_frequency(population, names),
            modal=modal_transforms(population, names),
            rows=table3_rows(population, names),
            interactions=counts,
            regions=interaction_regions(counts, n_software),
            top_pairs=top_interactions(counts, names),
        )

    def describe(self) -> str:
        lines = [f"Parameter significance over {self.n_models} models"]
        lines.append("  variables by modal transformation:")
        for label in TABLE3_ROW_ORDER:
            variables = self.rows[label]
            lines.append(
                f"    {label:<18s} {', '.join(variables) if variables else '-'}"
            )
        lines.append(
            "  interaction appearances: "
            + ", ".join(f"{k}={v}" for k, v in self.regions.items())
        )
        for a, b, count in self.top_pairs[:5]:
            lines.append(f"    {a} x {b}: {count}")
        return "\n".join(lines)


def _check(population: Sequence[Chromosome], names: Sequence[str]) -> None:
    if not population:
        raise ValueError("population is empty")
    for chromosome in population:
        if chromosome.n_variables != len(names):
            raise ValueError(
                f"chromosome has {chromosome.n_variables} genes for "
                f"{len(names)} names"
            )
