"""Collinearity detection and elimination (§3.1, "Choosing Variables").

Software characteristics are often linearly dependent — the paper's example
is spatial locality being the quotient of two temporal-locality measures.
"Such subtle collinearity, which prevents solvers from fitting a model, is
common amongst software variables ... the modeling heuristic must also
check for and eliminate collinear variables."

Two mechanisms:

* :func:`prune_correlated` removes columns whose pairwise correlation with
  an earlier-kept column exceeds a threshold;
* :func:`prune_rank_deficient` removes columns that a rank-revealing QR
  factorization identifies as (numerically) linearly dependent — catching
  exact multi-way dependences that pairwise screening misses.

:func:`variance_inflation_factors` provides the standard VIF diagnostic
for reporting.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: Pairwise |correlation| above which a column is considered redundant.
CORRELATION_THRESHOLD = 0.995

#: Relative magnitude of an R diagonal entry below which the column is
#: considered linearly dependent on its predecessors.
RANK_TOLERANCE = 1e-8


def prune_correlated(
    matrix: np.ndarray,
    threshold: float = CORRELATION_THRESHOLD,
) -> List[int]:
    """Indices of columns to *keep* after pairwise-correlation screening.

    Columns are visited left to right; a column is dropped when its absolute
    correlation with any already-kept column exceeds ``threshold``, or when
    it is (numerically) constant.  Keeping the leftmost column of each
    correlated group makes the choice deterministic.
    """
    matrix = np.asarray(matrix, dtype=float)
    n, p = matrix.shape
    if p == 0:
        return []
    stds = matrix.std(axis=0)
    centered = matrix - matrix.mean(axis=0)
    kept: List[int] = []
    for j in range(p):
        if stds[j] < 1e-12:
            continue
        redundant = False
        for k in kept:
            r = float(centered[:, j] @ centered[:, k]) / (n * stds[j] * stds[k])
            if abs(r) > threshold:
                redundant = True
                break
        if not redundant:
            kept.append(j)
    return kept


def prune_rank_deficient(
    matrix: np.ndarray,
    tolerance: float = RANK_TOLERANCE,
) -> List[int]:
    """Indices of columns to keep so the matrix has full column rank.

    Greedy Gram-Schmidt sweep: a column is kept when its residual, after
    projecting out the span of previously kept columns, retains at least
    ``tolerance`` of its norm.
    """
    matrix = np.asarray(matrix, dtype=float)
    p = matrix.shape[1]
    kept: List[int] = []
    basis: List[np.ndarray] = []
    for j in range(p):
        v = matrix[:, j].astype(float)
        norm0 = np.linalg.norm(v)
        if norm0 < 1e-300:
            continue
        for q in basis:
            v = v - (q @ v) * q
        norm = np.linalg.norm(v)
        if norm > tolerance * norm0:
            kept.append(j)
            basis.append(v / norm)
    return kept


def prune_design(
    matrix: np.ndarray,
    column_names: Sequence[str],
    correlation_threshold: float = CORRELATION_THRESHOLD,
) -> Tuple[np.ndarray, List[str], List[int]]:
    """Full collinearity pipeline: correlation screen, then rank repair.

    Returns the pruned matrix, the surviving column names, and the kept
    column indices (into the original matrix).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape[1] != len(column_names):
        raise ValueError("column_names length must match matrix width")
    keep1 = prune_correlated(matrix, correlation_threshold)
    reduced = matrix[:, keep1]
    keep2 = prune_rank_deficient(reduced)
    kept = [keep1[j] for j in keep2]
    return matrix[:, kept], [column_names[j] for j in kept], kept


def variance_inflation_factors(matrix: np.ndarray) -> np.ndarray:
    """VIF_j = 1 / (1 - R^2_j) of column j regressed on the others.

    Values above ~10 conventionally flag problematic collinearity.
    Constant columns get VIF = inf.
    """
    matrix = np.asarray(matrix, dtype=float)
    n, p = matrix.shape
    vifs = np.empty(p)
    for j in range(p):
        target = matrix[:, j]
        others = np.delete(matrix, j, axis=1)
        others = np.column_stack([np.ones(n), others])
        coef, *_ = np.linalg.lstsq(others, target, rcond=None)
        residual = target - others @ coef
        ss_tot = float(((target - target.mean()) ** 2).sum())
        if ss_tot < 1e-30:
            vifs[j] = np.inf
            continue
        r2 = 1.0 - float((residual**2).sum()) / ss_tot
        vifs[j] = np.inf if r2 >= 1.0 - 1e-12 else 1.0 / (1.0 - r2)
    return vifs
