"""Model specifications and design-matrix construction (§3.1).

A :class:`ModelSpec` is the declarative description a chromosome decodes
to: a transform kind per variable plus a set of pairwise interactions.
A :class:`DesignMatrixBuilder` *fits* the spec to training data — choosing
stabilization powers and spline knots — and then deterministically maps any
dataset with the same variables to a numeric design matrix.

Interactions follow the paper's product-term formulation
(``z = ... + b3 * xi * xj``): the product of the two variables'
stabilized-linear views.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.core.dataset import ProfileDataset
from repro.core.transforms import FittedTransform, TransformKind, fit_transform

Interaction = Tuple[str, str]


def normalize_interaction(a: str, b: str) -> Interaction:
    """Canonical (sorted) form of an interaction pair."""
    if a == b:
        raise ValueError(f"an interaction needs two distinct variables, got {a!r} twice")
    return (a, b) if a < b else (b, a)


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """Variables, transformations, and interactions of one candidate model."""

    transforms: Dict[str, TransformKind]
    interactions: FrozenSet[Interaction] = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "transforms", dict(self.transforms))
        pairs = {normalize_interaction(*pair) for pair in self.interactions}
        for a, b in pairs:
            for name in (a, b):
                if name not in self.transforms:
                    raise ValueError(f"interaction references unknown variable {name!r}")
        object.__setattr__(self, "interactions", frozenset(pairs))

    @property
    def included_variables(self) -> Tuple[str, ...]:
        return tuple(
            name
            for name, kind in self.transforms.items()
            if kind != TransformKind.EXCLUDED
        )

    def describe(self) -> str:
        """Human-readable one-spec-per-line description."""
        lines = []
        for name, kind in self.transforms.items():
            if kind != TransformKind.EXCLUDED:
                lines.append(f"{name}: {kind.name.lower()}")
        for a, b in sorted(self.interactions):
            lines.append(f"{a} * {b}")
        return "\n".join(lines)

    def complexity(self) -> int:
        """Rough column count: polynomial degrees + spline width + interactions."""
        total = 0
        for kind in self.transforms.values():
            if kind == TransformKind.SPLINE:
                total += 6
            else:
                total += int(kind)
        return total + len(self.interactions)


class DesignMatrixBuilder:
    """Fits a :class:`ModelSpec` to data and produces design matrices.

    Interaction terms use each variable's stabilized-linear view even when
    the variable's own main-effect transform is richer (or the variable is
    excluded as a main effect) — the chromosome treats main effects and
    interactions independently (§3.4).
    """

    def __init__(self, spec: ModelSpec, auto_stabilize: bool = True):
        self.spec = spec
        self.auto_stabilize = auto_stabilize
        self._fitted: Dict[str, FittedTransform] = {}
        self._linear_views: Dict[str, FittedTransform] = {}
        self._columns: List[str] = []
        self._variable_names: Tuple[str, ...] = ()
        self._is_fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._is_fitted

    @property
    def column_names(self) -> Tuple[str, ...]:
        self._require_fitted()
        return tuple(self._columns)

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Variable names (software then hardware) seen at fit time."""
        self._require_fitted()
        return self._variable_names

    def fit(self, dataset: ProfileDataset) -> "DesignMatrixBuilder":
        """Estimate transform state (powers, knots) from training data."""
        if len(dataset) == 0:
            raise ValueError("cannot fit a design on an empty dataset")
        self._variable_names = dataset.variable_names
        matrix = dataset.matrix()
        name_to_col = {name: i for i, name in enumerate(self._variable_names)}

        for name in self.spec.transforms:
            if name not in name_to_col:
                raise ValueError(f"spec references unknown variable {name!r}")

        self._fitted.clear()
        self._linear_views.clear()
        self._columns = []
        for name, kind in self.spec.transforms.items():
            values = matrix[:, name_to_col[name]]
            fitted = fit_transform(values, kind, self.auto_stabilize)
            self._fitted[name] = fitted
            for suffix in fitted.column_suffixes():
                self._columns.append(f"{name}{suffix}")

        interacting = {v for pair in self.spec.interactions for v in pair}
        for name in interacting:
            values = matrix[:, name_to_col[name]]
            self._linear_views[name] = fit_transform(
                values, TransformKind.LINEAR, self.auto_stabilize
            )
        for a, b in sorted(self.spec.interactions):
            self._columns.append(f"{a}*{b}")
        self._is_fitted = True
        return self

    def transform(self, dataset: ProfileDataset) -> np.ndarray:
        """Design matrix for ``dataset`` using the fitted state."""
        self._require_fitted()
        if dataset.variable_names != self._variable_names:
            raise ValueError("dataset variables differ from the fitted ones")
        return self.transform_matrix(dataset.matrix())

    def transform_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Design matrix for a raw ``(n, n_variables)`` feature array.

        Columns must be ordered like :attr:`variable_names` (software
        variables first, then hardware).  This is the serving hot path: it
        skips :class:`ProfileDataset` construction and its per-record
        validation entirely.
        """
        self._require_fitted()
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._variable_names):
            raise ValueError(
                f"feature matrix must be (n, {len(self._variable_names)}), "
                f"got {matrix.shape}"
            )
        name_to_col = {name: i for i, name in enumerate(self._variable_names)}

        blocks = []
        for name, fitted in self._fitted.items():
            if fitted.kind == TransformKind.EXCLUDED:
                continue
            blocks.append(fitted.apply(matrix[:, name_to_col[name]]))
        for a, b in sorted(self.spec.interactions):
            va = self._linear_views[a].stabilized(matrix[:, name_to_col[a]])
            vb = self._linear_views[b].stabilized(matrix[:, name_to_col[b]])
            blocks.append((va * vb)[:, None])
        if not blocks:
            return np.empty((matrix.shape[0], 0))
        return np.column_stack(blocks)

    def fit_transform(self, dataset: ProfileDataset) -> np.ndarray:
        return self.fit(dataset).transform(dataset)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("builder is not fitted; call fit() first")
