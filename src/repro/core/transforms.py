"""Variable transformations (§3.1, "Transforming Variables").

Three families:

* **Variance stabilization** — long-tailed software measures are replaced
  by a power transform ``x -> x**(1/n)`` before modeling.  The power is
  chosen automatically by a Stata-``ladder``-style search that minimizes
  the skewness of the transformed sample (Figure 3 uses n = 5).
* **Polynomial bases** — linear, quadratic, cubic.
* **Piecewise-cubic splines** — the paper's truncated-power form
  ``S(x) = b0 + b1 x + b2 x^2 + b3 x^3 + b4 (x-a)+^3 + b5 (x-b)+^3 +
  b6 (x-c)+^3`` with three inflection knots placed at training-data
  quantiles, so different coefficients are fit to different parts of the
  space.

Every basis is *stateful*: knots and stabilization powers are estimated on
training data and replayed verbatim on validation/prediction data.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

import numpy as np


class TransformKind(enum.IntEnum):
    """Gene values of the chromosome encoding (§3.4).

    0 excludes the variable; 1-3 select polynomial degree; 4 selects a
    piecewise-cubic spline with three inflection points.
    """

    EXCLUDED = 0
    LINEAR = 1
    QUADRATIC = 2
    CUBIC = 3
    SPLINE = 4


#: Candidate exponents n for the x -> x**(1/n) ladder (n >= 1, §3.1 fn. 2).
LADDER_POWERS = (1, 2, 3, 4, 5, 6, 8)

#: Number of spline inflection points (knots), from the paper's S(x).
SPLINE_KNOTS = 3


def skewness(values: np.ndarray) -> float:
    """Sample skewness; 0 for constant samples."""
    values = np.asarray(values, dtype=float)
    std = values.std()
    if std == 0 or len(values) < 3:
        return 0.0
    centered = values - values.mean()
    return float(np.mean(centered**3) / std**3)


def stabilize(values: np.ndarray, power: int) -> np.ndarray:
    """Apply the variance-stabilizing transform ``x -> sign(x)|x|^(1/power)``.

    The signed form keeps the transform monotonic for the (rare) negative
    inputs, and ``power=1`` is the identity.
    """
    if power < 1:
        raise ValueError(f"power must be >= 1, got {power}")
    values = np.asarray(values, dtype=float)
    if power == 1:
        return values.copy()
    return np.sign(values) * np.abs(values) ** (1.0 / power)


def choose_ladder_power(values: np.ndarray, threshold: float = 0.75) -> int:
    """Pick the ladder power that minimizes |skewness|.

    Returns 1 (identity) when the raw sample is already acceptably
    symmetric (|skew| <= ``threshold``), mirroring how an analyst only
    reaches for the ladder on misbehaving variables.
    """
    values = np.asarray(values, dtype=float)
    if abs(skewness(values)) <= threshold:
        return 1
    best_power, best_skew = 1, abs(skewness(values))
    for power in LADDER_POWERS[1:]:
        s = abs(skewness(stabilize(values, power)))
        if s < best_skew - 1e-12:
            best_power, best_skew = power, s
    return best_power


def spline_knots(values: np.ndarray, n_knots: int = SPLINE_KNOTS) -> np.ndarray:
    """Interior knots at evenly spaced quantiles of the training sample."""
    if n_knots < 1:
        raise ValueError(f"n_knots must be >= 1, got {n_knots}")
    quantiles = np.linspace(0, 1, n_knots + 2)[1:-1]
    return np.quantile(np.asarray(values, dtype=float), quantiles)


def truncated_power_basis(values: np.ndarray, knots: np.ndarray) -> np.ndarray:
    """The paper's piecewise-cubic basis: x, x^2, x^3, (x-k)+^3 per knot."""
    values = np.asarray(values, dtype=float)
    columns = [values, values**2, values**3]
    for knot in np.asarray(knots, dtype=float):
        columns.append(np.maximum(values - knot, 0.0) ** 3)
    return np.column_stack(columns)


def polynomial_basis(values: np.ndarray, degree: int) -> np.ndarray:
    """Columns x, x^2, ..., x^degree."""
    if not 1 <= degree <= 3:
        raise ValueError(f"degree must be 1..3, got {degree}")
    values = np.asarray(values, dtype=float)
    return np.column_stack([values**d for d in range(1, degree + 1)])


@dataclasses.dataclass
class FittedTransform:
    """A transform whose data-dependent state has been estimated.

    Attributes
    ----------
    kind:
        Which basis family.
    power:
        Variance-stabilization exponent (1 = identity).
    knots:
        Spline knots in *stabilized* coordinates; ``None`` for polynomials.
    center, scale:
        Standardization of the stabilized values, so downstream design
        matrices are well conditioned regardless of raw magnitudes.
    low, high:
        Clamp range (in standardized coordinates) covering the training
        sample plus a small margin.  Cubic terms explode when evaluated
        far outside the data they were fit on — the reason Harrell's
        restricted splines force linear tails — so prediction inputs are
        clamped to this range before any basis is applied.
    """

    kind: TransformKind
    power: int = 1
    knots: Optional[np.ndarray] = None
    center: float = 0.0
    scale: float = 1.0
    low: float = -np.inf
    high: float = np.inf

    @property
    def n_columns(self) -> int:
        if self.kind == TransformKind.EXCLUDED:
            return 0
        if self.kind == TransformKind.SPLINE:
            return 3 + len(self.knots)
        return int(self.kind)

    def column_suffixes(self) -> Tuple[str, ...]:
        if self.kind == TransformKind.EXCLUDED:
            return ()
        if self.kind == TransformKind.SPLINE:
            poly = ("", "^2", "^3")
            return poly + tuple(f"~k{i + 1}" for i in range(len(self.knots)))
        return ("", "^2", "^3")[: int(self.kind)]

    def stabilized(self, values: np.ndarray) -> np.ndarray:
        """Stabilized, standardized, range-clamped values (the 'linear'
        view of the variable)."""
        z = stabilize(values, self.power)
        z = (z - self.center) / self.scale
        return np.clip(z, self.low, self.high)

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Basis columns for new data, shape (n, n_columns)."""
        if self.kind == TransformKind.EXCLUDED:
            return np.empty((len(np.asarray(values)), 0))
        z = self.stabilized(values)
        if self.kind == TransformKind.SPLINE:
            return truncated_power_basis(z, self.knots)
        return polynomial_basis(z, int(self.kind))


def fit_transform(
    values: np.ndarray,
    kind: TransformKind,
    auto_stabilize: bool = True,
) -> FittedTransform:
    """Estimate a transform's data-dependent state from training values."""
    values = np.asarray(values, dtype=float)
    if kind == TransformKind.EXCLUDED:
        return FittedTransform(kind)
    power = choose_ladder_power(values) if auto_stabilize else 1
    z = stabilize(values, power)
    center = float(z.mean())
    scale = float(z.std())
    if scale < 1e-12:
        scale = 1.0
    zs = (z - center) / scale
    spread = float(zs.max() - zs.min())
    margin = 0.1 * spread if spread > 0 else 1.0
    low = float(zs.min()) - margin
    high = float(zs.max()) + margin
    knots = None
    if kind == TransformKind.SPLINE:
        knots = spline_knots(zs)
        # Degenerate (tied) knots collapse the spline to a cubic; keep the
        # distinct ones so the basis stays full rank.
        knots = np.unique(np.round(knots, 9))
    return FittedTransform(
        kind, power=power, knots=knots, center=center, scale=scale,
        low=low, high=high,
    )
