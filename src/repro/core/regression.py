"""Ordinary and weighted least squares (§2.3).

The basic regression ``z = b0 + b1 c1 + ... + bk ck + eps`` over design
columns c, solved by numpy's (SVD-backed) least squares.  Weighted fits
implement the paper's model-update step, which fits ``{P_-s, T_s} x w`` —
the new application's training profiles replicated/weighted by w (§3.3).

For the genetic search's leave-one-application-out inner loop, the same
weighted fit is also available in **Gram (normal-equation) form**:
:func:`accumulate_gram` reduces a design block to ``(XᵀWX, XᵀWy)``
contributions that are *additive over rows*, so per-application fits can
be realized as cheap block updates of one shared accumulation, and
:func:`solve_gram` solves the resulting p×p system by Cholesky.  The Gram
path squares the condition number of the design, so :func:`solve_gram`
refuses (returns ``None``) when the system is ill-conditioned and callers
fall back to the SVD-backed :func:`fit_ols`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

#: Condition-number limit of the (intercept-augmented) Gram matrix beyond
#: which :func:`solve_gram` declines to solve.  cond(XᵀX) ≈ cond(X)², so
#: 1e10 corresponds to a design condition of ~1e5 — comfortably inside the
#: regime where the Cholesky solution matches lstsq to ~1e-8.
GRAM_CONDITION_LIMIT = 1e10


@dataclasses.dataclass
class LinearFit:
    """A fitted linear model over prepared design columns."""

    intercept: float
    coefficients: np.ndarray
    column_names: Tuple[str, ...]

    def predict(self, design: np.ndarray) -> np.ndarray:
        # C-contiguous + einsum instead of a bare `@`: BLAS gemv/gemm block
        # differently with the row count, and einsum's reduction order
        # follows memory layout, so either a stride change or a batch-size
        # change could perturb the last ulp.  The serving layer micro-batches
        # concurrent requests and guarantees batched responses are
        # bit-identical to sequential single-row calls, which requires a
        # batch-size- and layout-invariant reduction.
        design = np.ascontiguousarray(design, dtype=float)
        if design.ndim != 2 or design.shape[1] != len(self.coefficients):
            raise ValueError(
                f"design must be (n, {len(self.coefficients)}), got {design.shape}"
            )
        return self.intercept + np.einsum("ij,j->i", design, self.coefficients)

    def named_coefficients(self) -> dict:
        return dict(zip(self.column_names, self.coefficients.tolist()))


def fit_ols(
    design: np.ndarray,
    targets: np.ndarray,
    column_names: Optional[Sequence[str]] = None,
    weights: Optional[np.ndarray] = None,
) -> LinearFit:
    """Fit (optionally weighted) least squares with an intercept.

    Weighted fitting minimizes ``sum_i w_i (z_i - f(c_i))^2`` via the usual
    sqrt-weight row scaling.  Rank deficiency is tolerated (numpy lstsq
    returns the minimum-norm solution), but callers should prune collinear
    columns first for interpretable coefficients.
    """
    design = np.asarray(design, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    n, p = design.shape
    if len(targets) != n:
        raise ValueError(f"{n} rows but {len(targets)} targets")
    if n == 0:
        raise ValueError("cannot fit on an empty dataset")
    if column_names is None:
        column_names = tuple(f"c{j}" for j in range(p))
    if len(column_names) != p:
        raise ValueError("column_names length must match design width")

    augmented = np.column_stack([np.ones(n), design])
    rhs = targets
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if len(weights) != n:
            raise ValueError(f"{n} rows but {len(weights)} weights")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        root = np.sqrt(weights)
        augmented = augmented * root[:, None]
        rhs = targets * root

    solution, *_ = np.linalg.lstsq(augmented, rhs, rcond=None)
    return LinearFit(
        intercept=float(solution[0]),
        coefficients=solution[1:].copy(),
        column_names=tuple(column_names),
    )


def accumulate_gram(
    design: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Normal-equation contributions ``(AᵀWA, AᵀWy)`` of a design block.

    ``A`` is the intercept-augmented design ``[1 | design]``; ``W`` the
    diagonal weight matrix (identity when ``weights`` is ``None``).  The
    returned pair is additive over disjoint row blocks: accumulating the
    whole dataset once and keeping per-application blocks lets a
    leave-one-application-out sweep realize each fit as
    ``G_total - G_val + (w - 1) * G_train`` instead of re-reducing all
    rows per application.
    """
    design = np.asarray(design, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    n = design.shape[0]
    if len(targets) != n:
        raise ValueError(f"{n} rows but {len(targets)} targets")
    augmented = np.column_stack([np.ones(n), design])
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if len(weights) != n:
            raise ValueError(f"{n} rows but {len(weights)} weights")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        weighted = augmented * weights[:, None]
    else:
        weighted = augmented
    gram = weighted.T @ augmented
    moment = weighted.T @ targets
    # Symmetrize: floating-point accumulation order makes G asymmetric at
    # the ulp level, and the Cholesky solver assumes exact symmetry.
    return (gram + gram.T) * 0.5, moment


def solve_gram(
    gram: np.ndarray,
    moment: np.ndarray,
    column_names: Optional[Sequence[str]] = None,
    condition_limit: float = GRAM_CONDITION_LIMIT,
) -> Optional[LinearFit]:
    """Solve normal equations ``G b = m`` from :func:`accumulate_gram`.

    Returns ``None`` — the caller should fall back to :func:`fit_ols` on
    the actual rows — when the system is not symmetric positive definite
    (Cholesky fails) or its condition number exceeds ``condition_limit``.
    """
    gram = np.asarray(gram, dtype=float)
    moment = np.asarray(moment, dtype=float)
    p = gram.shape[0]
    if gram.shape != (p, p) or moment.shape != (p,):
        raise ValueError(
            f"gram must be square and match moment, got {gram.shape} / {moment.shape}"
        )
    if p == 0:
        raise ValueError("gram must include at least the intercept row")
    if column_names is None:
        column_names = tuple(f"c{j}" for j in range(p - 1))
    if len(column_names) != p - 1:
        raise ValueError("column_names length must match design width")
    if not (np.isfinite(gram).all() and np.isfinite(moment).all()):
        return None
    try:
        np.linalg.cholesky(gram)
    except np.linalg.LinAlgError:
        return None
    if np.linalg.cond(gram) > condition_limit:
        return None
    solution = np.linalg.solve(gram, moment)
    return LinearFit(
        intercept=float(solution[0]),
        coefficients=solution[1:].copy(),
        column_names=tuple(column_names),
    )


def r_squared(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Coefficient of determination of predictions against targets."""
    targets = np.asarray(targets, dtype=float)
    predictions = np.asarray(predictions, dtype=float)
    ss_res = float(((targets - predictions) ** 2).sum())
    ss_tot = float(((targets - targets.mean()) ** 2).sum())
    if ss_tot < 1e-30:
        return 1.0 if ss_res < 1e-30 else 0.0
    return 1.0 - ss_res / ss_tot
