"""Ordinary and weighted least squares (§2.3).

The basic regression ``z = b0 + b1 c1 + ... + bk ck + eps`` over design
columns c, solved by numpy's (SVD-backed) least squares.  Weighted fits
implement the paper's model-update step, which fits ``{P_-s, T_s} x w`` —
the new application's training profiles replicated/weighted by w (§3.3).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclasses.dataclass
class LinearFit:
    """A fitted linear model over prepared design columns."""

    intercept: float
    coefficients: np.ndarray
    column_names: Tuple[str, ...]

    def predict(self, design: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        if design.ndim != 2 or design.shape[1] != len(self.coefficients):
            raise ValueError(
                f"design must be (n, {len(self.coefficients)}), got {design.shape}"
            )
        return self.intercept + design @ self.coefficients

    def named_coefficients(self) -> dict:
        return dict(zip(self.column_names, self.coefficients.tolist()))


def fit_ols(
    design: np.ndarray,
    targets: np.ndarray,
    column_names: Optional[Sequence[str]] = None,
    weights: Optional[np.ndarray] = None,
) -> LinearFit:
    """Fit (optionally weighted) least squares with an intercept.

    Weighted fitting minimizes ``sum_i w_i (z_i - f(c_i))^2`` via the usual
    sqrt-weight row scaling.  Rank deficiency is tolerated (numpy lstsq
    returns the minimum-norm solution), but callers should prune collinear
    columns first for interpretable coefficients.
    """
    design = np.asarray(design, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design must be 2-D, got shape {design.shape}")
    n, p = design.shape
    if len(targets) != n:
        raise ValueError(f"{n} rows but {len(targets)} targets")
    if n == 0:
        raise ValueError("cannot fit on an empty dataset")
    if column_names is None:
        column_names = tuple(f"c{j}" for j in range(p))
    if len(column_names) != p:
        raise ValueError("column_names length must match design width")

    augmented = np.column_stack([np.ones(n), design])
    rhs = targets
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if len(weights) != n:
            raise ValueError(f"{n} rows but {len(weights)} weights")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        root = np.sqrt(weights)
        augmented = augmented * root[:, None]
        rhs = targets * root

    solution, *_ = np.linalg.lstsq(augmented, rhs, rcond=None)
    return LinearFit(
        intercept=float(solution[0]),
        coefficients=solution[1:].copy(),
        column_names=tuple(column_names),
    )


def r_squared(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Coefficient of determination of predictions against targets."""
    targets = np.asarray(targets, dtype=float)
    predictions = np.asarray(predictions, dtype=float)
    ss_res = float(((targets - predictions) ** 2).sum())
    ss_tot = float(((targets - targets.mean()) ** 2).sum())
    if ss_tot < 1e-30:
        return 1.0 if ss_res < 1e-30 else 0.0
    return 1.0 - ss_res / ss_tot
