"""Batched fitness evaluation for the genetic search (§3.3's inner loop).

:func:`repro.core.fitness.evaluate_spec` — retained as the reference
oracle — pays three layers of redundant work for every candidate model in
a population:

1. **Transform refits.**  Every per-application fit re-estimates each
   variable's ladder power, standardization, and spline knots, although
   specs in a population share almost all of their ``(variable, kind)``
   columns.  The :class:`ColumnStore` fits each transform column once per
   dataset and every spec assembles its design matrix by column selection.
2. **Full least-squares per application.**  The leave-one-application-out
   sweep solves |apps| SVD-backed least-squares problems over nearly
   identical row sets.  :class:`FitnessEngine` accumulates the
   intercept-augmented Gram system ``(AᵀA, Aᵀy)`` once per spec, keeps
   per-application train/validation blocks, and realizes application s's
   weighted fit on ``{P_-s, T_s} × w`` as the block update
   ``G_total - G_val(s) + (w - 1) · G_train(s)`` followed by an O(p³)
   Cholesky solve — falling back to the reference ``lstsq`` path whenever
   the Gram system is ill-conditioned (:func:`solve_gram` declines).
3. **Re-scoring identical specs.**  Handled one level up:
   :class:`repro.core.genetic.GeneticSearch` memoizes engine results by
   chromosome, which is sound because the engine's splits are fixed per
   search (:func:`repro.core.fitness.derive_app_splits`).

Equivalence guarantees (also documented in DESIGN.md): the engine solves
the *same* weighted least-squares problems as the oracle over the same
fixed splits, with two deliberate batching deviations — transform state
(powers, centering, knots) is estimated once on the full dataset instead
of per-application training unions, and collinearity pruning is decided
once on the full design instead of per application.  On well-conditioned
data the Gram solve matches :func:`fit_ols` to ~1e-8 (property-tested);
the benchmark suite additionally checks that a seeded search converges to
the same best specification on both paths.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.core.collinearity import prune_design
from repro.core.dataset import ProfileDataset
from repro.core.design import ModelSpec
from repro.core.fitness import (
    DEFAULT_TRAINING_WEIGHT,
    DEFAULT_TRAIN_FRACTION,
    FAILED_FITNESS,
    FitnessResult,
    derive_app_splits,
)
from repro.core.metrics import median_error
from repro.core.model import RESPONSE_TRANSFORMS
from repro.core.regression import (
    GRAM_CONDITION_LIMIT,
    fit_ols,
    solve_gram,
)
from repro.core.transforms import (
    TransformKind,
    choose_ladder_power,
    spline_knots,
    stabilize,
)

#: Clamp applied to log-scale linear predictors before exponentiation,
#: mirroring :meth:`repro.core.model.InferredModel.predict`.
_LOG_PREDICTION_CLIP = 50.0


class ColumnStore:
    """Per-dataset cache of fitted transform columns.

    Every ``(variable, TransformKind)`` basis block and every
    interaction's stabilized-linear product is computed at most once; the
    arithmetic matches :class:`repro.core.design.DesignMatrixBuilder`
    fitted on the same dataset bit-for-bit (the stabilized view, its
    powers, and the truncated-power spline columns are the identical numpy
    expressions).
    """

    def __init__(self, dataset: ProfileDataset, auto_stabilize: bool = True):
        self._matrix = dataset.matrix()
        self._names = dataset.variable_names
        self._index = {name: i for i, name in enumerate(self._names)}
        self.auto_stabilize = auto_stabilize
        self._stabilized: Dict[str, np.ndarray] = {}
        self._blocks: Dict[Tuple[str, TransformKind], Tuple[np.ndarray, Tuple[str, ...]]] = {}
        self._products: Dict[Tuple[str, str], np.ndarray] = {}
        self.hits = 0
        self.builds = 0
        # Instrument handles are resolved once per store: no-op singletons
        # when observability is disabled, so the cache path stays flat.
        self._obs_hits = obs.counter("engine.column_hits")
        self._obs_builds = obs.counter("engine.column_builds")

    @property
    def n_rows(self) -> int:
        return self._matrix.shape[0]

    def hit_rate(self) -> float:
        total = self.hits + self.builds
        return self.hits / total if total else 0.0

    def stabilized(self, name: str) -> np.ndarray:
        """The variable's stabilized-linear view (power ladder, standardize,
        clamp) — the column interactions multiply."""
        cached = self._stabilized.get(name)
        if cached is not None:
            return cached
        if name not in self._index:
            raise ValueError(f"spec references unknown variable {name!r}")
        values = self._matrix[:, self._index[name]]
        power = choose_ladder_power(values) if self.auto_stabilize else 1
        z = stabilize(values, power)
        center = float(z.mean())
        scale = float(z.std())
        if scale < 1e-12:
            scale = 1.0
        # No clamp: FittedTransform's clip range covers the fit sample by
        # construction, so it is an exact no-op on the data it was fit on.
        zs = (z - center) / scale
        self._stabilized[name] = zs
        return zs

    def main_effect(
        self, name: str, kind: TransformKind
    ) -> Tuple[np.ndarray, Tuple[str, ...]]:
        """Basis block and column suffixes for one ``(variable, kind)``."""
        key = (name, kind)
        cached = self._blocks.get(key)
        if cached is not None:
            self.hits += 1
            self._obs_hits.inc()
            return cached
        self.builds += 1
        self._obs_builds.inc()
        if kind == TransformKind.EXCLUDED:
            block: Tuple[np.ndarray, Tuple[str, ...]] = (
                np.empty((self.n_rows, 0)), ()
            )
        else:
            zs = self.stabilized(name)
            if kind == TransformKind.SPLINE:
                knots = np.unique(np.round(spline_knots(zs), 9))
                columns = [zs, zs**2, zs**3]
                columns += [np.maximum(zs - knot, 0.0) ** 3 for knot in knots]
                suffixes = ("", "^2", "^3") + tuple(
                    f"~k{i + 1}" for i in range(len(knots))
                )
            else:
                degree = int(kind)
                columns = [zs ** d for d in range(1, degree + 1)]
                suffixes = ("", "^2", "^3")[:degree]
            block = (np.column_stack(columns), suffixes)
        self._blocks[key] = block
        return block

    def interaction(self, a: str, b: str) -> np.ndarray:
        """The product term ``a * b`` of the two stabilized-linear views."""
        key = (a, b) if a < b else (b, a)
        cached = self._products.get(key)
        if cached is not None:
            self.hits += 1
            self._obs_hits.inc()
            return cached
        self.builds += 1
        self._obs_builds.inc()
        column = self.stabilized(key[0]) * self.stabilized(key[1])
        self._products[key] = column
        return column

    def design(self, spec: ModelSpec) -> Tuple[np.ndarray, List[str]]:
        """Assemble the spec's design matrix by column selection.

        Column order matches :class:`DesignMatrixBuilder`: main effects in
        spec order, then interactions sorted by pair.
        """
        blocks: List[np.ndarray] = []
        names: List[str] = []
        for name, kind in spec.transforms.items():
            block, suffixes = self.main_effect(name, kind)
            if block.shape[1]:
                blocks.append(block)
                names.extend(f"{name}{suffix}" for suffix in suffixes)
        for a, b in sorted(spec.interactions):
            blocks.append(self.interaction(a, b)[:, None])
            names.append(f"{a}*{b}")
        if not blocks:
            return np.empty((self.n_rows, 0)), names
        return np.column_stack(blocks), names


class FitnessEngine:
    """Scores model specifications against one dataset with fixed splits.

    Construct once per (dataset, search); call :meth:`evaluate` per spec.
    The constructor builds the column store, derives the per-application
    splits from ``split_seed``, and precomputes the response vector; each
    evaluation then costs one design assembly, one collinearity prune, one
    Gram accumulation, and |apps| block-updated Cholesky solves.
    """

    def __init__(
        self,
        dataset: ProfileDataset,
        split_seed: int,
        weight: float = DEFAULT_TRAINING_WEIGHT,
        train_fraction: float = DEFAULT_TRAIN_FRACTION,
        response: str = "log",
        auto_stabilize: bool = True,
        condition_limit: float = GRAM_CONDITION_LIMIT,
    ):
        if response not in RESPONSE_TRANSFORMS:
            raise ValueError(
                f"response must be one of {sorted(RESPONSE_TRANSFORMS)}, got {response!r}"
            )
        self.dataset = dataset
        self.weight = float(weight)
        self.response = response
        self.condition_limit = condition_limit
        self.store = ColumnStore(dataset, auto_stabilize=auto_stabilize)
        self.splits = derive_app_splits(dataset, split_seed, train_fraction)
        self.applications = dataset.applications
        targets = dataset.targets()
        self._targets = targets
        forward, _ = RESPONSE_TRANSFORMS[response]
        self._bad_targets = response in ("log", "sqrt") and bool(
            (targets <= 0).any()
        )
        self._y = None if self._bad_targets else forward(targets)
        self.specs_evaluated = 0
        self.gram_fits = 0
        self.lstsq_fallbacks = 0
        self.failed_fits = 0
        self._obs_specs = obs.counter("engine.specs_evaluated")
        self._obs_gram = obs.counter("engine.gram_fits")
        self._obs_lstsq = obs.counter("engine.lstsq_fallbacks")
        self._obs_failed = obs.counter("engine.failed_fits")

    # -- public API ---------------------------------------------------------------

    def evaluate(self, spec: ModelSpec) -> FitnessResult:
        """Fitness of one specification (same contract as ``evaluate_spec``)."""
        if not self.applications:
            raise ValueError("dataset has no applications")
        self.specs_evaluated += 1
        self._obs_specs.inc()
        prepared = self._prepare(spec)
        per_app = {
            app: self._score_application(app, *prepared)
            for app in self.applications
        }
        errors = np.array(list(per_app.values()))
        return FitnessResult(
            mean_error=float(errors.mean()),
            sum_error=float(errors.sum()),
            per_application=per_app,
        )

    def evaluate_many(self, specs: Sequence[ModelSpec]) -> List[FitnessResult]:
        return [self.evaluate(spec) for spec in specs]

    def stats(self) -> Dict[str, float]:
        """Counters for benchmarking and observability."""
        return {
            "specs_evaluated": self.specs_evaluated,
            "gram_fits": self.gram_fits,
            "lstsq_fallbacks": self.lstsq_fallbacks,
            "failed_fits": self.failed_fits,
            "column_hits": self.store.hits,
            "column_builds": self.store.builds,
            "column_hit_rate": self.store.hit_rate(),
        }

    # -- internals -----------------------------------------------------------------

    def _prepare(self, spec: ModelSpec):
        """Per-spec shared state: pruned design, Gram total, per-app blocks."""
        if self._bad_targets:
            return (None,) * 5
        design, names = self.store.design(spec)
        if design.shape[1]:
            pruned, kept_names, _ = prune_design(design, names)
        else:
            pruned, kept_names = design, []
        augmented = np.column_stack([np.ones(self.store.n_rows), pruned])
        y = self._y
        blocks: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        p = augmented.shape[1]
        gram_total = np.zeros((p, p))
        moment_total = np.zeros(p)
        for app in self.applications:
            train_idx, val_idx = self.splits[app]
            a_train = augmented[train_idx]
            a_val = augmented[val_idx]
            g_train = a_train.T @ a_train
            g_val = a_val.T @ a_val
            m_train = a_train.T @ y[train_idx]
            m_val = a_val.T @ y[val_idx]
            blocks[app] = (g_train, g_val, m_train, m_val)
            gram_total += g_train + g_val
            moment_total += m_train + m_val
        gram_total = (gram_total + gram_total.T) * 0.5
        return augmented, kept_names, blocks, gram_total, moment_total

    def _score_application(
        self, app, augmented, kept_names, blocks, gram_total, moment_total
    ) -> float:
        if self._bad_targets:
            # The oracle's InferredModel.fit raises for non-positive
            # targets on a log/sqrt response, failing every application.
            return FAILED_FITNESS
        train_idx, val_idx = self.splits[app]
        if len(train_idx) == 0 or len(val_idx) == 0:
            return FAILED_FITNESS
        g_train, g_val, m_train, m_val = blocks[app]
        gram = gram_total - g_val + (self.weight - 1.0) * g_train
        gram = (gram + gram.T) * 0.5
        moment = moment_total - m_val + (self.weight - 1.0) * m_train
        fit = solve_gram(gram, moment, kept_names, self.condition_limit)
        if fit is None:
            beta = self._lstsq_fallback(app, augmented, kept_names)
            if beta is None:
                self.failed_fits += 1
                self._obs_failed.inc()
                return FAILED_FITNESS
        else:
            self.gram_fits += 1
            self._obs_gram.inc()
            beta = np.concatenate([[fit.intercept], fit.coefficients])
        linear = augmented[val_idx] @ beta
        if self.response == "log":
            linear = np.clip(linear, -_LOG_PREDICTION_CLIP, _LOG_PREDICTION_CLIP)
        _, inverse = RESPONSE_TRANSFORMS[self.response]
        predictions = inverse(linear)
        if not np.isfinite(predictions).all():
            return FAILED_FITNESS
        targets = self._targets[val_idx]
        return min(median_error(predictions, targets), FAILED_FITNESS)

    def _lstsq_fallback(self, app, augmented, kept_names) -> Optional[np.ndarray]:
        """The retained reference path: row-level weighted ``lstsq``."""
        self.lstsq_fallbacks += 1
        self._obs_lstsq.inc()
        train_idx, val_idx = self.splits[app]
        mask = np.ones(self.store.n_rows, dtype=bool)
        mask[val_idx] = False
        weights = np.ones(self.store.n_rows)
        weights[train_idx] = self.weight
        try:
            fit = fit_ols(
                augmented[mask][:, 1:],
                self._y[mask],
                kept_names,
                weights[mask],
            )
        except (ValueError, np.linalg.LinAlgError):
            return None
        return np.concatenate([[fit.intercept], fit.coefficients])


def evaluate_chunk(
    dataset: ProfileDataset,
    split_seed: int,
    specs: Sequence[ModelSpec],
    weight: float = DEFAULT_TRAINING_WEIGHT,
    train_fraction: float = DEFAULT_TRAIN_FRACTION,
) -> Tuple[List[FitnessResult], Dict[str, float]]:
    """Score a chunk of specs with one shared engine (worker entry point).

    Top-level and fully determined by its arguments, so
    :mod:`repro.parallel` can ship whole population chunks to worker
    processes: each worker builds the column store once per chunk instead
    of once per candidate — and the supervised pool can resubmit a chunk
    whose worker died without changing any result.
    """
    faults.site("engine.evaluate_chunk")
    engine = FitnessEngine(
        dataset, split_seed, weight=weight, train_fraction=train_fraction
    )
    return engine.evaluate_many(specs), engine.stats()


class StoredDataset:
    """An engine-facing dataset view whose arrays live in the mmap store.

    Carries exactly what :class:`FitnessEngine` and
    :func:`repro.core.fitness.derive_app_splits` consume — variable names,
    the variables matrix, the target vector, and per-row application
    labels — with the two arrays memory-mapped from :mod:`repro.store`
    columns.  Shipping one to a pool worker via :mod:`repro.parallel`
    therefore crosses the boundary as tiny column references: every worker
    maps the same pages instead of unpickling its own copy of the dataset.
    """

    def __init__(self, variable_names, matrix, targets, labels):
        self.variable_names = tuple(variable_names)
        self._matrix = matrix
        self._targets = targets
        self._labels = tuple(str(label) for label in labels)

    def __len__(self) -> int:
        return len(self._targets)

    @property
    def applications(self) -> Tuple[str, ...]:
        """Application names in first-appearance order (as in
        :class:`~repro.core.dataset.ProfileDataset`)."""
        return tuple(dict.fromkeys(self._labels))

    def matrix(self) -> np.ndarray:
        return self._matrix

    def targets(self) -> np.ndarray:
        return self._targets

    def labels(self) -> np.ndarray:
        return np.asarray(self._labels)


def publish_dataset(dataset: ProfileDataset, store=None):
    """Publish a dataset's arrays to the column store for chunk shipping.

    Returns a :class:`StoredDataset` backed by mapped columns, or the
    dataset unchanged when the store is disabled or unwritable.  Columns
    are content-addressed, so republishing the same dataset is a no-op
    and concurrent searches share the same pages.  The returned view is
    evaluation-equivalent: the engine solves identical systems on it.
    """
    from repro import store as store_mod

    if store is None:
        if not store_mod.enabled():
            return dataset
        store = store_mod.Store()
    matrix = np.ascontiguousarray(dataset.matrix(), dtype=float)
    targets = np.ascontiguousarray(dataset.targets(), dtype=float)
    labels = [str(label) for label in dataset.labels()]
    digest = hashlib.sha256()
    digest.update(matrix.tobytes())
    digest.update(targets.tobytes())
    digest.update("|".join(labels).encode())
    digest.update("|".join(dataset.variable_names).encode())
    key = digest.hexdigest()[:24]
    try:
        store.put(f"datasets/{key}/matrix", matrix)
        store.put(f"datasets/{key}/targets", targets)
        mapped_matrix = store.get(f"datasets/{key}/matrix")
        mapped_targets = store.get(f"datasets/{key}/targets")
    except store_mod.StoreError:
        return dataset
    obs.counter("store.datasets_published").inc()
    return StoredDataset(
        dataset.variable_names, mapped_matrix, mapped_targets, labels
    )
