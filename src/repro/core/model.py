"""The inferred hardware-software performance model.

:class:`InferredModel` bundles everything needed to go from a
:class:`ModelSpec` and training profiles to predictions on new profiles:

    spec --fit--> design matrix --collinearity pruning--> weighted OLS

Collinearity elimination is integrated into fitting because redundant
software variables routinely appear only once the design is constructed
(§3.1); the pruning decisions are recorded and replayed at prediction time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.collinearity import prune_design
from repro.core.dataset import ProfileDataset
from repro.core.design import DesignMatrixBuilder, ModelSpec
from repro.core.metrics import median_error, pearson_correlation
from repro.core.regression import LinearFit, fit_ols
from repro.core.transforms import TransformKind

#: Response-scale transforms.  Performance responses (CPI, Mflop/s, power)
#: are strictly positive with multiplicative structure, so regression on a
#: log scale stabilizes residual variance — the response-side counterpart
#: of the predictor transforms in §3.1 (and standard practice in the
#: regression-modeling work the paper builds on, Lee & Brooks [26]).
RESPONSE_TRANSFORMS = {
    "identity": (lambda z: z, lambda z: z),
    "log": (np.log, np.exp),
    "sqrt": (np.sqrt, lambda z: z**2),
}


class InferredModel:
    """A fitted performance model ``z = F(x, y) + eps``.

    Use :meth:`fit` (classmethod) to construct; thereafter :meth:`predict`
    maps datasets with the same variables to performance predictions.
    """

    def __init__(
        self,
        spec: ModelSpec,
        builder: DesignMatrixBuilder,
        kept_columns: List[int],
        fit: LinearFit,
        response: str = "log",
    ):
        self.spec = spec
        self._builder = builder
        self._kept_columns = kept_columns
        self._fit = fit
        self.response = response

    # -- construction -------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        spec: ModelSpec,
        dataset: ProfileDataset,
        weights: Optional[np.ndarray] = None,
        response: str = "log",
        auto_stabilize: bool = True,
    ) -> "InferredModel":
        """Fit ``spec`` to ``dataset`` (optionally weighted).

        ``response`` selects the response-scale transform (see
        :data:`RESPONSE_TRANSFORMS`); the default log scale suits strictly
        positive performance metrics.  ``auto_stabilize`` toggles the
        predictor-side power-ladder transform of §3.1 (exposed mainly for
        the ablation studies).
        """
        if response not in RESPONSE_TRANSFORMS:
            raise ValueError(
                f"response must be one of {sorted(RESPONSE_TRANSFORMS)}, got {response!r}"
            )
        forward, _ = RESPONSE_TRANSFORMS[response]
        targets = dataset.targets()
        if response in ("log", "sqrt") and (targets <= 0).any():
            raise ValueError(f"{response} response requires positive targets")

        builder = DesignMatrixBuilder(spec, auto_stabilize=auto_stabilize)
        design = builder.fit_transform(dataset)
        if design.shape[1] == 0:
            # Intercept-only model: legal, just weak.  Keeps the genetic
            # search total — a degenerate chromosome scores poorly rather
            # than crashing a generation.
            pruned, names, kept = design, [], []
        else:
            pruned, names, kept = prune_design(design, builder.column_names)
        linear_fit = fit_ols(pruned, forward(targets), names, weights)
        return cls(spec, builder, kept, linear_fit, response)

    # -- prediction ----------------------------------------------------------------

    def predict(self, dataset: ProfileDataset) -> np.ndarray:
        """Predicted performance for every record in ``dataset``."""
        design = self._builder.transform(dataset)
        if design.shape[1]:
            design = design[:, self._kept_columns]
        else:
            design = np.empty((len(dataset), 0))
        _, inverse = RESPONSE_TRANSFORMS[self.response]
        linear = self._fit.predict(design)
        if self.response == "log":
            # Guard exp() against absurd extrapolations from degenerate
            # candidate specs; the genetic search scores them poorly anyway.
            linear = np.clip(linear, -50.0, 50.0)
        return inverse(linear)

    def predict_one(self, x: np.ndarray, y: np.ndarray) -> float:
        """Predict a single (x, y) point."""
        from repro.core.dataset import ProfileRecord

        names = self._builder.variable_names
        if len(x) + len(y) != len(names):
            raise ValueError(
                f"expected {len(names)} values total, got {len(x)} + {len(y)}"
            )
        ds = ProfileDataset(names[: len(x)], names[len(x):])
        ds.add(ProfileRecord("query", np.asarray(x), np.asarray(y), 0.0))
        return float(self.predict(ds)[0])

    # -- evaluation ----------------------------------------------------------------

    def score(self, dataset: ProfileDataset) -> Dict[str, float]:
        """Median error and correlation on a validation dataset."""
        predictions = self.predict(dataset)
        targets = dataset.targets()
        return {
            "median_error": median_error(predictions, targets),
            "correlation": pearson_correlation(predictions, targets),
        }

    # -- introspection -----------------------------------------------------------------

    @property
    def coefficients(self) -> Dict[str, float]:
        return self._fit.named_coefficients()

    @property
    def intercept(self) -> float:
        return self._fit.intercept

    @property
    def n_terms(self) -> int:
        return len(self._fit.coefficients)

    def transform_summary(self) -> Dict[str, List[str]]:
        """Variables grouped by transformation — the paper's Table 3 view."""
        groups: Dict[str, List[str]] = {
            "un-used": [],
            "linear": [],
            "poly, degree 2": [],
            "poly, degree 3": [],
            "spline, 3 knots": [],
        }
        labels = {
            TransformKind.EXCLUDED: "un-used",
            TransformKind.LINEAR: "linear",
            TransformKind.QUADRATIC: "poly, degree 2",
            TransformKind.CUBIC: "poly, degree 3",
            TransformKind.SPLINE: "spline, 3 knots",
        }
        for name, kind in self.spec.transforms.items():
            groups[labels[kind]].append(name)
        return groups

    def __repr__(self) -> str:
        return (
            f"InferredModel({len(self.spec.included_variables)} variables, "
            f"{len(self.spec.interactions)} interactions, {self.n_terms} terms)"
        )
