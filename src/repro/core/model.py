"""The inferred hardware-software performance model.

:class:`InferredModel` bundles everything needed to go from a
:class:`ModelSpec` and training profiles to predictions on new profiles:

    spec --fit--> design matrix --collinearity pruning--> weighted OLS

Collinearity elimination is integrated into fitting because redundant
software variables routinely appear only once the design is constructed
(§3.1); the pruning decisions are recorded and replayed at prediction time.
"""

from __future__ import annotations

import math

from typing import Dict, List, Optional

import numpy as np

from repro.core.collinearity import prune_design
from repro.core.dataset import ProfileDataset
from repro.core.design import DesignMatrixBuilder, ModelSpec
from repro.core.metrics import median_error, pearson_correlation
from repro.core.regression import LinearFit, fit_ols
from repro.core.transforms import TransformKind

#: Response-scale transforms.  Performance responses (CPI, Mflop/s, power)
#: are strictly positive with multiplicative structure, so regression on a
#: log scale stabilizes residual variance — the response-side counterpart
#: of the predictor transforms in §3.1 (and standard practice in the
#: regression-modeling work the paper builds on, Lee & Brooks [26]).
RESPONSE_TRANSFORMS = {
    "identity": (lambda z: z, lambda z: z),
    "log": (np.log, np.exp),
    "sqrt": (np.sqrt, lambda z: z**2),
}


def _stable_exp(z: np.ndarray) -> np.ndarray:
    """Batch-size-invariant exp.

    ``np.exp`` dispatches to SIMD kernels whose lanes round differently
    from the scalar fallback used for remainder elements, so the same value
    can produce last-ulp-different results depending on its position and
    the array length.  The serving layer guarantees micro-batched
    predictions are bit-identical to single-row calls, so the response
    inverse must be computed per element.  math.exp costs ~0.1 µs/element —
    irrelevant next to design-matrix construction on every predict path.
    """
    return np.array([math.exp(v) for v in z], dtype=float)


class InferredModel:
    """A fitted performance model ``z = F(x, y) + eps``.

    Use :meth:`fit` (classmethod) to construct; thereafter :meth:`predict`
    maps datasets with the same variables to performance predictions.
    """

    def __init__(
        self,
        spec: ModelSpec,
        builder: DesignMatrixBuilder,
        kept_columns: List[int],
        fit: LinearFit,
        response: str = "log",
    ):
        self.spec = spec
        self._builder = builder
        self._kept_columns = kept_columns
        self._fit = fit
        self.response = response

    # -- construction -------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        spec: ModelSpec,
        dataset: ProfileDataset,
        weights: Optional[np.ndarray] = None,
        response: str = "log",
        auto_stabilize: bool = True,
    ) -> "InferredModel":
        """Fit ``spec`` to ``dataset`` (optionally weighted).

        ``response`` selects the response-scale transform (see
        :data:`RESPONSE_TRANSFORMS`); the default log scale suits strictly
        positive performance metrics.  ``auto_stabilize`` toggles the
        predictor-side power-ladder transform of §3.1 (exposed mainly for
        the ablation studies).
        """
        if response not in RESPONSE_TRANSFORMS:
            raise ValueError(
                f"response must be one of {sorted(RESPONSE_TRANSFORMS)}, got {response!r}"
            )
        forward, _ = RESPONSE_TRANSFORMS[response]
        targets = dataset.targets()
        if response in ("log", "sqrt") and (targets <= 0).any():
            raise ValueError(f"{response} response requires positive targets")

        builder = DesignMatrixBuilder(spec, auto_stabilize=auto_stabilize)
        design = builder.fit_transform(dataset)
        if design.shape[1] == 0:
            # Intercept-only model: legal, just weak.  Keeps the genetic
            # search total — a degenerate chromosome scores poorly rather
            # than crashing a generation.
            pruned, names, kept = design, [], []
        else:
            pruned, names, kept = prune_design(design, builder.column_names)
        linear_fit = fit_ols(pruned, forward(targets), names, weights)
        return cls(spec, builder, kept, linear_fit, response)

    # -- prediction ----------------------------------------------------------------

    def predict(self, dataset: ProfileDataset) -> np.ndarray:
        """Predicted performance for every record in ``dataset``."""
        return self._predict_design(self._builder.transform(dataset))

    def predict_rows(self, rows: np.ndarray) -> np.ndarray:
        """Predicted performance for a raw ``(n, n_variables)`` feature array.

        Columns must be ordered like the fit-time
        :attr:`~repro.core.design.DesignMatrixBuilder.variable_names`
        (software variables first, then hardware).  Bit-identical to
        :meth:`predict` on a dataset holding the same rows, but skips
        :class:`ProfileDataset` and :class:`ProfileRecord` construction —
        this is the serving hot path, where per-request object overhead
        dominates the actual linear-algebra cost.
        """
        return self._predict_design(
            self._builder.transform_matrix(np.atleast_2d(rows))
        )

    def _predict_design(self, design: np.ndarray) -> np.ndarray:
        if design.shape[1]:
            design = design[:, self._kept_columns]
        else:
            design = np.empty((design.shape[0], 0))
        linear = self._fit.predict(design)
        if self.response == "log":
            # Guard exp() against absurd extrapolations from degenerate
            # candidate specs; the genetic search scores them poorly anyway.
            linear = np.clip(linear, -50.0, 50.0)
            return _stable_exp(linear)
        _, inverse = RESPONSE_TRANSFORMS[self.response]
        return inverse(linear)

    def predict_one(self, x: np.ndarray, y: np.ndarray) -> float:
        """Predict a single (x, y) point."""
        from repro.core.dataset import ProfileRecord

        names = self._builder.variable_names
        if len(x) + len(y) != len(names):
            raise ValueError(
                f"expected {len(names)} values total, got {len(x)} + {len(y)}"
            )
        ds = ProfileDataset(names[: len(x)], names[len(x):])
        ds.add(ProfileRecord("query", np.asarray(x), np.asarray(y), 0.0))
        return float(self.predict(ds)[0])

    # -- streaming support ---------------------------------------------------------

    def prepared_design(self, dataset: ProfileDataset) -> np.ndarray:
        """The pruned design rows this model's fit actually consumes.

        Applies the fit-time transform state *and* the recorded
        collinearity-pruning decisions, so the returned block lines up
        column-for-column with :attr:`fit_column_names`.  This is the
        row-reduction entry point of the streaming accumulator
        (:class:`repro.stream.GramAccumulator`): folding these rows
        through :func:`repro.core.regression.accumulate_gram` yields
        normal-equation blocks additive with any other rows prepared by
        the same model.
        """
        design = self._builder.transform(dataset)
        if design.shape[1]:
            return design[:, self._kept_columns]
        return np.empty((design.shape[0], 0))

    def transform_targets(self, targets: np.ndarray) -> np.ndarray:
        """Targets on the fit's response scale (the regression's ``y``)."""
        targets = np.asarray(targets, dtype=float)
        if self.response in ("log", "sqrt") and (targets <= 0).any():
            raise ValueError(f"{self.response} response requires positive targets")
        forward, _ = RESPONSE_TRANSFORMS[self.response]
        return forward(targets)

    def refit_from(self, fit: LinearFit) -> "InferredModel":
        """A new model sharing this one's spec/transform state, new coefficients.

        The streaming coefficient-refresh path: a :func:`solve_gram` over
        accumulated blocks produces a :class:`LinearFit` whose columns must
        match :attr:`fit_column_names`; everything else (spec, fitted
        transforms, pruning, response scale) is structural and carries over
        unchanged.
        """
        if fit.column_names != self.fit_column_names:
            raise ValueError(
                "refit columns do not match this model's design: "
                f"{fit.column_names} != {self.fit_column_names}"
            )
        return InferredModel(
            self.spec, self._builder, self._kept_columns, fit, self.response
        )

    @property
    def fit_column_names(self) -> tuple:
        """Design column names (post pruning) the linear fit is over."""
        return self._fit.column_names

    # -- evaluation ----------------------------------------------------------------

    def score(self, dataset: ProfileDataset) -> Dict[str, float]:
        """Median error and correlation on a validation dataset."""
        predictions = self.predict(dataset)
        targets = dataset.targets()
        return {
            "median_error": median_error(predictions, targets),
            "correlation": pearson_correlation(predictions, targets),
        }

    # -- introspection -----------------------------------------------------------------

    @property
    def variable_names(self) -> tuple:
        """Fit-time variable order (software first, then hardware) —
        the column order :meth:`predict_rows` expects."""
        return self._builder.variable_names

    @property
    def coefficients(self) -> Dict[str, float]:
        return self._fit.named_coefficients()

    @property
    def intercept(self) -> float:
        return self._fit.intercept

    @property
    def n_terms(self) -> int:
        return len(self._fit.coefficients)

    def transform_summary(self) -> Dict[str, List[str]]:
        """Variables grouped by transformation — the paper's Table 3 view."""
        groups: Dict[str, List[str]] = {
            "un-used": [],
            "linear": [],
            "poly, degree 2": [],
            "poly, degree 3": [],
            "spline, 3 knots": [],
        }
        labels = {
            TransformKind.EXCLUDED: "un-used",
            TransformKind.LINEAR: "linear",
            TransformKind.QUADRATIC: "poly, degree 2",
            TransformKind.CUBIC: "poly, degree 3",
            TransformKind.SPLINE: "spline, 3 knots",
        }
        for name, kind in self.spec.transforms.items():
            groups[labels[kind]].append(name)
        return groups

    def __repr__(self) -> str:
        return (
            f"InferredModel({len(self.spec.included_variables)} variables, "
            f"{len(self.spec.interactions)} interactions, {self.n_terms} terms)"
        )
