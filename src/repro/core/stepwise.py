"""Forward-stepwise regression baseline.

The paper contrasts its genetic search with stepwise regression, "which
considers only one term at a time" (§2.4).  This module implements that
baseline: starting from an intercept-only model, repeatedly add the single
candidate term (a transformed variable or a pairwise interaction) that most
improves validation error, until no candidate helps.

It serves two purposes: a comparison point for benchmarks, and a sanity
check that the GA's advantage (broader moves through the specification
space) materializes in this reproduction as it does in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.core.dataset import ProfileDataset
from repro.core.design import ModelSpec, normalize_interaction
from repro.core.metrics import median_error
from repro.core.model import InferredModel
from repro.core.transforms import TransformKind

#: Candidate transform kinds tried for each variable, in escalation order.
_CANDIDATE_KINDS = (
    TransformKind.LINEAR,
    TransformKind.QUADRATIC,
    TransformKind.CUBIC,
    TransformKind.SPLINE,
)


def stepwise_search(
    dataset: ProfileDataset,
    rng: np.random.Generator,
    max_terms: int = 30,
    min_improvement: float = 1e-3,
    val_fraction: float = 0.3,
    max_interaction_candidates: int = 60,
) -> Tuple[ModelSpec, float]:
    """Greedy forward selection of a model specification.

    Returns the selected specification and its validation median error.
    Interactions are drawn from the currently included variables (plus a
    random sample of other pairs) to keep each step tractable — precisely
    the locality that limits stepwise search relative to the GA.
    """
    train, val = dataset.split(1.0 - val_fraction, rng)
    names = dataset.variable_names

    transforms: Dict[str, TransformKind] = {
        name: TransformKind.EXCLUDED for name in names
    }
    interactions: Set[Tuple[str, str]] = set()
    best_error = np.inf

    for _ in range(max_terms):
        best_step = None  # (error, kind of step, payload)

        # Candidate 1: change one variable's transform.
        for name in names:
            for kind in _CANDIDATE_KINDS:
                if transforms[name] == kind:
                    continue
                candidate = dict(transforms)
                candidate[name] = kind
                error = _score(candidate, interactions, train, val)
                if error is not None and (best_step is None or error < best_step[0]):
                    best_step = (error, "transform", (name, kind))

        # Candidate 2: add one interaction.
        included = [n for n, k in transforms.items() if k != TransformKind.EXCLUDED]
        pairs = {
            normalize_interaction(a, b)
            for i, a in enumerate(included)
            for b in included[i + 1:]
        }
        # A few random exploratory pairs beyond the included set.
        for _ in range(10):
            i, j = rng.choice(len(names), size=2, replace=False)
            pairs.add(normalize_interaction(names[int(i)], names[int(j)]))
        pairs -= interactions
        pair_list = sorted(pairs)
        if len(pair_list) > max_interaction_candidates:
            picks = rng.choice(len(pair_list), size=max_interaction_candidates, replace=False)
            pair_list = [pair_list[int(i)] for i in picks]
        for pair in pair_list:
            error = _score(transforms, interactions | {pair}, train, val)
            if error is not None and (best_step is None or error < best_step[0]):
                best_step = (error, "interaction", pair)

        if best_step is None or best_step[0] >= best_error - min_improvement:
            break
        best_error = best_step[0]
        if best_step[1] == "transform":
            name, kind = best_step[2]
            transforms[name] = kind
        else:
            interactions.add(best_step[2])

    spec = ModelSpec(transforms=transforms, interactions=frozenset(interactions))
    return spec, float(best_error)


def _score(
    transforms: Dict[str, TransformKind],
    interactions: Set[Tuple[str, str]],
    train: ProfileDataset,
    val: ProfileDataset,
) -> Optional[float]:
    """Validation median error of a candidate; None when fitting fails."""
    spec = ModelSpec(transforms=transforms, interactions=frozenset(interactions))
    try:
        model = InferredModel.fit(spec, train)
        predictions = model.predict(val)
    except (ValueError, np.linalg.LinAlgError):
        return None
    if not np.isfinite(predictions).all():
        return None
    return median_error(predictions, val.targets())
