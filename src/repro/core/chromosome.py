"""Genetic encoding of model specifications (§3.4).

Each model is a chromosome:

* one **gene per variable**, valued 0..4 — excluded, linear, quadratic,
  cubic, or piecewise-cubic spline with three inflection points;
* a **dynamically sized list of interactions**, each a pair of variable
  indices ``i-j`` for the product term ``xi * xj``.  The list grows and
  shrinks during the search because the number of possible interactions is
  combinatorial and cannot be statically sized.

Operators (applied by :mod:`repro.core.genetic`):

* C1 — a single variable gene exchanged between two chromosomes;
* C2 — an interaction exchanged between two chromosomes;
* C3 — a new interaction created from single variables of two chromosomes;
* M1 — an interaction randomly changed;
* M2 — a single variable gene randomly changed.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.core.design import ModelSpec
from repro.core.transforms import TransformKind

N_GENE_VALUES = 5  # 0..4


@dataclasses.dataclass(frozen=True)
class Chromosome:
    """Immutable model encoding over a fixed variable ordering."""

    genes: Tuple[int, ...]
    interactions: FrozenSet[Tuple[int, int]]

    def __post_init__(self):
        genes = tuple(int(g) for g in self.genes)
        if any(not 0 <= g < N_GENE_VALUES for g in genes):
            raise ValueError(f"gene values must be 0..{N_GENE_VALUES - 1}")
        object.__setattr__(self, "genes", genes)
        pairs = set()
        for i, j in self.interactions:
            if i == j:
                raise ValueError("interactions need two distinct variables")
            if not (0 <= i < len(genes) and 0 <= j < len(genes)):
                raise ValueError(f"interaction ({i}, {j}) out of range")
            pairs.add((min(i, j), max(i, j)))
        object.__setattr__(self, "interactions", frozenset(pairs))

    @property
    def n_variables(self) -> int:
        return len(self.genes)

    def to_spec(self, variable_names: Sequence[str]) -> ModelSpec:
        """Decode into a :class:`ModelSpec` over named variables."""
        if len(variable_names) != len(self.genes):
            raise ValueError(
                f"{len(variable_names)} names for {len(self.genes)} genes"
            )
        transforms = {
            name: TransformKind(gene)
            for name, gene in zip(variable_names, self.genes)
        }
        interactions = frozenset(
            (variable_names[i], variable_names[j]) for i, j in self.interactions
        )
        return ModelSpec(transforms=transforms, interactions=interactions)

    # -- genetic operators ---------------------------------------------------------

    def with_gene(self, index: int, value: int) -> "Chromosome":
        genes = list(self.genes)
        genes[index] = value
        return Chromosome(tuple(genes), self.interactions)

    def with_interactions(
        self, interactions: FrozenSet[Tuple[int, int]]
    ) -> "Chromosome":
        return Chromosome(self.genes, interactions)

    @staticmethod
    def random(
        n_variables: int,
        rng: np.random.Generator,
        mean_interactions: float = 4.0,
        include_rate: float = 0.6,
    ) -> "Chromosome":
        """A random chromosome for the initial population.

        ``include_rate`` is the probability a variable is included at all;
        included variables get a uniformly random non-zero transform.
        """
        if n_variables < 2:
            raise ValueError("need at least two variables")
        genes = np.where(
            rng.random(n_variables) < include_rate,
            rng.integers(1, N_GENE_VALUES, size=n_variables),
            0,
        )
        n_inter = min(int(rng.poisson(mean_interactions)), n_variables * 2)
        pairs = set()
        for _ in range(n_inter):
            i, j = rng.choice(n_variables, size=2, replace=False)
            pairs.add((min(int(i), int(j)), max(int(i), int(j))))
        return Chromosome(tuple(int(g) for g in genes), frozenset(pairs))


def chromosome_from_spec(spec, variable_names: Sequence[str]) -> Chromosome:
    """Encode a :class:`~repro.core.design.ModelSpec` as a chromosome.

    The inverse of :meth:`Chromosome.to_spec`.  Used to seed the genetic
    search with known-reasonable models — "as the search begins with more
    effective models in the starting population, fewer generations are
    required" (§4.2).
    """
    index = {name: i for i, name in enumerate(variable_names)}
    missing = set(spec.transforms) - set(index)
    if missing:
        raise ValueError(f"spec has variables not in the dataset: {sorted(missing)}")
    genes = [0] * len(variable_names)
    for name, kind in spec.transforms.items():
        genes[index[name]] = int(kind)
    interactions = frozenset(
        (min(index[a], index[b]), max(index[a], index[b]))
        for a, b in spec.interactions
    )
    return Chromosome(tuple(genes), interactions)


def crossover_variable(
    a: Chromosome, b: Chromosome, rng: np.random.Generator
) -> Tuple[Chromosome, Chromosome]:
    """C1: one variable gene exchanged between two chromosomes."""
    index = int(rng.integers(0, a.n_variables))
    return a.with_gene(index, b.genes[index]), b.with_gene(index, a.genes[index])


def crossover_interaction(
    a: Chromosome, b: Chromosome, rng: np.random.Generator
) -> Tuple[Chromosome, Chromosome]:
    """C2: one interaction exchanged between two chromosomes.

    Each parent donates one random interaction to the other.  Parents
    without interactions donate nothing.
    """
    from_a = _random_interaction(a, rng)
    from_b = _random_interaction(b, rng)
    new_a = a.interactions
    new_b = b.interactions
    if from_b is not None:
        new_a = new_a | {from_b}
    if from_a is not None:
        new_b = new_b | {from_a}
    return a.with_interactions(new_a), b.with_interactions(new_b)


def crossover_create_interaction(
    a: Chromosome, b: Chromosome, rng: np.random.Generator
) -> Tuple[Chromosome, Chromosome]:
    """C3: an interaction created from single variables of two chromosomes.

    Picks one *included* variable from each parent (falling back to any
    variable) and adds their product term to both children.
    """
    vi = _random_included_variable(a, rng)
    vj = _random_included_variable(b, rng)
    if vi == vj:
        vj = int((vj + 1) % a.n_variables)
    pair = (min(vi, vj), max(vi, vj))
    return (
        a.with_interactions(a.interactions | {pair}),
        b.with_interactions(b.interactions | {pair}),
    )


def mutate_interaction(c: Chromosome, rng: np.random.Generator) -> Chromosome:
    """M1: an interaction randomly changed (replaced, added, or dropped)."""
    pairs = set(c.interactions)
    existing = _random_interaction(c, rng)
    roll = rng.random()
    if existing is not None and roll < 0.5:
        pairs.discard(existing)
        if roll < 0.35:  # replace rather than drop
            pairs.add(_random_pair(c.n_variables, rng))
    else:
        pairs.add(_random_pair(c.n_variables, rng))
    return c.with_interactions(frozenset(pairs))


def mutate_variable(c: Chromosome, rng: np.random.Generator) -> Chromosome:
    """M2: a single variable gene randomly changed."""
    index = int(rng.integers(0, c.n_variables))
    current = c.genes[index]
    choices = [v for v in range(N_GENE_VALUES) if v != current]
    return c.with_gene(index, int(rng.choice(choices)))


def _random_interaction(c: Chromosome, rng: np.random.Generator):
    if not c.interactions:
        return None
    pairs = sorted(c.interactions)
    return pairs[int(rng.integers(0, len(pairs)))]


def _random_included_variable(c: Chromosome, rng: np.random.Generator) -> int:
    included = [i for i, g in enumerate(c.genes) if g > 0]
    pool = included or list(range(c.n_variables))
    return int(pool[int(rng.integers(0, len(pool)))])


def _random_pair(n: int, rng: np.random.Generator) -> Tuple[int, int]:
    i, j = rng.choice(n, size=2, replace=False)
    return (min(int(i), int(j)), max(int(i), int(j)))
