"""Model serialization: deploy an inferred model without its training data.

A fitted :class:`~repro.core.model.InferredModel` is a small, closed-form
object — transform state (powers, knots, clamp ranges), pruning decisions,
and regression coefficients.  Run-time managers (the datacenter scheduler,
an adaptive chip controller) need to *ship* that object to where decisions
are made; this module round-trips it through plain JSON.

``save_model(model, path)`` / ``load_model(path)`` or the dict-level
``model_to_dict`` / ``model_from_dict``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.design import DesignMatrixBuilder, ModelSpec
from repro.core.model import InferredModel
from repro.core.regression import LinearFit
from repro.core.transforms import FittedTransform, TransformKind

FORMAT_VERSION = 1


def _transform_to_dict(fitted: FittedTransform) -> dict:
    return {
        "kind": int(fitted.kind),
        "power": fitted.power,
        "knots": None if fitted.knots is None else list(map(float, fitted.knots)),
        "center": fitted.center,
        "scale": fitted.scale,
        "low": _encode_inf(fitted.low),
        "high": _encode_inf(fitted.high),
    }


def _transform_from_dict(payload: dict) -> FittedTransform:
    knots = payload["knots"]
    return FittedTransform(
        kind=TransformKind(payload["kind"]),
        power=payload["power"],
        knots=None if knots is None else np.array(knots, dtype=float),
        center=payload["center"],
        scale=payload["scale"],
        low=_decode_inf(payload["low"]),
        high=_decode_inf(payload["high"]),
    )


def _encode_inf(value: float):
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return float(value)


def _decode_inf(value) -> float:
    if value in ("inf", "-inf"):
        return float(value)
    return float(value)


def spec_to_dict(spec: ModelSpec) -> dict:
    return {
        "transforms": {name: int(kind) for name, kind in spec.transforms.items()},
        "interactions": sorted(list(pair) for pair in spec.interactions),
    }


def spec_from_dict(payload: dict) -> ModelSpec:
    return ModelSpec(
        transforms={
            name: TransformKind(kind)
            for name, kind in payload["transforms"].items()
        },
        interactions=frozenset(tuple(pair) for pair in payload["interactions"]),
    )


def model_to_dict(model: InferredModel) -> dict:
    """Serialize a fitted model to a JSON-compatible dict."""
    builder = model._builder
    if not builder.is_fitted:
        raise ValueError("cannot serialize an unfitted model")
    return {
        "format": FORMAT_VERSION,
        "spec": spec_to_dict(model.spec),
        "response": model.response,
        "auto_stabilize": builder.auto_stabilize,
        "variable_names": list(builder.variable_names),
        "fitted": {
            name: _transform_to_dict(fitted)
            for name, fitted in builder._fitted.items()
        },
        "linear_views": {
            name: _transform_to_dict(fitted)
            for name, fitted in builder._linear_views.items()
        },
        "columns": list(builder._columns),
        "kept_columns": list(model._kept_columns),
        "fit": {
            "intercept": model._fit.intercept,
            "coefficients": list(map(float, model._fit.coefficients)),
            "column_names": list(model._fit.column_names),
        },
    }


def model_from_dict(payload: dict) -> InferredModel:
    """Reconstruct a fitted model from :func:`model_to_dict` output."""
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {payload.get('format')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    spec = spec_from_dict(payload["spec"])
    builder = DesignMatrixBuilder(spec, auto_stabilize=payload["auto_stabilize"])
    builder._variable_names = tuple(payload["variable_names"])
    builder._fitted = {
        name: _transform_from_dict(entry)
        for name, entry in payload["fitted"].items()
    }
    builder._linear_views = {
        name: _transform_from_dict(entry)
        for name, entry in payload["linear_views"].items()
    }
    builder._columns = list(payload["columns"])
    builder._is_fitted = True

    fit = LinearFit(
        intercept=payload["fit"]["intercept"],
        coefficients=np.array(payload["fit"]["coefficients"], dtype=float),
        column_names=tuple(payload["fit"]["column_names"]),
    )
    return InferredModel(
        spec=spec,
        builder=builder,
        kept_columns=list(payload["kept_columns"]),
        fit=fit,
        response=payload["response"],
    )


def save_model(model: InferredModel, path: Union[str, Path]) -> None:
    """Write a fitted model to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(model_to_dict(model), indent=2))


def load_model(path: Union[str, Path]) -> InferredModel:
    """Read a fitted model from a JSON file."""
    payload = json.loads(Path(path).read_text())
    return model_from_dict(payload)
