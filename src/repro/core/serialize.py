"""Model serialization: deploy an inferred model without its training data.

A fitted :class:`~repro.core.model.InferredModel` is a small, closed-form
object — transform state (powers, knots, clamp ranges), pruning decisions,
and regression coefficients.  Run-time managers (the datacenter scheduler,
an adaptive chip controller) need to *ship* that object to where decisions
are made; this module round-trips it through plain JSON.

``save_model(model, path)`` / ``load_model(path)`` or the dict-level
``model_to_dict`` / ``model_from_dict``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.design import DesignMatrixBuilder, ModelSpec
from repro.core.model import InferredModel
from repro.core.regression import LinearFit
from repro.core.transforms import FittedTransform, TransformKind

#: Current on-disk schema.  Version 1 lacked ``schema_version``/``checksum``
#: (it used a bare ``format`` field); version 2 adds both so deployment
#: surfaces (the model registry, remote loaders) can reject stale or
#: corrupted payloads with a precise error instead of an opaque KeyError.
SCHEMA_VERSION = 2

#: Backwards-compatible alias for the pre-registry name.
FORMAT_VERSION = SCHEMA_VERSION


class ModelFormatError(ValueError):
    """A serialized model payload is unreadable.

    Raised on schema-version mismatch, checksum failure (bit rot, truncated
    writes), invalid JSON, or structurally missing fields.
    """


def payload_checksum(body: dict) -> str:
    """SHA-256 over the canonical JSON encoding of the payload body.

    The body excludes the ``schema_version`` and ``checksum`` envelope keys
    themselves, so the digest is stable under envelope evolution.
    """
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _transform_to_dict(fitted: FittedTransform) -> dict:
    return {
        "kind": int(fitted.kind),
        "power": fitted.power,
        "knots": None if fitted.knots is None else list(map(float, fitted.knots)),
        "center": fitted.center,
        "scale": fitted.scale,
        "low": _encode_inf(fitted.low),
        "high": _encode_inf(fitted.high),
    }


def _transform_from_dict(payload: dict) -> FittedTransform:
    knots = payload["knots"]
    return FittedTransform(
        kind=TransformKind(payload["kind"]),
        power=payload["power"],
        knots=None if knots is None else np.array(knots, dtype=float),
        center=payload["center"],
        scale=payload["scale"],
        low=_decode_inf(payload["low"]),
        high=_decode_inf(payload["high"]),
    )


def _encode_inf(value: float):
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return float(value)


def _decode_inf(value) -> float:
    if value in ("inf", "-inf"):
        return float(value)
    return float(value)


def spec_to_dict(spec: ModelSpec) -> dict:
    return {
        "transforms": {name: int(kind) for name, kind in spec.transforms.items()},
        "interactions": sorted(list(pair) for pair in spec.interactions),
    }


def spec_from_dict(payload: dict) -> ModelSpec:
    return ModelSpec(
        transforms={
            name: TransformKind(kind)
            for name, kind in payload["transforms"].items()
        },
        interactions=frozenset(tuple(pair) for pair in payload["interactions"]),
    )


def model_to_dict(model: InferredModel) -> dict:
    """Serialize a fitted model to a JSON-compatible dict.

    The result carries a ``schema_version`` and a SHA-256 ``checksum`` over
    the body; :func:`model_from_dict` verifies both.
    """
    builder = model._builder
    if not builder.is_fitted:
        raise ValueError("cannot serialize an unfitted model")
    body = {
        "spec": spec_to_dict(model.spec),
        "response": model.response,
        "auto_stabilize": builder.auto_stabilize,
        "variable_names": list(builder.variable_names),
        "fitted": {
            name: _transform_to_dict(fitted)
            for name, fitted in builder._fitted.items()
        },
        "linear_views": {
            name: _transform_to_dict(fitted)
            for name, fitted in builder._linear_views.items()
        },
        "columns": list(builder._columns),
        "kept_columns": list(model._kept_columns),
        "fit": {
            "intercept": model._fit.intercept,
            "coefficients": list(map(float, model._fit.coefficients)),
            "column_names": list(model._fit.column_names),
        },
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "checksum": payload_checksum(body),
        **body,
    }


def _payload_version(payload: dict) -> int:
    """Schema version of a payload, handling the legacy v1 ``format`` key."""
    if "schema_version" in payload:
        return payload["schema_version"]
    if payload.get("format") == 1:
        return 1
    raise ModelFormatError(
        "payload carries no schema_version (and no legacy 'format' field); "
        "not a serialized InferredModel"
    )


def model_from_dict(payload: dict) -> InferredModel:
    """Reconstruct a fitted model from :func:`model_to_dict` output.

    Verifies the schema version and (for schema >= 2) the body checksum,
    raising :class:`ModelFormatError` with a precise message on mismatch or
    corruption.  Legacy version-1 payloads (no checksum) still load.
    """
    if not isinstance(payload, dict):
        raise ModelFormatError(
            f"expected a payload dict, got {type(payload).__name__}"
        )
    version = _payload_version(payload)
    if version not in (1, SCHEMA_VERSION):
        raise ModelFormatError(
            f"unsupported model schema version {version!r}; "
            f"this build reads versions 1 and {SCHEMA_VERSION}"
        )
    if version >= 2:
        stated = payload.get("checksum")
        body = {
            k: v
            for k, v in payload.items()
            if k not in ("schema_version", "checksum")
        }
        actual = payload_checksum(body)
        if stated != actual:
            raise ModelFormatError(
                f"model payload checksum mismatch: stated {stated!r}, "
                f"computed {actual!r} — the payload is corrupted or was "
                "edited without re-sealing"
            )
    try:
        return _model_from_body(payload)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ModelFormatError):
            raise
        raise ModelFormatError(
            f"malformed model payload (schema {version}): {exc!r}"
        ) from exc


def _model_from_body(payload: dict) -> InferredModel:
    spec = spec_from_dict(payload["spec"])
    builder = DesignMatrixBuilder(spec, auto_stabilize=payload["auto_stabilize"])
    builder._variable_names = tuple(payload["variable_names"])
    builder._fitted = {
        name: _transform_from_dict(entry)
        for name, entry in payload["fitted"].items()
    }
    builder._linear_views = {
        name: _transform_from_dict(entry)
        for name, entry in payload["linear_views"].items()
    }
    builder._columns = list(payload["columns"])
    builder._is_fitted = True

    fit = LinearFit(
        intercept=payload["fit"]["intercept"],
        coefficients=np.array(payload["fit"]["coefficients"], dtype=float),
        column_names=tuple(payload["fit"]["column_names"]),
    )
    return InferredModel(
        spec=spec,
        builder=builder,
        kept_columns=list(payload["kept_columns"]),
        fit=fit,
        response=payload["response"],
    )


def save_model(model: InferredModel, path: Union[str, Path]) -> None:
    """Write a fitted model to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(model_to_dict(model), indent=2))


def load_model(path: Union[str, Path]) -> InferredModel:
    """Read a fitted model from a JSON file.

    Raises :class:`ModelFormatError` on invalid JSON, schema mismatch, or
    checksum failure.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ModelFormatError(f"{path}: not valid JSON ({exc})") from exc
    return model_from_dict(payload)
