"""Profile datasets: sparse samples of an integrated HW-SW space.

A :class:`ProfileRecord` is one observation — software characteristics
``x``, hardware parameters ``y``, and measured performance ``z`` — exactly
the (x, y, z) triple of §2.3.  A :class:`ProfileDataset` is a collection of
records grouped by application, supporting the per-application
train/validation splitting the modeling heuristic's inner loop requires
(§3.3 pseudo-code).

The container is variable-name driven so the same machinery serves the
general study (13 software x 13 hardware variables) and the domain-specific
SpMV study (3 x 7).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class ProfileRecord:
    """One profiled hardware-software interaction."""

    application: str
    x: np.ndarray          # software characteristics
    y: np.ndarray          # hardware parameters
    z: float               # measured performance
    tag: str = ""          # free-form provenance (shard key, config key, ...)

    def __post_init__(self):
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))
        object.__setattr__(self, "y", np.asarray(self.y, dtype=float))
        if not np.isfinite(self.x).all() or not np.isfinite(self.y).all():
            raise ValueError(f"non-finite profile for {self.application}")
        if not np.isfinite(self.z):
            raise ValueError(f"non-finite performance for {self.application}")


class ProfileDataset:
    """An ordered collection of profile records with named variables.

    Parameters
    ----------
    x_names, y_names:
        Names of the software and hardware variables, in column order.
    records:
        Optional initial records.
    """

    def __init__(
        self,
        x_names: Sequence[str],
        y_names: Sequence[str],
        records: Iterable[ProfileRecord] = (),
    ):
        self.x_names = tuple(x_names)
        self.y_names = tuple(y_names)
        if set(self.x_names) & set(self.y_names):
            raise ValueError("software and hardware variable names must not overlap")
        self._records: List[ProfileRecord] = []
        for record in records:
            self.add(record)

    # -- mutation ------------------------------------------------------------------

    def add(self, record: ProfileRecord) -> None:
        if len(record.x) != len(self.x_names):
            raise ValueError(
                f"record has {len(record.x)} software values, expected {len(self.x_names)}"
            )
        if len(record.y) != len(self.y_names):
            raise ValueError(
                f"record has {len(record.y)} hardware values, expected {len(self.y_names)}"
            )
        self._records.append(record)

    def extend(self, records: Iterable[ProfileRecord]) -> None:
        for record in records:
            self.add(record)

    # -- container protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __repr__(self) -> str:
        return (
            f"ProfileDataset({len(self)} records, "
            f"{len(self.applications)} applications)"
        )

    @property
    def records(self) -> Tuple[ProfileRecord, ...]:
        return tuple(self._records)

    @property
    def applications(self) -> Tuple[str, ...]:
        """Application names in first-appearance order."""
        seen = dict.fromkeys(r.application for r in self._records)
        return tuple(seen)

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """All variable names: software first, then hardware."""
        return self.x_names + self.y_names

    # -- matrix views ------------------------------------------------------------------

    def matrix(self) -> np.ndarray:
        """All variables as one matrix, columns ordered like
        :attr:`variable_names`."""
        if not self._records:
            return np.empty((0, len(self.variable_names)))
        return np.array(
            [np.concatenate([r.x, r.y]) for r in self._records], dtype=float
        )

    def targets(self) -> np.ndarray:
        return np.array([r.z for r in self._records], dtype=float)

    def labels(self) -> np.ndarray:
        return np.array([r.application for r in self._records])

    # -- grouping and splitting -----------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "ProfileDataset":
        out = ProfileDataset(self.x_names, self.y_names)
        out._records = [self._records[i] for i in indices]
        return out

    def by_application(self) -> Dict[str, "ProfileDataset"]:
        groups: Dict[str, List[int]] = {}
        for i, record in enumerate(self._records):
            groups.setdefault(record.application, []).append(i)
        return {app: self.subset(idx) for app, idx in groups.items()}

    def without_application(self, application: str) -> "ProfileDataset":
        """All records except those of ``application`` (the paper's P_{-s})."""
        keep = [
            i for i, r in enumerate(self._records) if r.application != application
        ]
        return self.subset(keep)

    def only_application(self, application: str) -> "ProfileDataset":
        keep = [
            i for i, r in enumerate(self._records) if r.application == application
        ]
        return self.subset(keep)

    def split(
        self,
        fraction: float,
        rng: np.random.Generator,
        stratify: bool = True,
    ) -> Tuple["ProfileDataset", "ProfileDataset"]:
        """Random (train, validation) split.

        With ``stratify`` the split is performed within each application so
        every application contributes to both sides.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        if stratify:
            train_idx: List[int] = []
            val_idx: List[int] = []
            groups: Dict[str, List[int]] = {}
            for i, record in enumerate(self._records):
                groups.setdefault(record.application, []).append(i)
            for idx in groups.values():
                idx = np.array(idx)
                perm = rng.permutation(len(idx))
                cut = max(1, int(round(fraction * len(idx))))
                cut = min(cut, len(idx) - 1) if len(idx) > 1 else len(idx)
                train_idx.extend(idx[perm[:cut]].tolist())
                val_idx.extend(idx[perm[cut:]].tolist())
            return self.subset(sorted(train_idx)), self.subset(sorted(val_idx))
        perm = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(sorted(perm[:cut])), self.subset(sorted(perm[cut:]))

    @staticmethod
    def merge(datasets: Sequence["ProfileDataset"]) -> "ProfileDataset":
        if not datasets:
            raise ValueError("nothing to merge")
        first = datasets[0]
        out = ProfileDataset(first.x_names, first.y_names)
        for ds in datasets:
            if ds.x_names != first.x_names or ds.y_names != first.y_names:
                raise ValueError("cannot merge datasets with different variables")
            out._records.extend(ds._records)
        return out
