"""Per-application model fitness — the heuristic's inner loop (§3.3).

For every application s in the profiled set S:

1. split s's profiles into training T_s and validation V_s;
2. fit the candidate model on ``{P_-s, T_s} x w`` — all other applications'
   profiles plus s's training profiles weighted by w;
3. the software fitness f_s is the model's accuracy on V_s.

Model fitness f_m is the average of f_s over applications.  We measure
accuracy as median absolute percentage error, so *lower is better*
throughout; the paper's convergence plot (Figure 5) reports the *sum* of
per-application median errors, which :func:`evaluate_spec` also returns.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.dataset import ProfileDataset
from repro.core.design import ModelSpec
from repro.core.metrics import median_error
from repro.core.model import InferredModel

#: Per-application (train_indices, val_indices) pairs of *global* dataset
#: row indices, as produced by :func:`derive_app_splits`.
AppSplits = Mapping[str, Tuple[np.ndarray, np.ndarray]]

#: Weight applied to the evaluated application's own training profiles.
DEFAULT_TRAINING_WEIGHT = 2.0

#: Fraction of an application's profiles used for training (rest validates).
DEFAULT_TRAIN_FRACTION = 0.7

#: Fitness assigned to models that fail to fit (degenerate specs).
FAILED_FITNESS = 10.0


@dataclasses.dataclass(frozen=True)
class FitnessResult:
    """Outcome of evaluating one candidate model specification."""

    mean_error: float                      # f_m (lower is better)
    sum_error: float                       # Figure 5's metric
    per_application: Dict[str, float]      # f_s per application

    @property
    def fitness(self) -> float:
        return self.mean_error


def derive_app_splits(
    dataset: ProfileDataset,
    seed: int,
    train_fraction: float = DEFAULT_TRAIN_FRACTION,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Fix each application's train/validation split once per search.

    Returns per-application ``(train_indices, val_indices)`` arrays of
    *global* row indices into ``dataset``.  Each application's permutation
    is seeded by ``(seed, hash(application name))``, so its split is
    independent of application order and of which other applications exist
    — and, crucially, identical for every specification scored during a
    search.  That determinism is what makes fitness memoization sound: two
    evaluations of the same spec see the same splits and therefore the
    same fitness.

    Applications too small to split (fewer than 2 records) get an empty
    validation side, which scorers report as :data:`FAILED_FITNESS`.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    # Group by the row-label vector rather than the record objects, so any
    # dataset view exposing ``labels()`` — including the engine's
    # store-backed :class:`repro.core.engine.StoredDataset` — derives the
    # identical splits.
    groups: Dict[str, list] = {}
    for i, label in enumerate(dataset.labels()):
        groups.setdefault(str(label), []).append(i)
    splits: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for app, group in groups.items():
        indices = np.array(group, dtype=int)
        digest = hashlib.sha256(app.encode()).digest()
        app_entropy = int.from_bytes(digest[:8], "little")
        rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), app_entropy])
        )
        perm = rng.permutation(len(indices))
        cut = int(round(train_fraction * len(indices)))
        train = np.sort(indices[perm[:cut]])
        val = np.sort(indices[perm[cut:]])
        splits[app] = (train, val)
    return splits


def evaluate_spec(
    spec: ModelSpec,
    dataset: ProfileDataset,
    rng: np.random.Generator,
    weight: float = DEFAULT_TRAINING_WEIGHT,
    train_fraction: float = DEFAULT_TRAIN_FRACTION,
    splits: Optional[AppSplits] = None,
) -> FitnessResult:
    """Evaluate a candidate specification with the paper's inner loop.

    With ``splits`` (from :func:`derive_app_splits`) the per-application
    train/validation partitions are taken as given and ``rng`` is not
    consumed; without it, each application is split with fresh ``rng``
    draws (the historical behaviour).
    """
    applications = dataset.applications
    if not applications:
        raise ValueError("dataset has no applications")
    groups = dataset.by_application()

    per_app: Dict[str, float] = {}
    for app in applications:
        others = dataset.without_application(app)
        if splits is not None:
            train_idx, val_idx = splits[app]
            train_own = dataset.subset([int(i) for i in train_idx])
            val_own = dataset.subset([int(i) for i in val_idx])
        else:
            own = groups[app]
            if len(own) < 2:
                per_app[app] = FAILED_FITNESS
                continue
            train_own, val_own = own.split(train_fraction, rng, stratify=False)
        per_app[app] = _fit_and_score(spec, others, train_own, val_own, weight)
    errors = np.array(list(per_app.values()))
    return FitnessResult(
        mean_error=float(errors.mean()),
        sum_error=float(errors.sum()),
        per_application=per_app,
    )


def _fit_and_score(
    spec: ModelSpec,
    others: ProfileDataset,
    train_own: ProfileDataset,
    val_own: ProfileDataset,
    weight: float,
) -> float:
    """Fit on {P_-s, T_s} x w, score on V_s."""
    if len(val_own) == 0 or len(train_own) == 0:
        return FAILED_FITNESS
    combined = ProfileDataset.merge([others, train_own])
    weights = np.concatenate(
        [np.ones(len(others)), np.full(len(train_own), weight)]
    )
    try:
        model = InferredModel.fit(spec, combined, weights=weights)
        predictions = model.predict(val_own)
    except (ValueError, np.linalg.LinAlgError):
        return FAILED_FITNESS
    targets = val_own.targets()
    if not np.isfinite(predictions).all():
        return FAILED_FITNESS
    return min(median_error(predictions, targets), FAILED_FITNESS)
