"""Per-application model fitness — the heuristic's inner loop (§3.3).

For every application s in the profiled set S:

1. split s's profiles into training T_s and validation V_s;
2. fit the candidate model on ``{P_-s, T_s} x w`` — all other applications'
   profiles plus s's training profiles weighted by w;
3. the software fitness f_s is the model's accuracy on V_s.

Model fitness f_m is the average of f_s over applications.  We measure
accuracy as median absolute percentage error, so *lower is better*
throughout; the paper's convergence plot (Figure 5) reports the *sum* of
per-application median errors, which :func:`evaluate_spec` also returns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.core.dataset import ProfileDataset
from repro.core.design import ModelSpec
from repro.core.metrics import median_error
from repro.core.model import InferredModel

#: Weight applied to the evaluated application's own training profiles.
DEFAULT_TRAINING_WEIGHT = 2.0

#: Fraction of an application's profiles used for training (rest validates).
DEFAULT_TRAIN_FRACTION = 0.7

#: Fitness assigned to models that fail to fit (degenerate specs).
FAILED_FITNESS = 10.0


@dataclasses.dataclass(frozen=True)
class FitnessResult:
    """Outcome of evaluating one candidate model specification."""

    mean_error: float                      # f_m (lower is better)
    sum_error: float                       # Figure 5's metric
    per_application: Dict[str, float]      # f_s per application

    @property
    def fitness(self) -> float:
        return self.mean_error


def evaluate_spec(
    spec: ModelSpec,
    dataset: ProfileDataset,
    rng: np.random.Generator,
    weight: float = DEFAULT_TRAINING_WEIGHT,
    train_fraction: float = DEFAULT_TRAIN_FRACTION,
) -> FitnessResult:
    """Evaluate a candidate specification with the paper's inner loop."""
    applications = dataset.applications
    if not applications:
        raise ValueError("dataset has no applications")
    groups = dataset.by_application()

    per_app: Dict[str, float] = {}
    for app in applications:
        own = groups[app]
        others = dataset.without_application(app)
        error = _fit_and_score(spec, others, own, rng, weight, train_fraction)
        per_app[app] = error
    errors = np.array(list(per_app.values()))
    return FitnessResult(
        mean_error=float(errors.mean()),
        sum_error=float(errors.sum()),
        per_application=per_app,
    )


def _fit_and_score(
    spec: ModelSpec,
    others: ProfileDataset,
    own: ProfileDataset,
    rng: np.random.Generator,
    weight: float,
    train_fraction: float,
) -> float:
    """Fit on {P_-s, T_s} x w, score on V_s."""
    if len(own) < 2:
        return FAILED_FITNESS
    train_own, val_own = own.split(train_fraction, rng, stratify=False)
    if len(val_own) == 0 or len(train_own) == 0:
        return FAILED_FITNESS
    combined = ProfileDataset.merge([others, train_own])
    weights = np.concatenate(
        [np.ones(len(others)), np.full(len(train_own), weight)]
    )
    try:
        model = InferredModel.fit(spec, combined, weights=weights)
        predictions = model.predict(val_own)
    except (ValueError, np.linalg.LinAlgError):
        return FAILED_FITNESS
    targets = val_own.targets()
    if not np.isfinite(predictions).all():
        return FAILED_FITNESS
    return min(median_error(predictions, targets), FAILED_FITNESS)
