"""Integrated hardware-software performance modeling — the paper's core.

Public API:

* data containers: :class:`ProfileRecord`, :class:`ProfileDataset`
* specifications: :class:`ModelSpec`, :class:`TransformKind`
* fitting: :class:`InferredModel`, :func:`fit_ols`
* automated search: :class:`GeneticSearch`, :class:`Chromosome`
* system dynamics: :class:`ModelManager`
* baselines: :func:`stepwise_search`, :func:`manual_general_spec`
* metrics: :func:`median_error`, :func:`pearson_correlation`,
  :class:`BoxplotStats`
"""

from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.transforms import (
    TransformKind,
    FittedTransform,
    fit_transform,
    stabilize,
    choose_ladder_power,
    skewness,
    spline_knots,
    truncated_power_basis,
    polynomial_basis,
)
from repro.core.design import ModelSpec, DesignMatrixBuilder, normalize_interaction
from repro.core.collinearity import (
    prune_correlated,
    prune_rank_deficient,
    prune_design,
    variance_inflation_factors,
)
from repro.core.regression import (
    LinearFit,
    accumulate_gram,
    fit_ols,
    r_squared,
    solve_gram,
)
from repro.core.metrics import (
    BoxplotStats,
    absolute_percentage_errors,
    median_error,
    pearson_correlation,
    spearman_correlation,
)
from repro.core.model import InferredModel
from repro.core.chromosome import Chromosome, chromosome_from_spec
from repro.core.fitness import FitnessResult, derive_app_splits, evaluate_spec
from repro.core.engine import ColumnStore, FitnessEngine
from repro.core.genetic import GeneticSearch, SearchResult, GenerationRecord
from repro.core.transfer import (
    TransferOutcome,
    TransferTrial,
    generations_to_target,
    shared_representation_score,
    transfer_search,
    warm_start_population,
)
from repro.core.updater import ModelManager, ObservationOutcome
from repro.core.stepwise import stepwise_search
from repro.core.manual import manual_general_spec
from repro.core.significance import (
    SignificanceReport,
    inclusion_frequency,
    interaction_matrix,
    modal_transforms,
    table3_rows,
    transform_histogram,
)
from repro.core.serialize import (
    SCHEMA_VERSION,
    ModelFormatError,
    load_model,
    model_from_dict,
    model_to_dict,
    payload_checksum,
    save_model,
)

__all__ = [
    "ProfileDataset",
    "ProfileRecord",
    "TransformKind",
    "FittedTransform",
    "fit_transform",
    "stabilize",
    "choose_ladder_power",
    "skewness",
    "spline_knots",
    "truncated_power_basis",
    "polynomial_basis",
    "ModelSpec",
    "DesignMatrixBuilder",
    "normalize_interaction",
    "prune_correlated",
    "prune_rank_deficient",
    "prune_design",
    "variance_inflation_factors",
    "LinearFit",
    "accumulate_gram",
    "fit_ols",
    "r_squared",
    "solve_gram",
    "BoxplotStats",
    "absolute_percentage_errors",
    "median_error",
    "pearson_correlation",
    "spearman_correlation",
    "InferredModel",
    "Chromosome",
    "chromosome_from_spec",
    "FitnessResult",
    "derive_app_splits",
    "evaluate_spec",
    "ColumnStore",
    "FitnessEngine",
    "GeneticSearch",
    "SearchResult",
    "GenerationRecord",
    "TransferOutcome",
    "TransferTrial",
    "generations_to_target",
    "shared_representation_score",
    "transfer_search",
    "warm_start_population",
    "ModelManager",
    "ObservationOutcome",
    "stepwise_search",
    "manual_general_spec",
    "SignificanceReport",
    "inclusion_frequency",
    "interaction_matrix",
    "modal_transforms",
    "table3_rows",
    "transform_histogram",
    "SCHEMA_VERSION",
    "ModelFormatError",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "payload_checksum",
    "save_model",
]
