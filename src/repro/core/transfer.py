"""Cross-backend model transfer: warm-started search + shared specs.

The repo now carries two timing backends over the same trace substrate
(the OoO CPU interval model and the GPU warp-throughput model), which
poses the cross-machine question of Stevens & Klöckner (arXiv:1904.09538)
and Li et al.'s generalizable-representation direction: how much of a
model *specification* searched against machine A carries over to
machine B?

Two transfer mechanisms, both built from existing primitives:

1. **Warm-started search** — seed backend B's genetic search with the
   final population evolved on backend A
   (:meth:`~repro.core.genetic.GeneticSearch.run`'s
   ``initial_population`` hook) and measure *generations-to-target*: how
   many generations each arm needs to reach the cold arm's final best
   fitness.  If specifications transfer, the warm arm starts near the
   target and wins.
2. **Shared-representation prediction** — refit the *specification*
   (variables, transforms, interactions) searched on backend A against
   backend B's data.  The coefficients are machine-specific; the
   representation is shared.  Its validation score against a natively
   searched spec measures how machine-portable the representation is.

Both datasets must share variable names (the GPU space deliberately
reuses ``y1..y13``), which :func:`transfer_search` validates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro import obs
from repro.core.chromosome import Chromosome
from repro.core.dataset import ProfileDataset
from repro.core.genetic import GenerationRecord, GeneticSearch, SearchResult
from repro.core.model import InferredModel


def warm_start_population(
    source: SearchResult, n: Optional[int] = None
) -> List[Chromosome]:
    """The seeding population for a warm-started search on another backend.

    Best-first, so that even when the target search's population is
    smaller than the source's, the fittest source specifications survive
    the truncation in :meth:`GeneticSearch.run`.
    """
    ranked = [chromosome for chromosome, _ in source.ranked()]
    return ranked[: n if n is not None else len(ranked)]


def generations_to_target(
    history: List[GenerationRecord], target: float
) -> int:
    """First generation whose best fitness reached ``target`` (lower is
    better).  ``len(history) + 1`` when the target was never reached."""
    for record in history:
        if record.best_fitness <= target * (1.0 + 1e-12):
            return record.generation
    return len(history) + 1


@dataclasses.dataclass(frozen=True)
class TransferTrial:
    """One paired cold-vs-warm search at a single RNG seed."""

    seed: int
    target_fitness: float        # this trial's cold arm's final best
    cold_generations: int
    warm_generations: int
    cold_final: float
    warm_final: float


@dataclasses.dataclass
class TransferOutcome:
    """Result of one cross-backend transfer study.

    ``cold_generations`` / ``warm_generations`` are *totals* over the
    paired trials, which is what the demo check and the benchmark gate
    compare — aggregating over seeds keeps the gate out of single-seed
    lottery territory.
    """

    source_backend: str
    target_backend: str
    target_fitness: float        # first trial's target, for display
    cold: SearchResult           # first trial's arms, for spec scoring
    warm: SearchResult
    cold_generations: int
    warm_generations: int
    shared_spec_score: Dict[str, float]   # source spec refit on target data
    native_spec_score: Dict[str, float]   # target-searched spec, same data
    trials: List[TransferTrial] = dataclasses.field(default_factory=list)

    @property
    def generations_saved(self) -> int:
        return self.cold_generations - self.warm_generations

    @property
    def speedup(self) -> float:
        """Generations-to-target ratio, cold over warm (higher is better)."""
        return self.cold_generations / max(1, self.warm_generations)


def shared_representation_score(
    source: SearchResult,
    target_train: ProfileDataset,
    target_val: ProfileDataset,
) -> Dict[str, float]:
    """Refit the source-searched specification on the target backend.

    Returns the refit model's validation ``{"median_error",
    "correlation"}`` on the target backend — coefficients are relearned,
    the representation (variables, transforms, interactions) is
    transferred verbatim.
    """
    spec = source.best_chromosome.to_spec(target_train.variable_names)
    model = InferredModel.fit(spec, target_train)
    return model.score(target_val)


def transfer_search(
    source: SearchResult,
    target_train: ProfileDataset,
    target_val: ProfileDataset,
    *,
    source_backend: str = "cpu",
    target_backend: str = "gpu",
    population_size: int = 20,
    generations: int = 8,
    seed: int = 7,
    pairs: int = 3,
) -> TransferOutcome:
    """Run the cold-vs-warm transfer comparison on the target backend.

    ``pairs`` paired trials run at seeds ``seed .. seed + pairs - 1``.
    Within a pair both arms use identical search hyperparameters and RNG
    seed; the only difference is the warm arm's initial population
    (:func:`warm_start_population` of the source search).  Each trial's
    target fitness is its cold arm's final best, so the cold arm reaches
    it by construction and the comparison is purely *when* each arm gets
    there; the outcome totals generations-to-target over all trials.
    """
    if source.best_chromosome.n_variables != len(target_train.variable_names):
        raise ValueError(
            f"source chromosomes encode "
            f"{source.best_chromosome.n_variables} variables but the target "
            f"dataset has {len(target_train.variable_names)}; transfer "
            f"requires shape-compatible spaces"
        )
    if pairs < 1:
        raise ValueError("transfer needs at least one paired trial")
    seeding = warm_start_population(source, population_size)
    trials: List[TransferTrial] = []
    first_cold = first_warm = None
    with obs.span("transfer.search"):
        for trial_seed in range(seed, seed + pairs):
            cold = GeneticSearch(
                population_size=population_size, seed=trial_seed
            ).run(target_train, generations)
            warm = GeneticSearch(
                population_size=population_size, seed=trial_seed
            ).run(target_train, generations, initial_population=seeding)
            target = cold.best_fitness.fitness
            trials.append(
                TransferTrial(
                    seed=trial_seed,
                    target_fitness=target,
                    cold_generations=generations_to_target(
                        cold.history, target
                    ),
                    warm_generations=generations_to_target(
                        warm.history, target
                    ),
                    cold_final=cold.best_fitness.fitness,
                    warm_final=warm.best_fitness.fitness,
                )
            )
            if first_cold is None:
                first_cold, first_warm = cold, warm
    outcome = TransferOutcome(
        source_backend=source_backend,
        target_backend=target_backend,
        target_fitness=trials[0].target_fitness,
        cold=first_cold,
        warm=first_warm,
        cold_generations=sum(t.cold_generations for t in trials),
        warm_generations=sum(t.warm_generations for t in trials),
        shared_spec_score=shared_representation_score(
            source, target_train, target_val
        ),
        native_spec_score=first_cold.best_model(target_train).score(
            target_val
        ),
        trials=trials,
    )
    obs.gauge("transfer.generations_saved").set(outcome.generations_saved)
    obs.counter("transfer.searches").inc()
    return outcome
