"""Inductive system-model management (§3.2-§3.3).

:class:`ModelManager` maintains the steady-state model M over spaces H and
S, and handles perturbations:

1. A new application +s arrives with at least one profile.  The manager
   *checks* the existing model: is prediction error for +s competitive with
   the steady-state error for applications in S?
2. If yes, the new application shares behavior with observed software and
   the model is kept (the profile is still absorbed into S).
3. If not, the error may still be an outlier, so the manager requests more
   profiles (10-20 additional points suffice in practice) before deciding.
4. Once enough evidence accrues, the manager *updates*: the new profiles
   join S and the genetic heuristic re-specifies and refits the model with
   the new application's profiles weighted up.

The profile-accrual threshold also implements the paper's *hysteresis*:
systems that profile periodically and selectively only trigger updates
after sufficient data accumulates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.fitness import DEFAULT_TRAINING_WEIGHT
from repro.core.genetic import GeneticSearch, SearchResult
from repro.core.metrics import median_error
from repro.core.model import InferredModel

#: Additional profiles required before an update may trigger (§3.3:
#: "10-20 additional data points are sufficient").
DEFAULT_MIN_UPDATE_PROFILES = 10

#: A new application is "poorly served" when its median error exceeds this
#: multiple of the steady-state error.
DEFAULT_ERROR_TOLERANCE = 1.5


@dataclasses.dataclass
class ObservationOutcome:
    """Result of checking a new application against the current model."""

    application: str
    median_error: float
    steady_state_error: float
    accurate: bool
    n_profiles: int
    update_triggered: bool


class ModelManager:
    """Owns the dataset, the model, and the update policy."""

    def __init__(
        self,
        dataset: ProfileDataset,
        search: Optional[GeneticSearch] = None,
        generations: int = 10,
        update_generations: int = 5,
        min_update_profiles: int = DEFAULT_MIN_UPDATE_PROFILES,
        error_tolerance: float = DEFAULT_ERROR_TOLERANCE,
        training_weight: float = DEFAULT_TRAINING_WEIGHT,
    ):
        if len(dataset) == 0:
            raise ValueError("boot-strap the manager with a non-empty dataset")
        self.dataset = dataset
        self.search = search or GeneticSearch()
        self.generations = generations
        self.update_generations = update_generations
        self.min_update_profiles = min_update_profiles
        self.error_tolerance = error_tolerance
        self.training_weight = training_weight

        self.model: Optional[InferredModel] = None
        self.steady_state_error: float = np.inf
        self._pending: Dict[str, List[ProfileRecord]] = {}
        self._last_result: Optional[SearchResult] = None

    # -- bootstrap -----------------------------------------------------------------

    def train(self) -> InferredModel:
        """Boot-strap: run the genetic search and fit the steady-state model.

        "In practice, this hypothesis holds because models can be
        boot-strapped with data from benchmark suites" (§3.2).
        """
        result = self.search.run(self.dataset, self.generations)
        self._last_result = result
        self.model = result.best_model(self.dataset)
        self.steady_state_error = result.best_fitness.mean_error
        return self.model

    # -- perturbation handling --------------------------------------------------------

    def observe(
        self, profiles: Sequence[ProfileRecord], auto_update: bool = True
    ) -> ObservationOutcome:
        """Absorb profiles of one (possibly new) application.

        Checks model accuracy on the profiles, queues them, and — once the
        application is inaccurate *and* enough profiles accrued — triggers
        a model update.
        """
        self._require_trained()
        if not profiles:
            raise ValueError("observe() needs at least one profile")
        apps = {p.application for p in profiles}
        if len(apps) != 1:
            raise ValueError(f"one application per observation, got {sorted(apps)}")
        application = profiles[0].application

        pending = self._pending.setdefault(application, [])
        pending.extend(profiles)

        probe = ProfileDataset(self.dataset.x_names, self.dataset.y_names, pending)
        predictions = self.model.predict(probe)
        error = median_error(predictions, probe.targets())
        accurate = error <= self.error_tolerance * self.steady_state_error

        update_triggered = False
        if accurate:
            # Shares behavior with observed software: absorb silently.
            self._absorb(application)
        elif len(pending) >= self.min_update_profiles and auto_update:
            self._absorb(application)
            self.update()
            update_triggered = True

        return ObservationOutcome(
            application=application,
            median_error=error,
            steady_state_error=self.steady_state_error,
            accurate=accurate,
            n_profiles=len(pending),
            update_triggered=update_triggered,
        )

    def update(self) -> InferredModel:
        """Re-specify and refit the model over the current dataset (§3.3)."""
        self._require_trained()
        result = self.search.update(self.dataset, self.update_generations)
        self._last_result = result
        spec = result.best_chromosome.to_spec(self.dataset.variable_names)
        self.model = InferredModel.fit(spec, self.dataset)
        self.steady_state_error = result.best_fitness.mean_error
        return self.model

    # -- helpers --------------------------------------------------------------------

    @property
    def last_search_result(self) -> Optional[SearchResult]:
        """The most recent GA result (train or update); seeds streaming state."""
        return self._last_result

    def pending_profiles(self, application: str) -> int:
        return len(self._pending.get(application, []))

    @property
    def pending_applications(self) -> tuple:
        """Applications with queued-but-unabsorbed profiles."""
        return tuple(self._pending)

    def needs_update(self, outcome: ObservationOutcome) -> bool:
        """Would this observation trigger a re-specification?

        The decision :meth:`observe` takes when ``auto_update=True``,
        exposed separately so serving layers can run :meth:`observe` with
        ``auto_update=False`` on the request path and defer the expensive
        genetic update to a background worker.
        """
        return (
            not outcome.accurate
            and outcome.n_profiles >= self.min_update_profiles
        )

    def absorb(self, application: str) -> None:
        """Move an application's pending profiles into the training set.

        Public counterpart of the internal absorption step: callers that
        deferred an update (``observe(..., auto_update=False)``) absorb the
        queued evidence themselves immediately before :meth:`update`.
        """
        self._absorb(application)

    def _absorb(self, application: str) -> None:
        for record in self._pending.pop(application, []):
            self.dataset.add(record)

    def _require_trained(self) -> None:
        if self.model is None:
            raise RuntimeError("call train() before observing profiles")
