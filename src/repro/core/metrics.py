"""Accuracy metrics matching the paper's evaluation (§4.3).

Two views of accuracy:

* **error distributions** — absolute percentage errors summarized by
  boxplot statistics (median and quartiles), as in Figures 7, 10, 14;
* **correlation** — Pearson/Spearman correlation between predicted and true
  performance, "a better measure of accuracy in the context of
  optimization" (Figure 8).
"""

from __future__ import annotations

import dataclasses

import numpy as np


def absolute_percentage_errors(
    predictions: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """|pred - true| / |true|, elementwise (fractions, not percent)."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    denom = np.abs(targets)
    if (denom < 1e-30).any():
        raise ValueError("targets must be non-zero for percentage errors")
    return np.abs(predictions - targets) / denom


def median_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Median absolute percentage error (fraction)."""
    return float(np.median(absolute_percentage_errors(predictions, targets)))


@dataclasses.dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary of an error distribution (fractions)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n: int

    @staticmethod
    def from_errors(errors: np.ndarray) -> "BoxplotStats":
        errors = np.asarray(errors, dtype=float)
        if len(errors) == 0:
            raise ValueError("cannot summarize an empty error sample")
        q1, med, q3 = np.percentile(errors, [25, 50, 75])
        return BoxplotStats(
            minimum=float(errors.min()),
            q1=float(q1),
            median=float(med),
            q3=float(q3),
            maximum=float(errors.max()),
            n=len(errors),
        )

    def row(self, label: str) -> str:
        """One formatted table row (percentages), for benchmark reports."""
        return (
            f"{label:<18s} n={self.n:<5d} "
            f"min={self.minimum:6.1%}  q1={self.q1:6.1%}  "
            f"median={self.median:6.1%}  q3={self.q3:6.1%}  max={self.maximum:6.1%}"
        )


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient; 0 for degenerate inputs."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("inputs must have the same shape")
    if len(a) < 2 or a.std() < 1e-30 or b.std() < 1e-30:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def spearman_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (ties broken by average rank)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return pearson_correlation(_average_ranks(a), _average_ranks(b))


def _average_ranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(len(values), dtype=float)
    # Average tied groups.
    sorted_vals = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j) / 2.0
        i = j + 1
    return ranks
