"""Genetic search for model specifications (§3.4, and the §3.3 pseudo-code).

The outer loops of the paper's heuristic: a population of chromosomes
evolves for G generations.  Each generation,

* every model's fitness is evaluated by the per-application inner loop
  (:mod:`repro.core.fitness`), which is embarrassingly parallel and can be
  distributed over worker processes (the paper parallelizes with R's doMC);
* the best N% propagate unchanged (elitism);
* the remainder is produced from tournament-selected parents by crossovers
  C1/C2/C3 (12.5% each) and mutations M1/M2 (5% each) — the paper's
  experimentally effective rates — with at least one operator guaranteed
  per offspring so the non-elite fraction is genuinely new material.

Because the heuristic "accommodates new data by updating the model
specification and fitting new regression coefficients", the search can be
*resumed* from a previous population when profiles accrue
(:meth:`GeneticSearch.update`), which is how §3.3 model updates are
realized.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chromosome import (
    Chromosome,
    crossover_create_interaction,
    crossover_interaction,
    crossover_variable,
    mutate_interaction,
    mutate_variable,
)
from repro.core.dataset import ProfileDataset
from repro.core.fitness import FitnessResult, evaluate_spec
from repro.core.model import InferredModel
from repro.parallel import parallel_starmap, resolve_workers

CROSSOVER_RATE = 0.125   # per crossover operator (C1, C2, C3)
MUTATION_RATE = 0.05     # per mutation operator (M1, M2)
DEFAULT_POPULATION = 50
DEFAULT_GENERATIONS = 20
DEFAULT_ELITE_FRACTION = 0.25


@dataclasses.dataclass
class GenerationRecord:
    """Progress snapshot after one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    best_sum_error: float


@dataclasses.dataclass
class SearchResult:
    """Outcome of a genetic search."""

    best_chromosome: Chromosome
    best_fitness: FitnessResult
    population: List[Chromosome]
    fitnesses: List[FitnessResult]
    history: List[GenerationRecord]

    def best_model(self, dataset: ProfileDataset) -> InferredModel:
        """Fit the winning specification on the full dataset."""
        spec = self.best_chromosome.to_spec(dataset.variable_names)
        return InferredModel.fit(spec, dataset)

    def ranked(self) -> List[Tuple[Chromosome, FitnessResult]]:
        """(chromosome, fitness) pairs, best first."""
        order = np.argsort([f.fitness for f in self.fitnesses])
        return [(self.population[i], self.fitnesses[i]) for i in order]


class GeneticSearch:
    """Evolves model specifications against a profile dataset.

    Parameters
    ----------
    population_size:
        Number of candidate models per generation (the paper examines "the
        50 best models", so the default population is 50).
    elite_fraction:
        Fraction N% of each generation that survives unchanged.
    evaluator:
        Fitness function ``(spec, dataset, rng) -> FitnessResult``;
        defaults to the paper's per-application inner loop.
    n_workers:
        If > 1, candidate models of a generation are evaluated in a process
        pool (the inner loop is embarrassingly parallel, §4.2).  ``None``
        (the default) resolves from ``$REPRO_WORKERS`` via
        :func:`repro.parallel.resolve_workers`.  Every candidate is scored
        with its own deterministically derived seed, so the search result
        is identical at any worker count.
    """

    def __init__(
        self,
        population_size: int = DEFAULT_POPULATION,
        elite_fraction: float = DEFAULT_ELITE_FRACTION,
        evaluator: Optional[Callable] = None,
        n_workers: Optional[int] = None,
        seed: int = 0,
    ):
        if population_size < 4:
            raise ValueError("population must have at least 4 models")
        if not 0.0 < elite_fraction < 1.0:
            raise ValueError("elite_fraction must be in (0, 1)")
        self.population_size = population_size
        self.elite_fraction = elite_fraction
        self.evaluator = evaluator or evaluate_spec
        self.n_workers = resolve_workers(n_workers)
        self.rng = np.random.default_rng(seed)
        self._population: List[Chromosome] = []
        self._split_seed = seed

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        dataset: ProfileDataset,
        generations: int = DEFAULT_GENERATIONS,
        initial_population: Optional[Sequence[Chromosome]] = None,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> SearchResult:
        """Evolve for ``generations`` and return the final population."""
        names = dataset.variable_names
        n_vars = len(names)
        self._split_seed = int(self.rng.integers(0, 2**31))
        if initial_population is not None:
            population = list(initial_population)
            population += [
                Chromosome.random(n_vars, self.rng)
                for _ in range(self.population_size - len(population))
            ]
            population = population[: self.population_size]
        else:
            population = [
                Chromosome.random(n_vars, self.rng)
                for _ in range(self.population_size)
            ]

        history: List[GenerationRecord] = []
        fitnesses = self._evaluate_population(population, dataset, names)
        for generation in range(1, generations + 1):
            order = np.argsort([f.fitness for f in fitnesses])
            population = [population[i] for i in order]
            fitnesses = [fitnesses[i] for i in order]
            record = GenerationRecord(
                generation=generation,
                best_fitness=fitnesses[0].fitness,
                mean_fitness=float(np.mean([f.fitness for f in fitnesses])),
                best_sum_error=fitnesses[0].sum_error,
            )
            history.append(record)
            if progress is not None:
                progress(record)
            if generation == generations:
                break
            population = self._next_generation(population)
            fitnesses = self._evaluate_population(population, dataset, names)

        order = np.argsort([f.fitness for f in fitnesses])
        population = [population[i] for i in order]
        fitnesses = [fitnesses[i] for i in order]
        self._population = population
        return SearchResult(
            best_chromosome=population[0],
            best_fitness=fitnesses[0],
            population=population,
            fitnesses=fitnesses,
            history=history,
        )

    def update(
        self,
        dataset: ProfileDataset,
        generations: int = 5,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> SearchResult:
        """Resume the search on an updated dataset (§3.3 model updates).

        Warm-starts from the last population, so a handful of generations
        re-specializes the model to newly profiled software.
        """
        if not self._population:
            return self.run(dataset, generations, progress=progress)
        return self.run(
            dataset,
            generations,
            initial_population=self._population,
            progress=progress,
        )

    # -- internals -----------------------------------------------------------------

    def _evaluate_population(
        self,
        population: List[Chromosome],
        dataset: ProfileDataset,
        names: Tuple[str, ...],
    ) -> List[FitnessResult]:
        # Common random numbers: every candidate (in every generation of a
        # run) is scored on the *same* train/validation splits, so fitness
        # differences reflect the specifications rather than split luck and
        # elite fitness is stable across generations.  Validation in the
        # experiments is always against independently sampled profiles.
        jobs = [
            (self.evaluator, c.to_spec(names), dataset, self._split_seed)
            for c in population
        ]
        return parallel_starmap(_evaluate_job, jobs, n_workers=self.n_workers)

    def _next_generation(self, ranked: List[Chromosome]) -> List[Chromosome]:
        """Elites survive; the rest are crossover/mutation offspring.

        Parents are drawn from the whole ranked population by binary
        tournament (better of two uniform picks), which keeps selection
        pressure without collapsing the population onto the elites —
        preserving the interaction diversity the paper observes in its
        best models (Figure 4).  Every offspring is guaranteed at least
        one operator application so the non-elite fraction is genuinely
        "populated with crossovers, mutations" (§3.3 pseudo-code).
        """
        n_elite = max(2, int(round(self.elite_fraction * self.population_size)))
        children: List[Chromosome] = list(ranked[:n_elite])
        rng = self.rng

        def tournament() -> Chromosome:
            i, j = rng.integers(0, len(ranked), size=2)
            return ranked[int(min(i, j))]  # ranked is sorted best-first

        operators = [
            lambda a, b: crossover_variable(a, b, rng),
            lambda a, b: crossover_interaction(a, b, rng),
            lambda a, b: crossover_create_interaction(a, b, rng),
            lambda a, b: (mutate_interaction(a, rng), b),
            lambda a, b: (mutate_variable(a, rng), b),
        ]
        while len(children) < self.population_size:
            a, b = tournament(), tournament()
            applied = False
            if rng.random() < CROSSOVER_RATE:
                a, b = crossover_variable(a, b, rng)
                applied = True
            if rng.random() < CROSSOVER_RATE:
                a, b = crossover_interaction(a, b, rng)
                applied = True
            if rng.random() < CROSSOVER_RATE:
                a, b = crossover_create_interaction(a, b, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                a = mutate_interaction(a, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                a = mutate_variable(a, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                b = mutate_interaction(b, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                b = mutate_variable(b, rng)
                applied = True
            if not applied:
                a, b = operators[int(rng.integers(0, len(operators)))](a, b)
            children.append(a)
            if len(children) < self.population_size:
                children.append(b)
        return children


def _evaluate_job(evaluator, spec, dataset, seed) -> FitnessResult:
    """Top-level evaluation shim (picklable for multiprocessing)."""
    return evaluator(spec, dataset, np.random.default_rng(seed))
