"""Genetic search for model specifications (§3.4, and the §3.3 pseudo-code).

The outer loops of the paper's heuristic: a population of chromosomes
evolves for G generations.  Each generation,

* every model's fitness is evaluated by the per-application inner loop
  (:mod:`repro.core.fitness`), which is embarrassingly parallel and can be
  distributed over worker processes (the paper parallelizes with R's doMC);
* the best N% propagate unchanged (elitism);
* the remainder is produced from tournament-selected parents by crossovers
  C1/C2/C3 (12.5% each) and mutations M1/M2 (5% each) — the paper's
  experimentally effective rates — with at least one operator guaranteed
  per offspring so the non-elite fraction is genuinely new material.

Because the heuristic "accommodates new data by updating the model
specification and fitting new regression coefficients", the search can be
*resumed* from a previous population when profiles accrue
(:meth:`GeneticSearch.update`), which is how §3.3 model updates are
realized.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.chromosome import (
    Chromosome,
    crossover_create_interaction,
    crossover_interaction,
    crossover_variable,
    mutate_interaction,
    mutate_variable,
)
from repro.core.dataset import ProfileDataset
from repro.core.engine import FitnessEngine, evaluate_chunk, publish_dataset
from repro.core.fitness import FitnessResult, derive_app_splits
from repro.core.model import InferredModel
from repro.parallel import parallel_starmap, resolve_workers

CROSSOVER_RATE = 0.125   # per crossover operator (C1, C2, C3)
MUTATION_RATE = 0.05     # per mutation operator (M1, M2)
DEFAULT_POPULATION = 50
DEFAULT_GENERATIONS = 20
DEFAULT_ELITE_FRACTION = 0.25


@dataclasses.dataclass
class GenerationRecord:
    """Progress snapshot after one generation."""

    generation: int
    best_fitness: float
    mean_fitness: float
    best_sum_error: float


@dataclasses.dataclass
class SearchResult:
    """Outcome of a genetic search."""

    best_chromosome: Chromosome
    best_fitness: FitnessResult
    population: List[Chromosome]
    fitnesses: List[FitnessResult]
    history: List[GenerationRecord]

    def best_model(self, dataset: ProfileDataset) -> InferredModel:
        """Fit the winning specification on the full dataset."""
        spec = self.best_chromosome.to_spec(dataset.variable_names)
        return InferredModel.fit(spec, dataset)

    def ranked(self) -> List[Tuple[Chromosome, FitnessResult]]:
        """(chromosome, fitness) pairs, best first."""
        order = np.argsort([f.fitness for f in self.fitnesses])
        return [(self.population[i], self.fitnesses[i]) for i in order]


class GeneticSearch:
    """Evolves model specifications against a profile dataset.

    Parameters
    ----------
    population_size:
        Number of candidate models per generation (the paper examines "the
        50 best models", so the default population is 50).
    elite_fraction:
        Fraction N% of each generation that survives unchanged.
    evaluator:
        Fitness function ``(spec, dataset, rng) -> FitnessResult``.  When
        ``None`` (the default) candidates are scored by the batched
        :class:`repro.core.engine.FitnessEngine`, with results memoized by
        chromosome for the duration of a search (sound because the
        train/validation splits are fixed per search).  Pass
        :func:`repro.core.fitness.evaluate_spec` explicitly to score with
        the reference per-application inner loop; evaluators accepting a
        ``splits`` keyword receive the search's fixed splits.
    n_workers:
        If > 1, candidate models of a generation are evaluated in a process
        pool (the inner loop is embarrassingly parallel, §4.2).  ``None``
        (the default) resolves from ``$REPRO_WORKERS`` via
        :func:`repro.parallel.resolve_workers`.  Every candidate is scored
        with its own deterministically derived seed, so the search result
        is identical at any worker count.
    """

    def __init__(
        self,
        population_size: int = DEFAULT_POPULATION,
        elite_fraction: float = DEFAULT_ELITE_FRACTION,
        evaluator: Optional[Callable] = None,
        n_workers: Optional[int] = None,
        seed: int = 0,
    ):
        if population_size < 4:
            raise ValueError("population must have at least 4 models")
        if not 0.0 < elite_fraction < 1.0:
            raise ValueError("elite_fraction must be in (0, 1)")
        self.population_size = population_size
        self.elite_fraction = elite_fraction
        self.evaluator = evaluator
        self.n_workers = resolve_workers(n_workers)
        self.rng = np.random.default_rng(seed)
        self._population: List[Chromosome] = []
        self._split_seed = seed
        self._splits = None
        self._engine: Optional[FitnessEngine] = None
        self._published = None
        self._memo: Dict[Chromosome, FitnessResult] = {}
        self.last_eval_stats: Dict[str, float] = {}

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        dataset: ProfileDataset,
        generations: int = DEFAULT_GENERATIONS,
        initial_population: Optional[Sequence[Chromosome]] = None,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> SearchResult:
        """Evolve for ``generations`` and return the final population."""
        with obs.span("ga.run"):
            return self._run(dataset, generations, initial_population, progress)

    def _run(
        self,
        dataset: ProfileDataset,
        generations: int,
        initial_population: Optional[Sequence[Chromosome]],
        progress: Optional[Callable[[GenerationRecord], None]],
    ) -> SearchResult:
        names = dataset.variable_names
        n_vars = len(names)
        # One split seed — and therefore one fixed train/validation split
        # per application — for the whole search.  Fixed splits remove
        # fitness noise between identical specs and make memoization sound.
        self._split_seed = int(self.rng.integers(0, 2**31))
        self._splits = derive_app_splits(dataset, self._split_seed)
        self._engine = None
        self._published = None
        self._memo = {}
        self.last_eval_stats = {
            "candidates_scored": 0,
            "memo_hits": 0,
            "engine_evaluations": 0,
            "gram_fits": 0,
            "lstsq_fallbacks": 0,
            "failed_fits": 0,
            "column_hits": 0,
            "column_builds": 0,
        }
        if initial_population is not None:
            population = list(initial_population)
            population += [
                Chromosome.random(n_vars, self.rng)
                for _ in range(self.population_size - len(population))
            ]
            population = population[: self.population_size]
        else:
            population = [
                Chromosome.random(n_vars, self.rng)
                for _ in range(self.population_size)
            ]

        history: List[GenerationRecord] = []
        fitnesses = self._evaluate_population(population, dataset, names)
        for generation in range(1, generations + 1):
            order = np.argsort([f.fitness for f in fitnesses])
            population = [population[i] for i in order]
            fitnesses = [fitnesses[i] for i in order]
            record = GenerationRecord(
                generation=generation,
                best_fitness=fitnesses[0].fitness,
                mean_fitness=float(np.mean([f.fitness for f in fitnesses])),
                best_sum_error=fitnesses[0].sum_error,
            )
            history.append(record)
            obs.counter("ga.generations").inc()
            obs.gauge("ga.best_fitness").set(record.best_fitness)
            obs.gauge("ga.mean_fitness").set(record.mean_fitness)
            if progress is not None:
                progress(record)
            if generation == generations:
                break
            with obs.span("ga.generation"):
                population = self._next_generation(population)
                fitnesses = self._evaluate_population(population, dataset, names)

        order = np.argsort([f.fitness for f in fitnesses])
        population = [population[i] for i in order]
        fitnesses = [fitnesses[i] for i in order]
        self._population = population
        if self._engine is not None:
            self._merge_stats(self._engine.stats())
        scored = self.last_eval_stats["candidates_scored"]
        hits = self.last_eval_stats["memo_hits"]
        columns = (
            self.last_eval_stats["column_hits"]
            + self.last_eval_stats["column_builds"]
        )
        self.last_eval_stats["memo_hit_rate"] = hits / scored if scored else 0.0
        self.last_eval_stats["column_hit_rate"] = (
            self.last_eval_stats["column_hits"] / columns if columns else 0.0
        )
        return SearchResult(
            best_chromosome=population[0],
            best_fitness=fitnesses[0],
            population=population,
            fitnesses=fitnesses,
            history=history,
        )

    def update(
        self,
        dataset: ProfileDataset,
        generations: int = 5,
        progress: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> SearchResult:
        """Resume the search on an updated dataset (§3.3 model updates).

        Warm-starts from the last population, so a handful of generations
        re-specializes the model to newly profiled software.
        """
        if not self._population:
            return self.run(dataset, generations, progress=progress)
        return self.run(
            dataset,
            generations,
            initial_population=self._population,
            progress=progress,
        )

    # -- internals -----------------------------------------------------------------

    def _evaluate_population(
        self,
        population: List[Chromosome],
        dataset: ProfileDataset,
        names: Tuple[str, ...],
    ) -> List[FitnessResult]:
        # Common random numbers: every candidate (in every generation of a
        # run) is scored on the *same* fixed train/validation splits, so
        # fitness differences reflect the specifications rather than split
        # luck and elite fitness is stable across generations.  Validation
        # in the experiments is always against independently sampled
        # profiles.
        with obs.span("ga.evaluate_population"):
            if self.evaluator is not None:
                return self._evaluate_with_callable(population, dataset, names)
            return self._evaluate_with_engine(population, dataset, names)

    def _evaluate_with_engine(
        self,
        population: List[Chromosome],
        dataset: ProfileDataset,
        names: Tuple[str, ...],
    ) -> List[FitnessResult]:
        """Engine path: memoized, chunk-parallel batched evaluation.

        Identical chromosomes (elites, convergent crossovers, duplicates
        within a generation) are scored once per search; the remainder is
        chunked so each worker builds the engine's column store once per
        chunk rather than once per candidate.
        """
        memo = self._memo
        self.last_eval_stats["candidates_scored"] += len(population)
        pending = [c for c in dict.fromkeys(population) if c not in memo]
        self.last_eval_stats["memo_hits"] += len(population) - len(pending)
        obs.counter("ga.candidates_scored").inc(len(population))
        obs.counter("ga.memo_hits").inc(len(population) - len(pending))
        if pending:
            if self.n_workers <= 1 or len(pending) <= 1:
                if self._engine is None:
                    self._engine = FitnessEngine(dataset, self._split_seed)
                results = self._engine.evaluate_many(
                    [c.to_spec(names) for c in pending]
                )
            else:
                n_chunks = min(self.n_workers, len(pending))
                chunks = [pending[i::n_chunks] for i in range(n_chunks)]
                # Publish the dataset's arrays to the mmap store once per
                # search: each chunk then ships a StoredDataset whose
                # matrix/targets cross the pool boundary as column
                # references, not pickled copies.  With the store disabled
                # this is the dataset itself, exactly as before.
                if self._published is None:
                    self._published = publish_dataset(dataset)
                jobs = [
                    (
                        self._published,
                        self._split_seed,
                        [c.to_spec(names) for c in chunk],
                    )
                    for chunk in chunks
                ]
                # collect_metrics ships each chunk's obs snapshot back and
                # merges them here in chunk order, so engine counters are
                # identical to the serial run at any worker count.
                # supervised: a worker that dies (or hangs) mid-chunk gets
                # its chunk resubmitted to a fresh pool — fitness evaluation
                # survives worker loss with bit-identical results because
                # chunks are pure functions of (dataset, seed, specs).
                outcomes = parallel_starmap(
                    evaluate_chunk,
                    jobs,
                    n_workers=self.n_workers,
                    collect_metrics=True,
                    supervised=True,
                )
                by_chromosome: Dict[Chromosome, FitnessResult] = {}
                for chunk, (chunk_results, chunk_stats) in zip(chunks, outcomes):
                    by_chromosome.update(zip(chunk, chunk_results))
                    self._merge_stats(chunk_stats)
                results = [by_chromosome[c] for c in pending]
            memo.update(zip(pending, results))
        return [memo[c] for c in population]

    def _evaluate_with_callable(
        self,
        population: List[Chromosome],
        dataset: ProfileDataset,
        names: Tuple[str, ...],
    ) -> List[FitnessResult]:
        """Custom-evaluator path (including the reference oracle).

        Evaluators that accept a ``splits`` keyword are given the search's
        fixed per-application splits; others keep the historical
        ``(spec, dataset, rng)`` contract.
        """
        self.last_eval_stats["candidates_scored"] += len(population)
        try:
            takes_splits = "splits" in inspect.signature(self.evaluator).parameters
        except (TypeError, ValueError):
            takes_splits = False
        splits = self._splits if takes_splits else None
        jobs = [
            (self.evaluator, c.to_spec(names), dataset, self._split_seed, splits)
            for c in population
        ]
        return parallel_starmap(_evaluate_job, jobs, n_workers=self.n_workers)

    def _merge_stats(self, stats: Dict[str, float]) -> None:
        merged = self.last_eval_stats
        merged["engine_evaluations"] += stats.get("specs_evaluated", 0)
        merged["gram_fits"] += stats.get("gram_fits", 0)
        merged["lstsq_fallbacks"] += stats.get("lstsq_fallbacks", 0)
        merged["failed_fits"] += stats.get("failed_fits", 0)
        merged["column_hits"] += stats.get("column_hits", 0)
        merged["column_builds"] += stats.get("column_builds", 0)

    def _next_generation(self, ranked: List[Chromosome]) -> List[Chromosome]:
        """Elites survive; the rest are crossover/mutation offspring.

        Parents are drawn from the whole ranked population by binary
        tournament (better of two uniform picks), which keeps selection
        pressure without collapsing the population onto the elites —
        preserving the interaction diversity the paper observes in its
        best models (Figure 4).  Every offspring is guaranteed at least
        one operator application so the non-elite fraction is genuinely
        "populated with crossovers, mutations" (§3.3 pseudo-code).
        """
        n_elite = max(2, int(round(self.elite_fraction * self.population_size)))
        children: List[Chromosome] = list(ranked[:n_elite])
        rng = self.rng

        def tournament() -> Chromosome:
            i, j = rng.integers(0, len(ranked), size=2)
            return ranked[int(min(i, j))]  # ranked is sorted best-first

        operators = [
            lambda a, b: crossover_variable(a, b, rng),
            lambda a, b: crossover_interaction(a, b, rng),
            lambda a, b: crossover_create_interaction(a, b, rng),
            lambda a, b: (mutate_interaction(a, rng), b),
            lambda a, b: (mutate_variable(a, rng), b),
        ]
        while len(children) < self.population_size:
            a, b = tournament(), tournament()
            applied = False
            if rng.random() < CROSSOVER_RATE:
                a, b = crossover_variable(a, b, rng)
                applied = True
            if rng.random() < CROSSOVER_RATE:
                a, b = crossover_interaction(a, b, rng)
                applied = True
            if rng.random() < CROSSOVER_RATE:
                a, b = crossover_create_interaction(a, b, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                a = mutate_interaction(a, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                a = mutate_variable(a, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                b = mutate_interaction(b, rng)
                applied = True
            if rng.random() < MUTATION_RATE:
                b = mutate_variable(b, rng)
                applied = True
            if not applied:
                a, b = operators[int(rng.integers(0, len(operators)))](a, b)
            children.append(a)
            if len(children) < self.population_size:
                children.append(b)
        return children


def _evaluate_job(evaluator, spec, dataset, seed, splits=None) -> FitnessResult:
    """Top-level evaluation shim (picklable for multiprocessing)."""
    rng = np.random.default_rng(seed)
    if splits is not None:
        return evaluator(spec, dataset, rng, splits=splits)
    return evaluator(spec, dataset, rng)
