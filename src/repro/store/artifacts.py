"""Reference-swizzling pickling on top of :mod:`repro.store`.

Two closely related jobs live here:

**freeze / thaw** — the pool-boundary codec used by :mod:`repro.parallel`.
:func:`freeze` pickles an object graph, but any numpy array whose memory
is backed by a store column (including C-contiguous views such as trace
shards sliced out of a mapped column) is replaced by a tiny persistent
reference ``(root, key, element offset, shape)``.  :func:`thaw` re-slices
the same column out of the receiving process's mapping cache.  Large
arrays therefore cross the boundary as a few dozen bytes and every
process reads the same physical pages; arrays that do *not* live in the
store pickle by value exactly as before.

**dump_artifact / load_artifact** — the artifact-cache codec used by
``repro.experiments.common.cached``.  Same column swizzling, plus large
ordinary arrays (>= :data:`SPILL_THRESHOLD` bytes) are *spilled* into the
store as content-addressed blobs (``blob/<sha256>``) instead of being
embedded in the pickle.  The ``.pkl`` file shrinks to metadata, repeated
dumps of identical arrays dedupe for free (column puts are write-once),
and a later load memory-maps the blobs instead of re-materializing them.
Artifact files written by the old plain-``pickle`` cache load unchanged —
``persistent_load`` is simply never invoked on them.

Thawed/loaded arrays are **read-only** memmap views; every consumer in
this codebase treats its inputs as immutable (callers that need to
mutate must copy, as numpy will readily remind them).
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
from pathlib import Path
from typing import Any, Optional, Tuple

import numpy as np

from repro import obs

#: Arrays at or above this many bytes are spilled to content-addressed
#: store blobs by :func:`dump_artifact` instead of being pickled inline.
SPILL_THRESHOLD = 64 * 1024

_COL_TAG = "repro.store/col"
_BLOB_TAG = "repro.store/blob"


def _locate_column(path: Path) -> Optional[Tuple[str, str]]:
    """Map an absolute ``.npy`` path back to a registered (root, key)."""
    from repro.store import _ROOTS

    target = str(path)
    if not target.endswith(".npy"):
        return None
    best = None
    for root in _ROOTS:
        if target.startswith(root + os.sep) and (
            best is None or len(root) > len(best)
        ):
            best = root
    if best is None:
        return None
    key = os.path.relpath(target, best)[: -len(".npy")].replace(os.sep, "/")
    return best, key


def _column_ref(obj: np.ndarray) -> Optional[tuple]:
    """Persistent reference for a store-backed array, or None.

    Only C-contiguous same-dtype views can be expressed as (offset, shape)
    into the flat column; anything else falls back to pickling by value.
    """
    # Walk to the root array owning the pages.  Slices of a memmap are
    # themselves np.memmap instances, so keep walking while .base is still
    # an ndarray; the root's .base is the raw mmap buffer.
    base = obj
    while isinstance(base.base, np.ndarray):
        base = base.base
    if not isinstance(base, np.memmap):
        return None
    filename = getattr(base, "filename", None)
    if not filename:
        return None
    located = _locate_column(Path(filename).resolve())
    if located is None:
        return None
    if obj.dtype != base.dtype or not obj.flags["C_CONTIGUOUS"]:
        return None
    itemsize = obj.dtype.itemsize
    if itemsize == 0:
        return None
    byte_off = obj.__array_interface__["data"][0] - base.__array_interface__["data"][0]
    if byte_off < 0 or byte_off % itemsize:
        return None
    offset = byte_off // itemsize
    if offset + obj.size > base.size:
        return None
    root, key = located
    obs.counter("store.refs_frozen").inc()
    obs.counter("store.ref_bytes_saved").inc(obj.nbytes)
    return (_COL_TAG, root, key, int(offset), tuple(obj.shape))


class _SwizzlePickler(pickle.Pickler):
    """Pickler that emits store references for store-backed arrays.

    With ``spill_store`` set it additionally spills large ordinary arrays
    into content-addressed blobs (artifact mode).
    """

    def __init__(self, file, spill_store=None, spill_threshold=SPILL_THRESHOLD):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._spill_store = spill_store
        self._spill_threshold = spill_threshold

    def persistent_id(self, obj: Any):
        if not isinstance(obj, np.ndarray) or isinstance(obj, np.generic):
            return None
        ref = _column_ref(obj)
        if ref is not None:
            return ref
        if (
            self._spill_store is not None
            and not obj.dtype.hasobject
            and obj.nbytes >= self._spill_threshold
        ):
            contiguous = np.ascontiguousarray(obj)
            digest = hashlib.sha256()
            digest.update(contiguous.dtype.str.encode())
            digest.update(repr(contiguous.shape).encode())
            digest.update(contiguous.data if contiguous.size else b"")
            key = f"blob/{digest.hexdigest()}"
            handle = self._spill_store.put(key, contiguous)
            obs.counter("artifact.blobs_spilled").inc()
            obs.counter("artifact.bytes_spilled").inc(contiguous.nbytes)
            return (_BLOB_TAG, handle.root, handle.key)
        return None


class _SwizzleUnpickler(pickle.Unpickler):
    def persistent_load(self, pid: Any):
        from repro.store import Store

        if isinstance(pid, tuple) and pid and pid[0] == _COL_TAG:
            _, root, key, offset, shape = pid
            column = Store(root).get(key)
            count = 1
            for dim in shape:
                count *= dim
            return column.reshape(-1)[offset : offset + count].reshape(shape)
        if isinstance(pid, tuple) and pid and pid[0] == _BLOB_TAG:
            _, root, key = pid
            return Store(root).get(key)
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def freeze(obj: Any) -> bytes:
    """Pickle ``obj`` with store-backed arrays replaced by references."""
    buffer = io.BytesIO()
    _SwizzlePickler(buffer).dump(obj)
    return buffer.getvalue()


def thaw(data: bytes) -> Any:
    """Inverse of :func:`freeze`; resolves references via the map cache."""
    return _SwizzleUnpickler(io.BytesIO(data)).load()


def dump_artifact(
    obj: Any,
    path: os.PathLike,
    store=None,
    spill_threshold: int = SPILL_THRESHOLD,
) -> None:
    """Write an artifact file: swizzled pickle + store-spilled big arrays.

    The file itself is published atomically (tmp + rename) like a column.
    Pass ``store=None`` with the store disabled to write a swizzle-free
    plain pickle.
    """
    from repro import store as store_mod

    if store is None and store_mod.enabled():
        store = store_mod.Store()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            _SwizzlePickler(fh, spill_store=store, spill_threshold=spill_threshold).dump(
                obj
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def load_artifact(path: os.PathLike) -> Any:
    """Load an artifact written by :func:`dump_artifact` (or plain pickle)."""
    with open(path, "rb") as fh:
        return _SwizzleUnpickler(fh).load()
