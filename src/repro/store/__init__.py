"""``repro.store`` — a columnar, memory-mapped array store.

The experiment pipeline repeatedly moves large numpy arrays — workload
traces, SpMV kernel address streams, dataset design matrices — between
the process that builds them and the worker processes that consume them.
Before this module existed every crossing was a pickle round-trip (or a
full re-generation in the worker).  The store replaces both with shared
pages:

* :meth:`Store.put` writes an array **once** as a standard ``.npy`` file
  — to a temporary file first, fsync'd, then atomically renamed, so a
  crash mid-write never leaves a torn column visible;
* :meth:`Store.get` opens a column as a read-only :class:`numpy.memmap`.
  Mappings are cached per process, so repeated opens of the same column
  share one mapping (and, under the default ``fork`` start method,
  worker processes inherit the parent's mappings outright — the OS page
  cache backs every reader with the same physical pages);
* :class:`ColumnHandle` is a tiny picklable reference that re-opens its
  column lazily in whichever process unpickles it.  This is what
  :mod:`repro.parallel` ships across the pool boundary instead of
  materialized arrays (see :mod:`repro.store.artifacts` for the
  reference-swizzling pickler).

Layout: one ``.npy`` file per column under a root directory —
``$REPRO_STORE_DIR``, else ``<$REPRO_CACHE_DIR or repo/.cache>/store``.
Keys are relative slash-separated paths (``trace/astar-2012-240000``).
Columns are write-once by default: a :meth:`Store.put` on an existing key
is a no-op returning the existing handle, so concurrent builders race
benignly (both write the same deterministic bytes; the rename is atomic).

Set ``REPRO_STORE=0`` to disable the store globally: every call site in
the pipeline falls back to its pre-store behavior (regeneration or
pickling), which keeps results bit-identical either way.

Observability: ``store.bytes_written``, ``store.bytes_mapped``,
``store.maps`` / ``store.map_hits`` (page-share hit rate =
``map_hits / (maps + map_hits)``), ``store.puts`` / ``store.put_skipped``
and ``store.quarantined`` counters.  Fault sites ``store.open`` and
``store.flush`` let chaos plans kill or corrupt the process at the two
interesting moments; the atomic publish protocol keeps the store
consistent either way (tested in ``tests/test_store.py``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro import faults, obs

STORE_DIR_ENV = "REPRO_STORE_DIR"
STORE_ENABLE_ENV = "REPRO_STORE"


class StoreError(RuntimeError):
    """The store could not complete an operation."""


class MissingColumn(StoreError, KeyError):
    """The requested column does not exist (or was quarantined as torn)."""


#: Per-process cache of open mappings: absolute path -> read-only array.
#: Shared across Store instances so every consumer of a column sees one
#: mapping; forked workers inherit it.
_MMAP_CACHE: Dict[str, np.ndarray] = {}

#: Roots that have handed out mappings, longest first — used by
#: :mod:`repro.store.artifacts` to recognize store-backed arrays.
_ROOTS: Dict[str, Path] = {}


def enabled() -> bool:
    """Whether store-backed fast paths should be used (``REPRO_STORE``)."""
    return os.environ.get(STORE_ENABLE_ENV, "").strip().lower() not in (
        "0",
        "false",
        "off",
    )


def default_root() -> Path:
    """``$REPRO_STORE_DIR``, else ``<cache dir>/store``."""
    root = os.environ.get(STORE_DIR_ENV)
    if root:
        return Path(root)
    cache = os.environ.get("REPRO_CACHE_DIR")
    base = Path(cache) if cache else Path(__file__).resolve().parents[3] / ".cache"
    return base / "store"


def mapped_bytes() -> int:
    """Total bytes of columns currently mapped in this process."""
    return sum(arr.nbytes for arr in _MMAP_CACHE.values())


def any_mapped() -> bool:
    """True when this process holds at least one store mapping."""
    return bool(_MMAP_CACHE)


def _check_key(key: str) -> str:
    if not key or key.startswith(("/", ".")) or ".." in key.split("/"):
        raise StoreError(f"invalid store key {key!r}")
    for segment in key.split("/"):
        if not segment or segment != segment.strip():
            raise StoreError(f"invalid store key {key!r}")
    return key


class ColumnHandle:
    """A picklable, lazily resolved reference to one stored column.

    Pickles to two short strings; :meth:`array` re-opens the memmap in
    the unpickling process (sharing the per-process mapping cache).
    """

    __slots__ = ("root", "key")

    def __init__(self, root: str, key: str):
        self.root = str(root)
        self.key = key

    def __repr__(self) -> str:
        return f"ColumnHandle({self.key!r} @ {self.root})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ColumnHandle)
            and self.root == other.root
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.root, self.key))

    def __getstate__(self) -> Tuple[str, str]:
        return (self.root, self.key)

    def __setstate__(self, state: Tuple[str, str]) -> None:
        self.root, self.key = state

    def array(self) -> np.ndarray:
        """The column as a read-only memory-mapped array."""
        return Store(self.root).get(self.key)


class Store:
    """One column store rooted at a directory (see module docstring)."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_root()
        _ROOTS.setdefault(str(self.root.resolve()), self.root)

    # -- paths ---------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / (_check_key(key) + ".npy")

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def handle(self, key: str) -> ColumnHandle:
        return ColumnHandle(str(self.root), key)

    # -- write ---------------------------------------------------------------------

    def put(
        self, key: str, array: np.ndarray, overwrite: bool = False
    ) -> ColumnHandle:
        """Write one column atomically; no-op if the key already exists.

        The array is written to a sibling temporary file, flushed and
        fsync'd, then renamed over the final path — a reader (or a crash)
        can never observe a partially written column under ``key``.
        """
        path = self.path_for(key)
        array = np.asarray(array)
        if array.dtype.hasobject:
            raise StoreError(f"cannot store object-dtype array under {key!r}")
        if path.exists() and not overwrite:
            obs.counter("store.put_skipped").inc()
            return self.handle(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.lib.format.write_array(
                    fh, np.ascontiguousarray(array), allow_pickle=False
                )
                fh.flush()
                os.fsync(fh.fileno())
            # The kill/corrupt point chaos plans aim at: the column bytes
            # are durable in the temp file but not yet visible.
            faults.site("store.flush")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _fsync_dir(path.parent)
        _MMAP_CACHE.pop(str(path.resolve()), None)
        obs.counter("store.puts").inc()
        obs.counter("store.bytes_written").inc(array.nbytes)
        return self.handle(key)

    # -- read ----------------------------------------------------------------------

    def get(self, key: str) -> np.ndarray:
        """Open one column as a read-only memmap (cached per process)."""
        path = self.path_for(key)
        resolved = str(path.resolve()) if path.exists() else str(path)
        cached = _MMAP_CACHE.get(resolved)
        if cached is not None:
            obs.counter("store.map_hits").inc()
            return cached
        faults.site("store.open")
        try:
            array = np.load(path, mmap_mode="r", allow_pickle=False)
        except FileNotFoundError:
            raise MissingColumn(key) from None
        except Exception as exc:  # torn header / truncated data region
            self._quarantine(path)
            raise MissingColumn(f"{key} (torn: {exc})") from None
        _MMAP_CACHE[resolved] = array
        obs.counter("store.maps").inc()
        obs.counter("store.bytes_mapped").inc(array.nbytes)
        return array

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable column aside so a rebuild can republish."""
        try:
            path.replace(path.with_name(path.name + f".torn-{os.getpid()}"))
            obs.counter("store.quarantined").inc()
        except OSError:
            pass


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory entry (durable rename)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


from repro.store.artifacts import (  # noqa: E402  (re-export; avoids import cycle)
    dump_artifact,
    freeze,
    load_artifact,
    thaw,
)

__all__ = [
    "ColumnHandle",
    "MissingColumn",
    "STORE_DIR_ENV",
    "STORE_ENABLE_ENV",
    "Store",
    "StoreError",
    "any_mapped",
    "default_root",
    "dump_artifact",
    "enabled",
    "freeze",
    "load_artifact",
    "mapped_bytes",
    "thaw",
]
