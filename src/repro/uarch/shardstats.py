"""Detailed per-shard statistics consumed by the timing model.

These are the simulator's *richer* view of a shard: full stack-distance
arrays and window-constrained dataflow schedules rather than the thirteen
scalar summaries the regression models see (Table 1).  Keeping the two
views separate is what makes the inference problem real — the model must
generalize from lossy summaries to performance produced by the full
distributions (DESIGN.md §1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.isa.instructions import FU_LATENCY, OpClass
from repro.isa.trace import Trace
from repro.profiling.reuse import stack_distances
from repro.uarch.config import ROB_LEVELS


@dataclasses.dataclass(frozen=True)
class ShardStats:
    """Everything the interval timing model needs about one shard."""

    name: str
    n: int
    opclass_counts: np.ndarray            # per OpClass
    taken: int
    mispredicts: int
    data_stack: np.ndarray                # sorted LRU stack distances, data, 64B
    inst_stack: np.ndarray                # sorted LRU stack distances, inst, 64B
    n_data_accesses: int
    n_inst_accesses: int
    dataflow_cycles: Dict[int, float]     # ROB window -> dataflow-limited cycles

    @property
    def n_memory(self) -> int:
        return int(self.opclass_counts[OpClass.MEMORY])


#: Value assigned to cold (first-touch) stack distances.  It exceeds any
#: feasible cache capacity, so cold accesses miss everywhere.
COLD = np.int64(2**62)


def compute_shard_stats(shard: Trace) -> ShardStats:
    """Measure the timing model's detailed statistics on one shard."""
    n = len(shard)
    if n == 0:
        raise ValueError("cannot compute statistics for an empty shard")

    mem_addrs = shard.addr[shard.memory_mask()]
    data_stack, _ = stack_distances(mem_addrs, block_bytes=64)
    inst_stack, _ = stack_distances(shard.iaddr, block_bytes=64)

    return ShardStats(
        name=shard.name,
        n=n,
        opclass_counts=shard.opclass_counts(),
        taken=int(shard.taken.sum()),
        mispredicts=int(shard.miss.sum()),
        data_stack=np.sort(data_stack),
        inst_stack=np.sort(inst_stack),
        n_data_accesses=len(mem_addrs),
        n_inst_accesses=n,
        dataflow_cycles={
            rob: _dataflow_cycles(shard, rob) for rob in ROB_LEVELS
        },
    )


def compute_shard_stats_many(shards: Sequence[Trace]) -> List[ShardStats]:
    """:func:`compute_shard_stats` for many shards, batched.

    The data and instruction stack-distance passes of all shards run
    through :func:`repro.kernels.batched.stack_distances_many` — one
    vectorized pass per chunk instead of one per stream — producing
    bit-identical distances (and therefore identical sorted stacks).
    The dataflow schedules remain per-shard; they are inherently
    sequential.
    """
    from repro.kernels.batched import stack_distances_many_addresses

    if not shards:
        return []
    for shard in shards:
        if len(shard) == 0:
            raise ValueError("cannot compute statistics for an empty shard")
    mem_addrs = [shard.addr[shard.memory_mask()] for shard in shards]
    stacks = stack_distances_many_addresses(
        [*mem_addrs, *(shard.iaddr for shard in shards)], block_bytes=64
    )
    out: List[ShardStats] = []
    for i, shard in enumerate(shards):
        data_stack = stacks[i][0]
        inst_stack = stacks[len(shards) + i][0]
        out.append(
            ShardStats(
                name=shard.name,
                n=len(shard),
                opclass_counts=shard.opclass_counts(),
                taken=int(shard.taken.sum()),
                mispredicts=int(shard.miss.sum()),
                data_stack=np.sort(data_stack),
                inst_stack=np.sort(inst_stack),
                n_data_accesses=len(mem_addrs[i]),
                n_inst_accesses=len(shard),
                dataflow_cycles={
                    rob: _dataflow_cycles(shard, rob) for rob in ROB_LEVELS
                },
            )
        )
    return out


def _dataflow_cycles(shard: Trace, window: int) -> float:
    """Window-constrained dataflow schedule length, in cycles.

    Classic dataflow-limit model: instruction *i* completes at

        ``finish[i] = latency(op_i) + max(finish[i - dep_i], retire[i - W])``

    The first term chains true dependences; the second enforces the reorder
    buffer with in-order retirement semantics: *i* cannot enter the window
    until the instruction *W* slots ahead of it has *retired*, and the
    retire time is the running maximum of finish times (retirement is in
    order).  With fully independent instructions this converges to the
    W/latency ILP bound; with tight chains it degenerates to the critical
    path.  Using the retire (prefix-max) time also makes the schedule
    provably monotone in the window size.  Functional-unit contention,
    fetch width, branch and memory penalties are layered on top by
    :mod:`repro.uarch.pipeline`.
    """
    ops = shard.op
    deps = shard.dep
    n = len(ops)
    if n == 0:
        return 0.0
    lat = FU_LATENCY[ops].tolist()
    dep_list = deps.tolist()
    finish = [0.0] * n
    retire = [0.0] * n  # prefix max of finish
    running = 0.0
    for i in range(n):
        d = dep_list[i]
        t = 0.0
        if 0 < d <= i:
            t = finish[i - d]
        if i >= window:
            tw = retire[i - window]
            if tw > t:
                t = tw
        f = t + lat[i]
        finish[i] = f
        if f > running:
            running = f
        retire[i] = running
    return running
