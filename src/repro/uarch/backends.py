"""Timing-backend registry and guarded backend evaluation.

The repo now carries two timing backends over the same trace/statistics
substrate — the OoO CPU interval model and the GPU warp-throughput
model.  Everything that profiles workloads, builds datasets, or searches
design spaces selects one through this registry instead of importing a
concrete simulator, which is what makes the serving tier genuinely
multi-backend (ROADMAP: "Second timing backend + cross-backend model
transfer").

:class:`GuardedBackend` is the production seam for *online* backend
evaluation: it runs the (potentially expensive, potentially faulty)
simulator pass under the ``uarch.backend`` fault site and degrades to
the last successful result on any failure, so a broken backend
evaluation never poisons a serving or re-tuning loop — the same
last-good contract as :class:`repro.stream.retune.OnlineRetuner`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.uarch import config as cpu_config
from repro.uarch import gpu
from repro.uarch.simulator import Simulator


@dataclasses.dataclass(frozen=True)
class Backend:
    """Everything a driver needs to target one timing backend."""

    name: str
    make_simulator: Callable[[], Simulator]
    config_from_levels: Callable[[Sequence[int]], object]
    sample_configs: Callable[[int, np.random.Generator], List[object]]
    reference_config: Callable[[], object]
    level_counts: Tuple[int, ...]
    design_space_size: int
    hardware_labels: Dict[str, str]
    #: Level dimensions where raising the level adds resources and must
    #: never increase the modeled cycle count (used by the contract suite).
    better_dims: Tuple[int, ...]


BACKENDS: Dict[str, Backend] = {
    "cpu": Backend(
        name="cpu",
        make_simulator=Simulator,
        config_from_levels=cpu_config.config_from_levels,
        sample_configs=cpu_config.sample_configs,
        reference_config=cpu_config.reference_config,
        level_counts=cpu_config._LEVEL_COUNTS,
        design_space_size=cpu_config.design_space_size(),
        hardware_labels=cpu_config.HARDWARE_VARIABLE_LABELS,
        better_dims=(3, 4, 5, 6),  # MSHRs, D$, I$, L2 size
    ),
    "gpu": Backend(
        name="gpu",
        make_simulator=gpu.GpuSimulator,
        config_from_levels=gpu.gpu_config_from_levels,
        sample_configs=gpu.sample_gpu_configs,
        reference_config=gpu.reference_gpu_config,
        level_counts=gpu._GPU_LEVEL_COUNTS,
        design_space_size=gpu.gpu_design_space_size(),
        hardware_labels=gpu.GPU_HARDWARE_VARIABLE_LABELS,
        # SMs, warp slots, regfile, smem, L1, I$, L2, DRAM bw, coalescing
        # segment, memory queue, SFUs.
        better_dims=(0, 1, 2, 3, 4, 5, 6, 8, 9, 11, 12),
    ),
}

BACKEND_NAMES: Tuple[str, ...] = tuple(BACKENDS)


def get_backend(name: str) -> Backend:
    """Look up a backend by name (``"cpu"`` or ``"gpu"``)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(BACKENDS)}"
        ) from None


@dataclasses.dataclass
class BackendEvaluation:
    """One guarded evaluation: per-shard CPIs plus provenance."""

    backend: str
    config_key: str
    cpis: np.ndarray
    fresh: bool          # False when this is a degraded last-good replay


class BackendUnavailableError(RuntimeError):
    """A backend evaluation failed before any last-good result existed."""


class GuardedBackend:
    """Fault-isolated backend evaluation with last-good degradation.

    ``evaluate`` runs the backend simulator over a batch of shards under
    the ``uarch.backend`` fault site.  On success the result becomes the
    new last-good; on *any* failure the previous last-good result is
    replayed (marked ``fresh=False``) so callers — serving observation
    loops, online re-tuners — keep answering.  Only a failure before the
    first success raises, as there is nothing safe to degrade to.
    """

    def __init__(self, backend: str = "cpu"):
        self.backend = get_backend(backend)
        self.simulator = self.backend.make_simulator()
        self.failures = 0
        self.evaluations = 0
        self.last_error: Optional[str] = None
        self._last_good: Optional[BackendEvaluation] = None

    def evaluate(self, shards: Sequence, config) -> BackendEvaluation:
        """Per-shard CPIs of ``shards`` on ``config``, degrading on failure."""
        try:
            faults.site("uarch.backend")
            stats = self.simulator.stats_for_many(shards)
            cpis = np.array(
                [self.simulator.cpi_from_stats(st, config) for st in stats],
                dtype=float,
            )
            result = BackendEvaluation(
                backend=self.backend.name,
                config_key=config.key,
                cpis=cpis,
                fresh=True,
            )
        except Exception as exc:  # noqa: BLE001 - degrade on anything
            self.failures += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            obs.counter("uarch.backend_failures").inc()
            if self._last_good is None:
                raise BackendUnavailableError(
                    f"{self.backend.name} backend evaluation failed with no "
                    f"last-good result to degrade to: {self.last_error}"
                ) from exc
            return dataclasses.replace(self._last_good, fresh=False)
        self.evaluations += 1
        obs.counter("uarch.backend_evaluations").inc()
        self._last_good = result
        return result
