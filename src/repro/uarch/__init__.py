"""Out-of-order microarchitecture substrate (the paper's Gem5 stand-in).

Defines the Table 2 hardware design space and a deterministic trace-driven
interval timing model producing CPI for any (shard, configuration) pair.
See DESIGN.md §1 for why this substitution preserves the paper's modeling
problem.
"""

from repro.uarch.config import (
    PipelineConfig,
    HARDWARE_VARIABLE_NAMES,
    HARDWARE_VARIABLE_LABELS,
    MEMORY_LATENCY,
    config_from_levels,
    design_space_size,
    enumerate_configs,
    reference_config,
    sample_configs,
)
from repro.uarch.shardstats import ShardStats, compute_shard_stats
from repro.uarch.cachemodel import expected_misses, miss_counts_hierarchy
from repro.uarch.pipeline import CycleBreakdown, cycle_breakdown, simulate_cpi
from repro.uarch.simulator import Simulator
from repro.uarch.gpu import (
    GpuConfig,
    GpuSimulator,
    GPU_HARDWARE_VARIABLE_LABELS,
    GPU_MEMORY_LATENCY,
    gpu_config_from_levels,
    gpu_design_space_size,
    gpu_occupancy,
    gpu_cycle_breakdown,
    reference_gpu_config,
    sample_gpu_configs,
    simulate_gpu_cpi,
    warps_in_flight,
)
from repro.uarch.backends import (
    Backend,
    BackendEvaluation,
    BackendUnavailableError,
    BACKEND_NAMES,
    GuardedBackend,
    get_backend,
)
from repro.uarch.tuning import ArchitectureSearch, SearchOutcome, random_search_baseline
from repro.uarch.detailed import DetailedSimulator, DetailedResult, detailed_cpi

__all__ = [
    "PipelineConfig",
    "HARDWARE_VARIABLE_NAMES",
    "HARDWARE_VARIABLE_LABELS",
    "MEMORY_LATENCY",
    "config_from_levels",
    "design_space_size",
    "enumerate_configs",
    "reference_config",
    "sample_configs",
    "ShardStats",
    "compute_shard_stats",
    "expected_misses",
    "miss_counts_hierarchy",
    "CycleBreakdown",
    "cycle_breakdown",
    "simulate_cpi",
    "Simulator",
    "GpuConfig",
    "GpuSimulator",
    "GPU_HARDWARE_VARIABLE_LABELS",
    "GPU_MEMORY_LATENCY",
    "gpu_config_from_levels",
    "gpu_design_space_size",
    "gpu_occupancy",
    "gpu_cycle_breakdown",
    "reference_gpu_config",
    "sample_gpu_configs",
    "simulate_gpu_cpi",
    "warps_in_flight",
    "Backend",
    "BackendEvaluation",
    "BackendUnavailableError",
    "BACKEND_NAMES",
    "GuardedBackend",
    "get_backend",
    "ArchitectureSearch",
    "SearchOutcome",
    "random_search_baseline",
    "DetailedSimulator",
    "DetailedResult",
    "detailed_cpi",
]
