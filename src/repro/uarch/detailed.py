"""A cycle-level out-of-order simulator for cross-validating the interval model.

The interval model (:mod:`repro.uarch.pipeline`) is fast enough to profile
hundreds of architectures per application, but it is an analytic
approximation.  This module provides an independent, *structural*
simulator — fetch, dispatch, issue, execute, and in-order commit over an
explicit reorder buffer, issue queue, and load/store queue, with the cache
hierarchy simulated access by access — so the approximation can be checked
(see ``tests/test_uarch_detailed.py`` and the timing-validation assertions).

Deliberate simplifications, shared with the interval model so the two are
comparable:

* one cycle per ALU op at fetch/decode; execution latencies from
  :data:`repro.isa.FU_LATENCY`;
* a mispredicted branch stalls fetch until it executes, plus a front-end
  refill proportional to machine width;
* stores behave like loads (single unified cache port pool);
* outstanding L1 misses are limited by the MSHR count: a load that would
  miss cannot issue while all MSHRs are busy;
* physical registers are subsumed by the ROB bound (they are ganged in the
  Table 2 design space anyway).

It is two to three orders of magnitude slower than the interval model and
intended for shards of a few thousand instructions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.isa.instructions import FU_ISSUE_INTERVAL, FU_LATENCY, OpClass
from repro.isa.trace import Trace
from repro.spmv.cache import SetAssociativeCache
from repro.uarch.config import CACHE_BLOCK_BYTES, MEMORY_LATENCY, PipelineConfig
from repro.uarch.pipeline import BRANCH_BASE, BRANCH_WIDTH_SCALE


@dataclasses.dataclass
class DetailedResult:
    """Outcome of one cycle-level simulation."""

    cycles: int
    instructions: int
    l1d_misses: int
    l1i_misses: int
    l2_misses: int

    @property
    def cpi(self) -> float:
        return self.cycles / max(1, self.instructions)


class _Entry:
    """One in-flight instruction."""

    __slots__ = (
        "index", "op", "dep", "addr", "issued", "done_at", "is_mem", "is_miss"
    )

    def __init__(self, index: int, op: int, dep: int, addr: int):
        self.index = index
        self.op = op
        self.dep = dep
        self.addr = addr
        self.issued = False
        self.done_at = -1
        self.is_mem = op == int(OpClass.MEMORY)
        self.is_miss = False


class DetailedSimulator:
    """Cycle-level OoO simulation of one shard on one configuration."""

    def __init__(self, config: PipelineConfig, seed: int = 0):
        self.config = config
        block = CACHE_BLOCK_BYTES
        self.l1d = SetAssociativeCache(
            config.dcache_kb * 1024, block, config.l1_assoc, "LRU", seed
        )
        self.l1i = SetAssociativeCache(
            config.icache_kb * 1024, block, config.l1_assoc, "LRU", seed + 1
        )
        self.l2 = SetAssociativeCache(
            config.l2_kb * 1024, block, config.l2_assoc, "LRU", seed + 2
        )
        self.l1d_misses = 0
        self.l1i_misses = 0
        self.l2_misses = 0

    # -- memory hierarchy ----------------------------------------------------------

    def _data_latency(self, addr: int) -> int:
        base = int(FU_LATENCY[OpClass.MEMORY])
        if self.l1d.access(addr):
            return base
        self.l1d_misses += 1
        if self.l2.access(addr):
            return base + self.config.l2_latency
        self.l2_misses += 1
        return base + self.config.l2_latency + MEMORY_LATENCY

    def _fetch_latency(self, iaddr: int) -> int:
        if self.l1i.access(iaddr):
            return 0
        self.l1i_misses += 1
        if self.l2.access(iaddr):
            return self.config.l2_latency
        self.l2_misses += 1
        return self.config.l2_latency + MEMORY_LATENCY

    # -- main loop --------------------------------------------------------------------

    def run(self, shard: Trace, max_cycles: Optional[int] = None) -> DetailedResult:
        config = self.config
        n = len(shard)
        ops = shard.op
        deps = shard.dep
        addrs = shard.addr
        iaddrs = shard.iaddr
        miss_flags = shard.miss

        done_at = np.full(n, -1, dtype=np.int64)   # completion cycle per instr
        rob: List[_Entry] = []
        next_fetch = 0
        fetch_ready_at = 0            # front-end stall horizon
        # Per-FU-class: cycle at which each unit is next free.
        units = {
            int(OpClass.CONTROL): [0] * max(1, config.width),
            int(OpClass.FP_ALU): [0] * config.fp_alu,
            int(OpClass.FP_MULDIV): [0] * config.fp_mul,
            int(OpClass.INT_MULDIV): [0] * config.int_muldiv,
            int(OpClass.INT_ALU): [0] * config.int_alu,
            int(OpClass.MEMORY): [0] * config.ports,
        }
        penalty = int(BRANCH_BASE + BRANCH_WIDTH_SCALE * config.width)
        limit = max_cycles or 400 * n + 10_000

        cycle = 0
        committed = 0
        while committed < n and cycle < limit:
            # 1. Commit in order, up to width per cycle.
            commits = 0
            while (
                rob
                and commits < config.width
                and rob[0].done_at >= 0
                and rob[0].done_at <= cycle
            ):
                rob.pop(0)
                committed += 1
                commits += 1

            # 2. Issue: oldest-first within the issue queue.
            in_queue = [e for e in rob if not e.issued]
            issued = 0
            mem_in_flight = sum(
                1 for e in rob if e.is_mem and e.issued and e.done_at > cycle
            )
            misses_in_flight = sum(
                1 for e in rob if e.is_miss and e.done_at > cycle
            )
            for entry in in_queue[: config.iq]:
                if issued >= config.width:
                    break
                dep_index = entry.index - entry.dep
                if entry.dep > 0 and dep_index >= 0:
                    producer_done = done_at[dep_index]
                    if producer_done < 0 or producer_done > cycle:
                        continue
                if entry.is_mem and mem_in_flight >= config.lsq:
                    continue
                if entry.is_mem and misses_in_flight >= config.mshr:
                    # All miss-status registers busy: a load that would miss
                    # must wait (probe leaves the cache untouched).
                    if not self.l1d.probe(int(entry.addr)):
                        continue
                unit_pool = units[entry.op]
                free = min(range(len(unit_pool)), key=unit_pool.__getitem__)
                if unit_pool[free] > cycle:
                    continue
                if entry.is_mem:
                    hit_before = self.l1d.probe(int(entry.addr))
                    latency = self._data_latency(int(entry.addr))
                    entry.is_miss = not hit_before
                    if entry.is_miss:
                        misses_in_flight += 1
                else:
                    latency = int(FU_LATENCY[entry.op])
                unit_pool[free] = cycle + int(FU_ISSUE_INTERVAL[entry.op])
                entry.issued = True
                entry.done_at = cycle + latency
                done_at[entry.index] = entry.done_at
                if entry.is_mem:
                    mem_in_flight += 1
                issued += 1

            # 3. Fetch/dispatch, up to width per cycle, ROB space permitting.
            fetched = 0
            while (
                next_fetch < n
                and fetched < config.width
                and len(rob) < config.rob
                and cycle >= fetch_ready_at
            ):
                stall = self._fetch_latency(int(iaddrs[next_fetch]))
                if stall:
                    fetch_ready_at = cycle + stall
                    break
                entry = _Entry(
                    next_fetch,
                    int(ops[next_fetch]),
                    int(deps[next_fetch]),
                    int(addrs[next_fetch]),
                )
                rob.append(entry)
                if (
                    entry.op == int(OpClass.CONTROL)
                    and miss_flags[next_fetch]
                ):
                    # Mispredicted: fetch resumes a refill after resolution.
                    fetch_ready_at = limit  # placeholder until it executes
                    entry_penalty = penalty
                    # Record so we can release when the branch completes:
                    self._pending_redirect = (entry, entry_penalty)
                next_fetch += 1
                fetched += 1

            # Release a pending redirect once its branch executed.
            redirect = getattr(self, "_pending_redirect", None)
            if redirect is not None:
                entry, entry_penalty = redirect
                if entry.done_at >= 0 and entry.done_at <= cycle:
                    fetch_ready_at = cycle + entry_penalty
                    self._pending_redirect = None

            cycle += 1

        return DetailedResult(
            cycles=cycle,
            instructions=committed,
            l1d_misses=self.l1d_misses,
            l1i_misses=self.l1i_misses,
            l2_misses=self.l2_misses,
        )


def detailed_cpi(shard: Trace, config: PipelineConfig, seed: int = 0) -> float:
    """CPI of ``shard`` on ``config`` under the cycle-level simulator."""
    return DetailedSimulator(config, seed).run(shard).cpi
