"""High-level simulation entry points with per-shard statistic caching."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.isa.trace import Trace
from repro.uarch.config import PipelineConfig
from repro.uarch.pipeline import (
    CycleBreakdown,
    cycle_breakdown,
    simulate_cpi,
    simulate_cpi_batch,
)
from repro.uarch.shardstats import (
    ShardStats,
    compute_shard_stats,
    compute_shard_stats_many,
)


class Simulator:
    """Trace-driven performance simulation over the Table 2 space.

    Computing :class:`ShardStats` (stack distances + dataflow schedules) is
    the expensive step; evaluating a configuration afterwards is cheap
    closed-form arithmetic.  The simulator therefore memoizes statistics by
    shard name so that profiling hundreds of architectures per application
    costs one pass over each shard.
    """

    def __init__(self):
        self._stats: Dict[str, ShardStats] = {}

    def stats_for(self, shard: Trace) -> ShardStats:
        """Return (possibly cached) detailed statistics for a shard."""
        stats = self._stats.get(shard.name)
        if stats is None or stats.n != len(shard):
            stats = compute_shard_stats(shard)
            self._stats[shard.name] = stats
        return stats

    def stats_for_many(self, shards: Sequence[Trace]) -> list:
        """Statistics for many shards; uncached ones computed batched.

        The batched stack-distance pass produces bit-identical statistics
        to :meth:`stats_for`, so mixing the two entry points is safe.
        """
        missing = [
            s
            for s in shards
            if (st := self._stats.get(s.name)) is None or st.n != len(s)
        ]
        if missing:
            for shard, stats in zip(missing, compute_shard_stats_many(missing)):
                self._stats[shard.name] = stats
        return [self._stats[s.name] for s in shards]

    def cpi_from_stats(self, stats: ShardStats, config: PipelineConfig) -> float:
        """CPI of pre-computed shard statistics on one configuration.

        Backends override this one method (plus :meth:`breakdown_from_stats`
        and :meth:`cpi_batch_from_stats`) to swap the timing model while
        keeping the caching/batching entry points identical.
        """
        return simulate_cpi(stats, config)

    def cpi_batch_from_stats(
        self, stats: ShardStats, configs: Sequence[PipelineConfig]
    ) -> np.ndarray:
        """CPI of pre-computed statistics on many configs (batched)."""
        return simulate_cpi_batch(stats, configs)

    def breakdown_from_stats(
        self, stats: ShardStats, config: PipelineConfig
    ) -> CycleBreakdown:
        """Cycle-component breakdown of pre-computed statistics."""
        return cycle_breakdown(stats, config)

    def cpi(self, shard: Trace, config: PipelineConfig) -> float:
        """Cycles per instruction of ``shard`` on ``config``."""
        return self.cpi_from_stats(self.stats_for(shard), config)

    def cpi_batch(
        self, shard: Trace, configs: Sequence[PipelineConfig]
    ) -> np.ndarray:
        """CPI of ``shard`` on many configs (batched miss model)."""
        return self.cpi_batch_from_stats(self.stats_for(shard), configs)

    def breakdown(self, shard: Trace, config: PipelineConfig) -> CycleBreakdown:
        """Cycle-component breakdown of ``shard`` on ``config``."""
        return self.breakdown_from_stats(self.stats_for(shard), config)

    def cpi_matrix(
        self,
        shards: Sequence[Trace],
        configs: Sequence[PipelineConfig],
    ) -> np.ndarray:
        """CPI for every (shard, config) pair, shaped (len(shards), len(configs))."""
        stats = self.stats_for_many(shards)
        out = np.empty((len(shards), len(configs)), dtype=float)
        for i, st in enumerate(stats):
            out[i, :] = self.cpi_batch_from_stats(st, configs)
        return out

    def application_cpi(
        self, shards: Iterable[Trace], config: PipelineConfig
    ) -> float:
        """End-to-end application CPI: cycle-weighted over its shards.

        Matches the paper's aggregation (§4.4): predict per-shard
        performance, then combine the shards' contributions.  Equal-length
        shards make this the arithmetic mean of shard CPIs.
        """
        cpis = [self.cpi(s, config) for s in shards]
        if not cpis:
            raise ValueError("no shards supplied")
        return float(np.mean(cpis))
