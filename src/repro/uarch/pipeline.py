"""Interval-style out-of-order timing model.

Assembles a shard's cycle count on a given :class:`PipelineConfig` from
independent components, in the tradition of the analytic CPI models the
paper cites ([15] Eyerman et al., [24] Karkhanis & Smith):

1. **Core throughput** — the maximum of the fetch/dispatch-width bound, the
   window-constrained dataflow bound, per-class functional-unit contention
   bounds, and the cache-port bound.
2. **Branch penalty** — each mispredict refills a front-end whose depth
   grows with machine width (wider machines run deeper pipelines, the
   paper's own example of a hardware-software interaction, §3.1).
3. **Data-memory stalls** — expected L1/L2 miss counts from the stack
   distance model, with miss latency partially hidden by memory-level
   parallelism limited by MSHRs, the load/store queue, and the ROB.
4. **Instruction-memory stalls** — instruction-cache misses stall the
   front end without overlap.

The result is a deterministic, non-linear function of hardware parameters
and *detailed* software behavior with exactly the pairwise interactions the
paper's models must learn (width x mispredicts, ROB x miss spacing,
MSHR x L2 size, ...).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.isa.instructions import FU_ISSUE_INTERVAL
from repro.uarch.cachemodel import miss_counts_hierarchy
from repro.uarch.config import (
    CACHE_BLOCK_BYTES,
    MEMORY_LATENCY,
    PipelineConfig,
)
from repro.uarch.shardstats import ShardStats

#: Cycles of front-end refill charged per mispredict, as a function of
#: width: penalty = BRANCH_BASE + BRANCH_WIDTH_SCALE * width.
BRANCH_BASE = 4.0
BRANCH_WIDTH_SCALE = 2.0


@dataclasses.dataclass(frozen=True)
class CycleBreakdown:
    """Cycle components for one (shard, configuration) pair."""

    core: float
    branch: float
    data_memory: float
    inst_memory: float

    @property
    def total(self) -> float:
        return self.core + self.branch + self.data_memory + self.inst_memory


def _fu_units(config: PipelineConfig) -> np.ndarray:
    """Functional units available per opcode class."""
    return np.array(
        [
            max(1, config.width),   # CONTROL resolves on any issue slot
            config.fp_alu,          # FP_ALU
            config.fp_mul,          # FP_MULDIV
            config.int_muldiv,      # INT_MULDIV
            config.int_alu,         # INT_ALU
            config.ports,           # MEMORY limited by cache ports
        ],
        dtype=float,
    )


def cycle_breakdown(stats: ShardStats, config: PipelineConfig) -> CycleBreakdown:
    """Compute the cycle components of ``stats`` on ``config``."""
    l1d_blocks = config.dcache_kb * 1024 // CACHE_BLOCK_BYTES
    l2_blocks = config.l2_kb * 1024 // CACHE_BLOCK_BYTES
    l1i_blocks = config.icache_kb * 1024 // CACHE_BLOCK_BYTES
    l1d_miss, l2d_miss = miss_counts_hierarchy(
        stats.data_stack, l1d_blocks, config.l1_assoc, l2_blocks, config.l2_assoc
    )
    l1i_miss, l2i_miss = miss_counts_hierarchy(
        stats.inst_stack, l1i_blocks, config.l1_assoc, l2_blocks, config.l2_assoc
    )
    return _breakdown_from_misses(
        stats, config, l1d_miss, l2d_miss, l1i_miss, l2i_miss
    )


def _breakdown_from_misses(
    stats: ShardStats,
    config: PipelineConfig,
    l1d_miss: float,
    l2d_miss: float,
    l1i_miss: float,
    l2i_miss: float,
) -> CycleBreakdown:
    """Cycle components given pre-computed hierarchy miss counts.

    Shared by the per-pair path (misses from
    :func:`miss_counts_hierarchy`) and the batched path (misses from
    :func:`repro.kernels.batched.miss_counts_hierarchy_batch`) — the two
    produce bit-identical miss counts, so the assembled components match
    exactly too.
    """
    n = stats.n
    counts = stats.opclass_counts.astype(float)

    # --- 1. core throughput -----------------------------------------------------
    width_bound = n / config.width
    dataflow_bound = stats.dataflow_cycles[config.rob]
    fu_bounds = counts * FU_ISSUE_INTERVAL / _fu_units(config)
    core = max(width_bound, dataflow_bound, float(fu_bounds.max()))

    # --- 2. branch mispredictions -------------------------------------------------
    penalty = BRANCH_BASE + BRANCH_WIDTH_SCALE * config.width
    branch = stats.mispredicts * penalty

    # --- 3. data memory hierarchy --------------------------------------------------
    l2_hits = l1d_miss - l2d_miss

    data_memory = 0.0
    if l1d_miss > 0:
        # Memory-level parallelism: limited by MSHRs, by LSQ capacity, and
        # by how many misses the window can expose (ROB span / average
        # instruction spacing between misses).
        spacing = n / l1d_miss
        window_mlp = 1.0 + config.rob / spacing
        mlp = max(1.0, min(config.mshr, config.lsq / 4.0, window_mlp))
        # A miss overlaps with the dispatch of up to ROB further
        # instructions (ROB/width cycles of core work already counted in
        # the throughput bound), but never becomes free: dependent loads,
        # bandwidth, and queueing keep at least a quarter of the latency
        # exposed.
        hideable = config.rob / config.width
        l2_exposed = max(0.25 * config.l2_latency, config.l2_latency - hideable)
        mem_exposed = max(0.25 * MEMORY_LATENCY, MEMORY_LATENCY - hideable)
        data_memory = (l2_hits * l2_exposed + l2d_miss * mem_exposed) / mlp

    # --- 4. instruction memory -----------------------------------------------------
    inst_memory = (l1i_miss - l2i_miss) * config.l2_latency + l2i_miss * MEMORY_LATENCY

    return CycleBreakdown(
        core=core,
        branch=float(branch),
        data_memory=float(data_memory),
        inst_memory=float(inst_memory),
    )


def cycle_breakdown_batch(
    stats: ShardStats, configs: Sequence[PipelineConfig]
) -> List[CycleBreakdown]:
    """:func:`cycle_breakdown` for many configurations of one shard.

    The expensive part — the analytic miss model's histogram pass over
    the shard's stack distances — runs once per *distinct* cache
    geometry via :func:`repro.kernels.batched.miss_counts_hierarchy_batch`
    instead of once per configuration; the cheap per-config assembly
    arithmetic is unchanged, so every component is bit-identical to the
    per-pair path.
    """
    from repro.kernels.batched import miss_counts_hierarchy_batch

    if not configs:
        return []
    l1d_blocks = np.array(
        [c.dcache_kb * 1024 // CACHE_BLOCK_BYTES for c in configs], dtype=np.int64
    )
    l1i_blocks = np.array(
        [c.icache_kb * 1024 // CACHE_BLOCK_BYTES for c in configs], dtype=np.int64
    )
    l2_blocks = np.array(
        [c.l2_kb * 1024 // CACHE_BLOCK_BYTES for c in configs], dtype=np.int64
    )
    l1_assoc = np.array([c.l1_assoc for c in configs], dtype=np.int64)
    l2_assoc = np.array([c.l2_assoc for c in configs], dtype=np.int64)

    l1d, l2d = miss_counts_hierarchy_batch(
        stats.data_stack, l1d_blocks, l1_assoc, l2_blocks, l2_assoc
    )
    l1i, l2i = miss_counts_hierarchy_batch(
        stats.inst_stack, l1i_blocks, l1_assoc, l2_blocks, l2_assoc
    )
    return [
        _breakdown_from_misses(
            stats, config, float(l1d[j]), float(l2d[j]), float(l1i[j]), float(l2i[j])
        )
        for j, config in enumerate(configs)
    ]


def simulate_cpi(stats: ShardStats, config: PipelineConfig) -> float:
    """Cycles per instruction of one shard on one configuration."""
    return cycle_breakdown(stats, config).total / stats.n


def simulate_cpi_batch(
    stats: ShardStats, configs: Sequence[PipelineConfig]
) -> np.ndarray:
    """CPI of one shard on many configurations (batched miss model)."""
    return np.array(
        [b.total / stats.n for b in cycle_breakdown_batch(stats, configs)],
        dtype=float,
    )
