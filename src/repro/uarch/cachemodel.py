"""Analytic cache-miss model from exact LRU stack distances.

For a fully associative LRU cache of capacity C blocks, an access with
stack distance d hits iff d < C — exactly.  For a set-associative cache
with S sets and A ways, we use the standard probabilistic correction
(a uniformly hashed block conflicts with each of the d intervening distinct
blocks independently with probability 1/S):

    P[miss | d] = P[Binomial(d, 1/S) >= A]

The expectation over the shard's empirical stack-distance distribution
gives the expected miss count.  Cold (first-touch) accesses always miss.
"""

from __future__ import annotations


import numpy as np

from repro.uarch.shardstats import COLD


def _binom_sf(k: int, n: np.ndarray, p: float) -> np.ndarray:
    """P[Binomial(n, p) >= k], vectorized over ``n``.

    Computed by explicit summation of the first ``k`` terms (k = ways is at
    most 8 here, so this is cheap) in a numerically stable way.
    """
    n = np.asarray(n, dtype=float)
    if k <= 0:
        return np.ones_like(n)
    q = 1.0 - p
    # term_0 = q^n; term_{j+1} = term_j * (n-j)/(j+1) * p/q
    with np.errstate(divide="ignore"):
        log_q = np.log(q)
    term = np.exp(n * log_q)
    cdf = term.copy()
    ratio = p / q
    for j in range(k - 1):
        term = term * (n - j) / (j + 1) * ratio
        term = np.maximum(term, 0.0)
        cdf += term
    return np.clip(1.0 - cdf, 0.0, 1.0)


def expected_misses(
    sorted_stack: np.ndarray,
    capacity_blocks: int,
    assoc: int,
) -> float:
    """Expected number of misses for a stream of accesses.

    Parameters
    ----------
    sorted_stack:
        Sorted stack distances (with :data:`COLD` for first touches), as
        stored in :class:`repro.uarch.shardstats.ShardStats`.
    capacity_blocks:
        Total cache capacity in blocks.
    assoc:
        Number of ways.  ``assoc >= capacity_blocks`` means fully
        associative, where the model is exact.
    """
    if capacity_blocks <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_blocks}")
    if assoc <= 0:
        raise ValueError(f"associativity must be positive, got {assoc}")
    m = len(sorted_stack)
    if m == 0:
        return 0.0

    n_cold = int(np.searchsorted(sorted_stack, COLD, side="left"))
    warm = sorted_stack[:n_cold]
    n_cold = m - n_cold

    assoc = min(assoc, capacity_blocks)
    sets = capacity_blocks // assoc
    if sets <= 1:
        # Fully associative: exact hit iff d < capacity.
        warm_misses = float(len(warm) - np.searchsorted(warm, capacity_blocks))
        return warm_misses + n_cold

    # Accesses with d < assoc always hit (cannot be evicted from their set);
    # very large d nearly always miss.  Bucket the rest for speed.
    always_hit = int(np.searchsorted(warm, assoc))
    tail = warm[always_hit:]
    if len(tail) == 0:
        return float(n_cold)
    values, counts = np.unique(tail, return_counts=True)
    pmiss = _binom_sf(assoc, values, 1.0 / sets)
    return float((pmiss * counts).sum()) + n_cold


def miss_counts_hierarchy(
    sorted_stack: np.ndarray,
    l1_blocks: int,
    l1_assoc: int,
    l2_blocks: int,
    l2_assoc: int,
) -> tuple:
    """Expected (L1 misses, L2 misses) for one access stream.

    The L2 is modeled over the same global stack-distance distribution — an
    inclusive-hierarchy approximation that is exact for fully associative
    LRU levels and standard for analytic hierarchy models.
    """
    l1 = expected_misses(sorted_stack, l1_blocks, l1_assoc)
    l2 = expected_misses(sorted_stack, l2_blocks, l2_assoc)
    # An inclusive hierarchy cannot miss more in L2 than in L1.
    return l1, min(l1, l2)
