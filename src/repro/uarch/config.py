"""The Table 2 microarchitecture design space.

Thirteen hardware parameters (y1..y13) spanning pipeline width, out-of-order
window resources, cache hierarchy, and functional-unit counts.  Two
parameters gang several resources together exactly as in the paper:

* **y2** scales the load/store queue, physical registers, instruction queue,
  and reorder buffer in lock-step (six levels);
* **y3** scales L1 and L2 associativity together (four levels).

The space includes deliberately extreme designs "so that models infer
interior points more accurately" (Table 2 caption).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, List, Sequence, Tuple

import numpy as np

# Level tables, straight from Table 2.
WIDTH_LEVELS = (1, 2, 4, 8)                      # y1: 1 :: 2x :: 8
LSQ_LEVELS = (11, 16, 21, 26, 31, 36)            # y2: 11 :: 5+ :: 38 (6 steps)
REGS_LEVELS = (86, 128, 170, 212, 254, 296)      #     86 :: 42+ :: 300
IQ_LEVELS = (22, 32, 42, 52, 62, 72)             #     22 :: 10+ :: 72
ROB_LEVELS = (64, 96, 128, 160, 192, 224)        #     64 :: 32+ :: 224
L1_ASSOC_LEVELS = (1, 2, 4, 8)                   # y3: 1 :: 2x :: 8
L2_ASSOC_LEVELS = (2, 4, 8, 8)                   #     2 :: 2x :: 8 (ganged)
MSHR_LEVELS = (1, 2, 4, 6, 8)                    # y4
DCACHE_KB_LEVELS = (16, 32, 64, 128)             # y5
ICACHE_KB_LEVELS = (16, 32, 64, 128)             # y6
L2_KB_LEVELS = (256, 512, 1024, 2048, 4096)      # y7
L2_LATENCY_LEVELS = (6, 8, 10, 12, 14)           # y8
INT_ALU_LEVELS = (1, 2, 3, 4)                    # y9
INT_MULDIV_LEVELS = (1, 2)                       # y10
FP_ALU_LEVELS = (1, 2, 3)                        # y11
FP_MUL_LEVELS = (1, 2)                           # y12
PORT_LEVELS = (1, 2, 3, 4)                       # y13

_LEVEL_COUNTS = (
    len(WIDTH_LEVELS),
    len(ROB_LEVELS),
    len(L1_ASSOC_LEVELS),
    len(MSHR_LEVELS),
    len(DCACHE_KB_LEVELS),
    len(ICACHE_KB_LEVELS),
    len(L2_KB_LEVELS),
    len(L2_LATENCY_LEVELS),
    len(INT_ALU_LEVELS),
    len(INT_MULDIV_LEVELS),
    len(FP_ALU_LEVELS),
    len(FP_MUL_LEVELS),
    len(PORT_LEVELS),
)

HARDWARE_VARIABLE_NAMES = tuple(f"y{i}" for i in range(1, 14))

HARDWARE_VARIABLE_LABELS = {
    "y1": "pipeline width",
    "y2": "OoO window (LSQ/registers/IQ/ROB)",
    "y3": "L1/L2 associativity",
    "y4": "MSHRs",
    "y5": "data cache size (KB)",
    "y6": "instruction cache size (KB)",
    "y7": "L2 cache size (KB)",
    "y8": "L2 latency (cycles)",
    "y9": "integer ALUs",
    "y10": "integer mul/div units",
    "y11": "float ALUs",
    "y12": "float multipliers",
    "y13": "cache read/write ports",
}

CACHE_BLOCK_BYTES = 64
MEMORY_LATENCY = 80  # cycles; fixed main-memory latency for the CPU study


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """One microarchitecture: a point in the Table 2 space.

    Construct via :func:`config_from_levels`, :func:`sample_configs`, or
    directly.  ``levels`` records the per-parameter level indices used for
    enumeration; the named attributes hold the physical values.
    """

    width: int
    lsq: int
    registers: int
    iq: int
    rob: int
    l1_assoc: int
    l2_assoc: int
    mshr: int
    dcache_kb: int
    icache_kb: int
    l2_kb: int
    l2_latency: int
    int_alu: int
    int_muldiv: int
    fp_alu: int
    fp_mul: int
    ports: int
    levels: Tuple[int, ...] = None

    def as_vector(self) -> np.ndarray:
        """The y1..y13 vector the regression models consume.

        Ganged parameters are represented by one scalar each: y2 by the
        reorder-buffer size, y3 by the L1 associativity.
        """
        return np.array(
            [
                self.width,
                self.rob,
                self.l1_assoc,
                self.mshr,
                self.dcache_kb,
                self.icache_kb,
                self.l2_kb,
                self.l2_latency,
                self.int_alu,
                self.int_muldiv,
                self.fp_alu,
                self.fp_mul,
                self.ports,
            ],
            dtype=float,
        )

    @property
    def key(self) -> str:
        """Stable identifier for caching and reporting."""
        if self.levels is not None:
            return "cfg-" + "".join(str(l) for l in self.levels)
        return "cfg-" + "-".join(str(int(v)) for v in self.as_vector())


def config_from_levels(levels: Sequence[int]) -> PipelineConfig:
    """Build a :class:`PipelineConfig` from 13 per-parameter level indices."""
    levels = tuple(int(l) for l in levels)
    if len(levels) != 13:
        raise ValueError(f"expected 13 level indices, got {len(levels)}")
    for i, (level, count) in enumerate(zip(levels, _LEVEL_COUNTS)):
        if not 0 <= level < count:
            raise ValueError(
                f"level {level} out of range [0, {count}) for y{i + 1}"
            )
    w, oo, a, m, d, ic, l2, lat, ia, im, fa, fm, p = levels
    return PipelineConfig(
        width=WIDTH_LEVELS[w],
        lsq=LSQ_LEVELS[oo],
        registers=REGS_LEVELS[oo],
        iq=IQ_LEVELS[oo],
        rob=ROB_LEVELS[oo],
        l1_assoc=L1_ASSOC_LEVELS[a],
        l2_assoc=L2_ASSOC_LEVELS[a],
        mshr=MSHR_LEVELS[m],
        dcache_kb=DCACHE_KB_LEVELS[d],
        icache_kb=ICACHE_KB_LEVELS[ic],
        l2_kb=L2_KB_LEVELS[l2],
        l2_latency=L2_LATENCY_LEVELS[lat],
        int_alu=INT_ALU_LEVELS[ia],
        int_muldiv=INT_MULDIV_LEVELS[im],
        fp_alu=FP_ALU_LEVELS[fa],
        fp_mul=FP_MUL_LEVELS[fm],
        ports=PORT_LEVELS[p],
        levels=levels,
    )


def design_space_size() -> int:
    """Number of distinct microarchitectures in the Table 2 space."""
    return int(np.prod(_LEVEL_COUNTS))


def sample_configs(n: int, rng: np.random.Generator) -> List[PipelineConfig]:
    """Sample ``n`` configurations uniformly at random (with replacement
    across calls, without within one call when possible)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    seen = set()
    configs = []
    attempts = 0
    while len(configs) < n and attempts < 50 * n:
        levels = tuple(int(rng.integers(0, c)) for c in _LEVEL_COUNTS)
        attempts += 1
        if levels in seen:
            continue
        seen.add(levels)
        configs.append(config_from_levels(levels))
    if len(configs) < n:
        raise RuntimeError(f"could not sample {n} distinct configurations")
    return configs


def enumerate_configs() -> Iterator[PipelineConfig]:
    """Enumerate the entire design space (use sparingly: it is large)."""
    for levels in itertools.product(*(range(c) for c in _LEVEL_COUNTS)):
        yield config_from_levels(levels)


def reference_config() -> PipelineConfig:
    """A mid-range design used as the default in examples and tests."""
    return config_from_levels((2, 3, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1))
