"""Model-guided architecture search over the Table 2 design space.

The paper motivates the correlation metric by exactly this use: "hill
climbing heuristics that use models to find higher performance" (§4.3),
and positions inferred models as the foundation for "control mechanisms
for reconfigurable architectures" (§1).

:class:`ArchitectureSearch` hill-climbs the 13-dimensional level lattice of
the design space for a given application profile, consulting only the
inferred model.  Each step evaluates every +/-1-level neighbor of the
current design and moves to the best predicted one; random restarts escape
local optima.  The search touches a few hundred *predictions* instead of a
few hundred *simulations* — the entire point of inferring the model.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.model import InferredModel
from repro.uarch.config import PipelineConfig, _LEVEL_COUNTS, config_from_levels


@dataclasses.dataclass
class SearchOutcome:
    """Result of a model-guided architecture search."""

    best_config: PipelineConfig
    predicted_cpi: float
    n_predictions: int
    n_restarts: int
    trajectory: List[Tuple[PipelineConfig, float]]  # per-restart local optima


class ArchitectureSearch:
    """Hill climbing on the design-space lattice using model predictions.

    Parameters
    ----------
    model:
        A fitted :class:`InferredModel` over (x1..x13, y1..y13).
    x:
        The software characteristic vector of the application (shard or
        application average) being tuned for.
    objective:
        ``"min"`` (default: minimize predicted CPI) or ``"max"``.
    backend:
        Which timing backend's design-space lattice to climb (``"cpu"``
        or ``"gpu"``); the model must have been fitted on data from the
        same backend.
    """

    def __init__(
        self,
        model: InferredModel,
        x: np.ndarray,
        objective: str = "min",
        backend: str = "cpu",
    ):
        from repro.uarch.backends import get_backend

        if objective not in ("min", "max"):
            raise ValueError(f"objective must be 'min' or 'max', got {objective!r}")
        self.model = model
        self.x = np.asarray(x, dtype=float)
        self.sign = 1.0 if objective == "min" else -1.0
        self.backend = get_backend(backend)
        self._level_counts = self.backend.level_counts
        self._config_from_levels = self.backend.config_from_levels
        self._n_predictions = 0

    # -- prediction helpers ---------------------------------------------------------

    def predict(self, config: PipelineConfig) -> float:
        self._n_predictions += 1
        return float(self.model.predict_one(self.x, config.as_vector()))

    def _score(self, config: PipelineConfig) -> float:
        return self.sign * self.predict(config)

    # -- search ----------------------------------------------------------------------

    def climb(self, start_levels: Sequence[int]) -> Tuple[PipelineConfig, float]:
        """Hill-climb from one starting point to a local optimum."""
        levels = list(start_levels)
        current = self._config_from_levels(levels)
        current_score = self._score(current)
        improved = True
        while improved:
            improved = False
            best_neighbor = None
            best_score = current_score
            for dim, count in enumerate(self._level_counts):
                for delta in (-1, +1):
                    level = levels[dim] + delta
                    if not 0 <= level < count:
                        continue
                    candidate = list(levels)
                    candidate[dim] = level
                    config = self._config_from_levels(candidate)
                    score = self._score(config)
                    if score < best_score - 1e-12:
                        best_score = score
                        best_neighbor = candidate
            if best_neighbor is not None:
                levels = best_neighbor
                current = self._config_from_levels(levels)
                current_score = best_score
                improved = True
        return current, self.sign * current_score

    def search(
        self,
        rng: np.random.Generator,
        n_restarts: int = 4,
    ) -> SearchOutcome:
        """Hill climbing with random restarts."""
        if n_restarts < 1:
            raise ValueError("need at least one restart")
        self._n_predictions = 0
        trajectory: List[Tuple[PipelineConfig, float]] = []
        for _ in range(n_restarts):
            start = [int(rng.integers(0, count)) for count in self._level_counts]
            local_best, value = self.climb(start)
            trajectory.append((local_best, value))
        best_config, best_value = min(
            trajectory, key=lambda item: self.sign * item[1]
        )
        return SearchOutcome(
            best_config=best_config,
            predicted_cpi=best_value,
            n_predictions=self._n_predictions,
            n_restarts=n_restarts,
            trajectory=trajectory,
        )


def random_search_baseline(
    evaluate: Callable[[PipelineConfig], float],
    rng: np.random.Generator,
    budget: int,
) -> Tuple[PipelineConfig, float]:
    """Exhaustive-random baseline: ``budget`` true evaluations, best kept.

    This is what a manager without a model must do — every probe costs a
    real simulation/profiling run rather than a prediction.
    """
    if budget < 1:
        raise ValueError("budget must be positive")
    best_config, best_value = None, np.inf
    for _ in range(budget):
        levels = [int(rng.integers(0, count)) for count in _LEVEL_COUNTS]
        config = config_from_levels(levels)
        value = evaluate(config)
        if value < best_value:
            best_config, best_value = config, value
    return best_config, best_value
