"""GPU-like warp-parallel interval throughput model — the second backend.

The OoO model in :mod:`repro.uarch.pipeline` answers "how long does one
instruction window take on a latency machine"; this module answers the
throughput-machine version of the same question, in the tradition of the
analytic GPU models of Hong & Kim (MWP/CWP) and the cross-machine
black-box GPU modeling of Stevens & Klöckner (PAPERS.md).  It consumes
the *same* :class:`~repro.uarch.shardstats.ShardStats` — opclass mix,
LRU stack distances, dataflow schedules — so the whole profiling, store,
and batched-kernel substrate is reused unchanged; only the assembly of
cycles from those statistics differs:

1. **Occupancy** — warps in flight per SM are limited by warp slots, by
   register-file pressure, and by shared-memory pressure; everything
   latency-shaped below divides by the warps the machine can actually
   keep resident.
2. **Compute throughput** — warp-instruction issue across SMs and SIMT
   lanes, special-function-unit contention for mul/div classes, and a
   dependence bound (the window-64 dataflow schedule) that
   multithreading across warps hides.
3. **Divergence** — taken branches serialize both sides of a warp, a
   fixed reconvergence penalty per taken branch.
4. **Memory** — L1/L2 miss counts come from the same stack-distance
   miss model as the CPU backend; *coalescing efficiency* is derived
   from the spatial locality visible in those distances (the fraction
   of accesses whose 64B-block stack distance falls inside one
   coalescing segment), which converts misses into memory transactions.
   Transaction latency is hidden by warps-in-flight up to the memory
   queue depth; DRAM bandwidth is a hard floor that no amount of
   multithreading hides.

Every component is homogeneous of degree one in the shard's counts
(CPI is scale-invariant) and monotone in the "more parallel hardware"
directions: more warps in flight, deeper memory queues, more SMs, and
wider coalescing segments can never *increase* the modeled cycle count.
The property-test suite in ``tests/test_uarch_gpu.py`` enforces both.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.isa.instructions import OpClass
from repro.uarch.cachemodel import miss_counts_hierarchy
from repro.uarch.config import CACHE_BLOCK_BYTES, ROB_LEVELS
from repro.uarch.pipeline import CycleBreakdown
from repro.uarch.shardstats import ShardStats
from repro.uarch.simulator import Simulator

# Level tables for the 13 GPU hardware parameters.  Mirrors the Table 2
# convention of the CPU space: each axis spans deliberately extreme
# designs so models infer interior points more accurately.  Axes that
# have a CPU analogue sit at the same y-index with a comparable dynamic
# range (y1 issue parallelism, y2 work in flight, y5..y8 the cache
# hierarchy) while the GPU-only axes (g9..g13) span moderate ranges —
# aligned slots and comparable sensitivity profiles are what make model
# specifications portable across backends (see repro.core.transfer).
SM_LEVELS = (2, 4, 8, 16)                        # g1: streaming multiprocessors
WARP_SLOT_LEVELS = (8, 16, 24, 32, 48, 64)       # g2: resident-warp slots per SM
REGFILE_KB_LEVELS = (64, 128, 256, 512)          # g3: register file per SM
SMEM_KB_LEVELS = (16, 32, 64, 96, 128)           # g4: shared memory per SM
GPU_L1_KB_LEVELS = (16, 32, 64, 128)             # g5: L1/texture cache per SM
GPU_ICACHE_KB_LEVELS = (8, 16, 32, 64)           # g6: instruction cache per SM
GPU_L2_KB_LEVELS = (256, 512, 1024, 2048, 4096)  # g7: shared L2
GPU_L2_LATENCY_LEVELS = (20, 40, 60, 80, 100)    # g8: L2 latency (cycles)
DRAM_BPC_LEVELS = (48, 64, 96, 128)              # g9: DRAM bandwidth (bytes/cycle)
COALESCE_SEGMENT_LEVELS = (64, 128, 256)         # g10: coalescing segment (bytes)
LANE_LEVELS = (16, 24, 32)                       # g11: SIMT lanes per SM
MEMQ_LEVELS = (12, 16, 24, 32)                   # g12: outstanding-transaction queue
SFU_LEVELS = (1, 2, 4)                           # g13: special-function units per SM

_GPU_LEVEL_COUNTS = (
    len(SM_LEVELS),
    len(WARP_SLOT_LEVELS),
    len(REGFILE_KB_LEVELS),
    len(SMEM_KB_LEVELS),
    len(GPU_L1_KB_LEVELS),
    len(GPU_ICACHE_KB_LEVELS),
    len(GPU_L2_KB_LEVELS),
    len(GPU_L2_LATENCY_LEVELS),
    len(DRAM_BPC_LEVELS),
    len(COALESCE_SEGMENT_LEVELS),
    len(LANE_LEVELS),
    len(MEMQ_LEVELS),
    len(SFU_LEVELS),
)

# The GPU space reuses the y1..y13 variable names so profile datasets,
# chromosomes, and model specifications are *shape-compatible* across
# backends — the precondition for the cross-backend transfer study.
GPU_HARDWARE_VARIABLE_LABELS = {
    "y1": "streaming multiprocessors",
    "y2": "resident-warp slots per SM",
    "y3": "register file per SM (KB)",
    "y4": "shared memory per SM (KB)",
    "y5": "L1 cache per SM (KB)",
    "y6": "instruction cache per SM (KB)",
    "y7": "L2 cache size (KB)",
    "y8": "L2 latency (cycles)",
    "y9": "DRAM bandwidth (bytes/cycle)",
    "y10": "coalescing segment (bytes)",
    "y11": "SIMT lanes per SM",
    "y12": "memory queue depth per SM",
    "y13": "special-function units per SM",
}

#: Fixed workload/machine constants (not searched, like MEMORY_LATENCY on
#: the CPU side).
GPU_MEMORY_LATENCY = 400       # cycles to DRAM
WARP_THREADS = 32              # logical threads per warp
REGS_PER_THREAD = 32           # architected registers the kernel uses
SMEM_PER_BLOCK_KB = 8.0        # shared memory one thread block allocates
WARPS_PER_BLOCK = 4            # warps per thread block
DIVERGENCE_PENALTY = 8.0       # reconvergence cycles per taken branch
SFU_ISSUE_INTERVAL = 4.0       # cycles/op on a special-function unit
GPU_L1_ASSOC = 4               # fixed associativities (not a search axis)
GPU_L2_ASSOC = 8
TRANSACTION_BYTES = 32         # minimum DRAM transaction granule


@dataclasses.dataclass(frozen=True)
class GpuConfig:
    """One GPU design point.  Construct via :func:`gpu_config_from_levels`."""

    n_sm: int
    max_warps: int
    regfile_kb: int
    smem_kb: int
    l1_kb: int
    icache_kb: int
    l2_kb: int
    l2_latency: int
    dram_bpc: int
    coalesce_bytes: int
    lanes: int
    memq: int
    sfu: int
    levels: Tuple[int, ...] = None

    def as_vector(self) -> np.ndarray:
        """The 13-element hardware vector the regression models consume."""
        return np.array(
            [
                self.n_sm,
                self.max_warps,
                self.regfile_kb,
                self.smem_kb,
                self.l1_kb,
                self.icache_kb,
                self.l2_kb,
                self.l2_latency,
                self.dram_bpc,
                self.coalesce_bytes,
                self.lanes,
                self.memq,
                self.sfu,
            ],
            dtype=float,
        )

    @property
    def key(self) -> str:
        """Stable identifier for caching and reporting."""
        if self.levels is not None:
            return "gpu-" + "".join(str(l) for l in self.levels)
        return "gpu-" + "-".join(str(int(v)) for v in self.as_vector())


def gpu_config_from_levels(levels: Sequence[int]) -> GpuConfig:
    """Build a :class:`GpuConfig` from 13 per-parameter level indices."""
    levels = tuple(int(l) for l in levels)
    if len(levels) != 13:
        raise ValueError(f"expected 13 level indices, got {len(levels)}")
    for i, (level, count) in enumerate(zip(levels, _GPU_LEVEL_COUNTS)):
        if not 0 <= level < count:
            raise ValueError(
                f"level {level} out of range [0, {count}) for g{i + 1}"
            )
    sm, ws, rf, sh, l1, ic, l2, lat, bw, co, la, mq, sf = levels
    return GpuConfig(
        n_sm=SM_LEVELS[sm],
        max_warps=WARP_SLOT_LEVELS[ws],
        regfile_kb=REGFILE_KB_LEVELS[rf],
        smem_kb=SMEM_KB_LEVELS[sh],
        l1_kb=GPU_L1_KB_LEVELS[l1],
        icache_kb=GPU_ICACHE_KB_LEVELS[ic],
        l2_kb=GPU_L2_KB_LEVELS[l2],
        l2_latency=GPU_L2_LATENCY_LEVELS[lat],
        dram_bpc=DRAM_BPC_LEVELS[bw],
        coalesce_bytes=COALESCE_SEGMENT_LEVELS[co],
        lanes=LANE_LEVELS[la],
        memq=MEMQ_LEVELS[mq],
        sfu=SFU_LEVELS[sf],
        levels=levels,
    )


def gpu_design_space_size() -> int:
    """Number of distinct GPU designs in the space."""
    return int(np.prod(_GPU_LEVEL_COUNTS))


def sample_gpu_configs(n: int, rng: np.random.Generator) -> List[GpuConfig]:
    """Sample ``n`` distinct GPU configurations uniformly at random."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    seen = set()
    configs = []
    attempts = 0
    while len(configs) < n and attempts < 50 * n:
        levels = tuple(int(rng.integers(0, c)) for c in _GPU_LEVEL_COUNTS)
        attempts += 1
        if levels in seen:
            continue
        seen.add(levels)
        configs.append(gpu_config_from_levels(levels))
    if len(configs) < n:
        raise RuntimeError(f"could not sample {n} distinct configurations")
    return configs


def enumerate_gpu_configs() -> Iterator[GpuConfig]:
    """Enumerate the entire GPU design space (use sparingly)."""
    for levels in itertools.product(*(range(c) for c in _GPU_LEVEL_COUNTS)):
        yield gpu_config_from_levels(levels)


def reference_gpu_config() -> GpuConfig:
    """A mid-range GPU used as the default in examples and tests."""
    return gpu_config_from_levels((2, 3, 2, 2, 2, 2, 2, 2, 2, 1, 2, 2, 1))


def warps_in_flight(config: GpuConfig) -> int:
    """Resident warps per SM after register and shared-memory pressure.

    The classic occupancy calculation: warp slots cap residency, each
    warp consumes ``REGS_PER_THREAD * 4 * WARP_THREADS`` bytes of
    register file, and shared memory admits whole thread blocks of
    :data:`WARPS_PER_BLOCK` warps each.
    """
    by_regs = config.regfile_kb * 1024 // (REGS_PER_THREAD * 4 * WARP_THREADS)
    by_smem = int(config.smem_kb / SMEM_PER_BLOCK_KB) * WARPS_PER_BLOCK
    return max(1, min(config.max_warps, by_regs, by_smem))


def gpu_occupancy(config: GpuConfig) -> float:
    """Fraction of warp slots actually occupied (0, 1]."""
    return warps_in_flight(config) / config.max_warps


def coalescing_fraction(stats: ShardStats, config: GpuConfig) -> float:
    """Fraction of data accesses the coalescer merges into a neighbor.

    An access whose 64B-block LRU stack distance is smaller than the
    coalescing segment (in blocks) touches a block so recently used that,
    across the lanes of a warp, it lands in an already-open segment.
    This derives spatial locality from the *existing* stack-distance
    machinery instead of requiring new trace passes, and is monotone in
    the segment size: a wider segment can only merge more accesses.
    """
    if stats.n_data_accesses == 0:
        return 1.0
    seg_blocks = max(1, config.coalesce_bytes // CACHE_BLOCK_BYTES)
    near = int(np.searchsorted(stats.data_stack, seg_blocks, side="left"))
    return near / stats.n_data_accesses


def _transactions_per_memop(stats: ShardStats, config: GpuConfig) -> float:
    """Memory transactions one warp-level memory instruction issues.

    Perfectly coalesced lanes share one transaction; fully scattered
    lanes issue one each.  Interpolates by the measured spatial
    locality, so the value lives in ``[1, lanes]``.
    """
    spatial = coalescing_fraction(stats, config)
    return 1.0 + (config.lanes - 1) * (1.0 - spatial)


def gpu_cycle_breakdown(stats: ShardStats, config: GpuConfig) -> CycleBreakdown:
    """Cycle components of ``stats`` on a GPU design.

    Returns the same :class:`CycleBreakdown` shape as the CPU backend
    (``branch`` holds the divergence component) so downstream reporting
    and the two-backend contract suite treat both models uniformly.
    """
    l1_blocks = config.l1_kb * 1024 // CACHE_BLOCK_BYTES
    l2_blocks = config.l2_kb * 1024 // CACHE_BLOCK_BYTES
    li_blocks = config.icache_kb * 1024 // CACHE_BLOCK_BYTES
    l1d_miss, l2d_miss = miss_counts_hierarchy(
        stats.data_stack, l1_blocks, GPU_L1_ASSOC, l2_blocks, GPU_L2_ASSOC
    )
    l1i_miss, l2i_miss = miss_counts_hierarchy(
        stats.inst_stack, li_blocks, GPU_L1_ASSOC, l2_blocks, GPU_L2_ASSOC
    )
    return _gpu_breakdown_from_misses(
        stats, config, l1d_miss, l2d_miss, l1i_miss, l2i_miss
    )


def _gpu_breakdown_from_misses(
    stats: ShardStats,
    config: GpuConfig,
    l1d_miss: float,
    l2d_miss: float,
    l1i_miss: float,
    l2i_miss: float,
) -> CycleBreakdown:
    """Assemble GPU cycle components from pre-computed miss counts.

    Shared by the per-pair and batched paths exactly like
    :func:`repro.uarch.pipeline._breakdown_from_misses`, so the two are
    bit-identical.
    """
    n = stats.n
    counts = stats.opclass_counts.astype(float)
    warps = warps_in_flight(config)
    # Memory parallelism: every SM keeps up to min(warps, memq) requests
    # outstanding; latency divides by the machine-wide total.
    mem_par = config.n_sm * min(warps, config.memq)
    # A warp-instruction over fewer lanes than WARP_THREADS threads takes
    # proportionally more issue slots.
    warp_cost = WARP_THREADS / config.lanes

    # --- 1. compute throughput ----------------------------------------------------
    issue = n * warp_cost / config.n_sm
    sfu_ops = counts[OpClass.FP_MULDIV] + counts[OpClass.INT_MULDIV]
    sfu = sfu_ops * SFU_ISSUE_INTERVAL * warp_cost / (config.n_sm * config.sfu)
    # In-order SIMT cores expose dependence chains; interleaving resident
    # warps hides them.  The window-64 dataflow schedule stands in for a
    # single warp's chain length.
    dep = stats.dataflow_cycles[ROB_LEVELS[0]] / (config.n_sm * warps)
    core = max(issue, sfu, dep)

    # --- 2. branch divergence -----------------------------------------------------
    branch = stats.taken * DIVERGENCE_PENALTY * warp_cost / config.n_sm

    # --- 3. data memory -----------------------------------------------------------
    txn = _transactions_per_memop(stats, config)
    l2_txn = (l1d_miss - l2d_miss) * txn
    dram_txn = l2d_miss * txn
    latency_cycles = l2_txn * config.l2_latency + dram_txn * GPU_MEMORY_LATENCY
    exposed = latency_cycles / mem_par
    # Bandwidth is a floor multithreading cannot hide.
    dram_cycles = dram_txn * TRANSACTION_BYTES / config.dram_bpc
    data_memory = max(exposed, dram_cycles)

    # --- 4. instruction memory ----------------------------------------------------
    inst_cycles = l1i_miss * config.l2_latency + l2i_miss * (
        GPU_MEMORY_LATENCY - config.l2_latency
    )
    inst_memory = inst_cycles / mem_par

    return CycleBreakdown(
        core=float(core),
        branch=float(branch),
        data_memory=float(data_memory),
        inst_memory=float(inst_memory),
    )


def gpu_cycle_breakdown_batch(
    stats: ShardStats, configs: Sequence[GpuConfig]
) -> List[CycleBreakdown]:
    """:func:`gpu_cycle_breakdown` for many designs of one shard.

    The stack-distance miss histograms run once per *distinct* cache
    geometry through the batched kernel, exactly like the CPU path.
    """
    from repro.kernels.batched import miss_counts_hierarchy_batch

    if not configs:
        return []
    l1d_blocks = np.array(
        [c.l1_kb * 1024 // CACHE_BLOCK_BYTES for c in configs], dtype=np.int64
    )
    l1i_blocks = np.array(
        [c.icache_kb * 1024 // CACHE_BLOCK_BYTES for c in configs], dtype=np.int64
    )
    l2_blocks = np.array(
        [c.l2_kb * 1024 // CACHE_BLOCK_BYTES for c in configs], dtype=np.int64
    )
    l1_assoc = np.full(len(configs), GPU_L1_ASSOC, dtype=np.int64)
    l2_assoc = np.full(len(configs), GPU_L2_ASSOC, dtype=np.int64)

    l1d, l2d = miss_counts_hierarchy_batch(
        stats.data_stack, l1d_blocks, l1_assoc, l2_blocks, l2_assoc
    )
    l1i, l2i = miss_counts_hierarchy_batch(
        stats.inst_stack, l1i_blocks, l1_assoc, l2_blocks, l2_assoc
    )
    return [
        _gpu_breakdown_from_misses(
            stats, config, float(l1d[j]), float(l2d[j]), float(l1i[j]), float(l2i[j])
        )
        for j, config in enumerate(configs)
    ]


def simulate_gpu_cpi(stats: ShardStats, config: GpuConfig) -> float:
    """Cycles per (trace) instruction of one shard on one GPU design."""
    return gpu_cycle_breakdown(stats, config).total / stats.n


def simulate_gpu_cpi_batch(
    stats: ShardStats, configs: Sequence[GpuConfig]
) -> np.ndarray:
    """CPI of one shard on many GPU designs (batched miss model)."""
    return np.array(
        [b.total / stats.n for b in gpu_cycle_breakdown_batch(stats, configs)],
        dtype=float,
    )


class GpuSimulator(Simulator):
    """Trace-driven GPU throughput simulation over the GPU design space.

    Shares the shard-statistics cache, the batched
    :meth:`~repro.uarch.simulator.Simulator.stats_for_many` path, and
    every aggregation entry point with the CPU simulator — only the
    cycle assembly differs — so ``repro.kernels.batched`` and the
    store-backed drivers work unchanged against this backend.
    """

    def cpi_from_stats(self, stats: ShardStats, config: GpuConfig) -> float:
        return simulate_gpu_cpi(stats, config)

    def cpi_batch_from_stats(
        self, stats: ShardStats, configs: Sequence[GpuConfig]
    ) -> np.ndarray:
        return simulate_gpu_cpi_batch(stats, configs)

    def breakdown_from_stats(
        self, stats: ShardStats, config: GpuConfig
    ) -> CycleBreakdown:
        return gpu_cycle_breakdown(stats, config)
