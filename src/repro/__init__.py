"""repro — Inferred Models for Dynamic and Sparse Hardware-Software Spaces.

A full reproduction of Wu & Lee (MICRO 2012): integrated hardware-software
performance models inferred by statistical regression with an automated
genetic specification search, evaluated on a synthetic SPEC2006-like
workload suite over an out-of-order design space, plus the domain-specific
SpMV case study with coordinated hardware-software tuning.

Subpackages
-----------
``repro.core``
    Regression models, transformations, genetic search, update policies.
``repro.isa`` / ``repro.workloads``
    Trace format and the synthetic application suite.
``repro.profiling``
    Microarchitecture-independent shard profiling (Table 1).
``repro.uarch``
    The Table 2 design space and the out-of-order timing model.
``repro.spmv``
    Sparse matrix-vector multiply: matrices, BCSR blocking, cache
    simulation, energy, and coordinated tuning (§5).
``repro.experiments``
    One driver per paper table/figure.
"""

__version__ = "1.0.0"
