"""Deterministic process-level parallelism for the experiment pipeline.

The paper parallelizes its embarrassingly parallel inner loops with R's
doMC (§4.2); this module is the Python equivalent used by the genetic
search, the dataset builders, and the SpMV experiment drivers.

Design rules that keep every result identical at any worker count:

* all randomness is drawn (or seeded) *serially* before any fan-out —
  workers receive data or seeds, never a shared generator;
* :func:`parallel_map` / :func:`parallel_starmap` preserve input order, so
  reductions see results in the same order the serial loop would produce;
* worker counts come from one place (:func:`resolve_workers`), so
  ``REPRO_WORKERS`` uniformly controls the whole pipeline;
* metrics recorded by jobs (``repro.obs``) aggregate deterministically:
  with ``collect_metrics=True`` each job runs against a fresh registry in
  its worker, and the per-job snapshots are merged back into the parent's
  registry **in input order** — so counters and histograms are identical
  to a serial run for any worker split (property-tested in
  ``tests/test_obs.py``).

``REPRO_WORKERS`` semantics: unset or empty means serial (1); ``0`` or
``auto`` means one worker per CPU; any other integer is used as given
(minimum 1).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(n_workers: Optional[int] = None) -> int:
    """Worker count: explicit argument wins, then ``$REPRO_WORKERS``, then 1.

    ``0`` (or ``auto`` in the environment variable) selects the CPU count.
    """
    if n_workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if raw == "":
            return 1
        if raw == "auto":
            n_workers = 0
        else:
            try:
                n_workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV} must be an integer or 'auto', got {raw!r}"
                ) from None
    if n_workers == 0:
        n_workers = multiprocessing.cpu_count()
    return max(1, int(n_workers))


def chunk_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent child seeds derived from ``base_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    statistically independent of each other *and* of the parent stream —
    handing seed *i* to job *i* gives identical results however the jobs
    are distributed over workers.
    """
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


def _collected_call(job) -> tuple:
    """Run one job against a fresh metrics registry (worker shim).

    Isolation matters under the default ``fork`` start method: the child's
    global registry is a *copy* of the parent's, so snapshotting it
    directly would re-count everything the parent had already recorded.
    """
    from repro import obs

    fn, args = job
    with obs.collect() as registry:
        result = fn(*args)
    return result, registry.snapshot()


def _run_pool_collected(fn, arg_tuples, workers: int, chunksize: int) -> list:
    from repro import obs

    jobs = [(fn, args) for args in arg_tuples]
    with multiprocessing.Pool(min(workers, len(jobs))) as pool:
        outcomes = pool.map(_collected_call, jobs, chunksize=chunksize)
    results = []
    for result, snapshot in outcomes:  # merge in input order: deterministic
        obs.merge(snapshot)
        results.append(result)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_workers: Optional[int] = None,
    chunksize: int = 1,
    collect_metrics: bool = False,
) -> List[R]:
    """Order-preserving map over a process pool.

    Serial (plain loop, no pool, no pickling) when the resolved worker
    count is 1 or there is at most one item.  ``fn`` must be a module-level
    callable for the parallel path.  With ``collect_metrics=True``, metrics
    the jobs record via :mod:`repro.obs` are shipped back as per-job
    snapshots and merged into this process's registry in input order.
    """
    workers = resolve_workers(n_workers)
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if collect_metrics:
        return _run_pool_collected(fn, [(item,) for item in items], workers, chunksize)
    with multiprocessing.Pool(min(workers, len(items))) as pool:
        return pool.map(fn, items, chunksize=chunksize)


def parallel_starmap(
    fn: Callable[..., R],
    arg_tuples: Iterable[tuple],
    n_workers: Optional[int] = None,
    chunksize: int = 1,
    collect_metrics: bool = False,
) -> List[R]:
    """:func:`parallel_map` for functions of several arguments."""
    workers = resolve_workers(n_workers)
    jobs = list(arg_tuples)
    if workers <= 1 or len(jobs) <= 1:
        return [fn(*args) for args in jobs]
    if collect_metrics:
        return _run_pool_collected(fn, jobs, workers, chunksize)
    with multiprocessing.Pool(min(workers, len(jobs))) as pool:
        return pool.starmap(fn, jobs, chunksize=chunksize)
