"""Deterministic process-level parallelism for the experiment pipeline.

The paper parallelizes its embarrassingly parallel inner loops with R's
doMC (§4.2); this module is the Python equivalent used by the genetic
search, the dataset builders, and the SpMV experiment drivers.

Design rules that keep every result identical at any worker count:

* all randomness is drawn (or seeded) *serially* before any fan-out —
  workers receive data or seeds, never a shared generator;
* :func:`parallel_map` / :func:`parallel_starmap` preserve input order, so
  reductions see results in the same order the serial loop would produce;
* worker counts come from one place (:func:`resolve_workers`), so
  ``REPRO_WORKERS`` uniformly controls the whole pipeline;
* job arguments backed by the :mod:`repro.store` mmap column store are
  shipped as tiny column references instead of pickled arrays (see
  :func:`_swizzle_jobs`) — workers re-map the same pages, the results
  are unchanged;
* metrics recorded by jobs (``repro.obs``) aggregate deterministically:
  with ``collect_metrics=True`` each job runs against a fresh registry in
  its worker, and the per-job snapshots are merged back into the parent's
  registry **in input order** — so counters and histograms are identical
  to a serial run for any worker split (property-tested in
  ``tests/test_obs.py``).

``REPRO_WORKERS`` semantics: unset or empty means serial (1); ``0`` or
``auto`` means one worker per CPU; any other integer is used as given
(minimum 1).

**Supervised mode** (``supervised=True``, or ``REPRO_SUPERVISED=1``)
additionally survives worker failure: jobs run on a
:class:`concurrent.futures.ProcessPoolExecutor`, and when a worker dies
(SIGKILL, ``os._exit``, OOM — surfaced as ``BrokenProcessPool``) or hangs
past ``timeout_s``, the pool is torn down and only the unfinished jobs
are resubmitted to a fresh one, up to ``max_attempts`` rounds.  Because
jobs are pure functions of their arguments and results/metrics are
slotted by input index, a run that loses workers returns bit-identical
results (and obs counters) to an undisturbed or serial run — this is the
substrate the genetic search's fitness evaluation rides on, and what the
killed-worker chaos tests exercise.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

WORKERS_ENV = "REPRO_WORKERS"
SUPERVISED_ENV = "REPRO_SUPERVISED"

#: Resubmission rounds before a supervised run declares the work impossible.
DEFAULT_MAX_ATTEMPTS = 4


class WorkerFailure(RuntimeError):
    """Supervised jobs kept dying/hanging past the resubmission budget."""


def resolve_workers(n_workers: Optional[int] = None) -> int:
    """Worker count: explicit argument wins, then ``$REPRO_WORKERS``, then 1.

    ``0`` (or ``auto`` in the environment variable) selects the CPU count.
    """
    if n_workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if raw == "":
            return 1
        if raw == "auto":
            n_workers = 0
        else:
            try:
                n_workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV} must be an integer or 'auto', got {raw!r}"
                ) from None
    if n_workers == 0:
        n_workers = multiprocessing.cpu_count()
    return max(1, int(n_workers))


def resolve_supervised(supervised: Optional[bool] = None) -> bool:
    """Supervised-mode switch: explicit argument wins, then
    ``$REPRO_SUPERVISED`` (``1``/``true``/``on``), default off."""
    if supervised is not None:
        return bool(supervised)
    return os.environ.get(SUPERVISED_ENV, "").strip().lower() in ("1", "true", "on")


def chunk_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent child seeds derived from ``base_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    statistically independent of each other *and* of the parent stream —
    handing seed *i* to job *i* gives identical results however the jobs
    are distributed over workers.
    """
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


def _thawed_call(fn, frozen: bytes):
    """Worker shim for swizzled jobs: resolve store references, then call."""
    from repro.store.artifacts import thaw

    return fn(*thaw(frozen))


def _swizzle_jobs(fn, jobs: List[tuple]) -> tuple:
    """Replace store-backed arrays in job arguments with column references.

    When the trace/dataset store is enabled and this process holds at
    least one mapping, each job's argument tuple is frozen with the
    store-aware pickler: arrays living in the store cross the pool
    boundary as (root, key, offset) references and are re-mapped in the
    worker — the processes share pages instead of shipping copies.
    Arguments not backed by the store pickle by value exactly as before,
    and when the store is disabled (or nothing is mapped) jobs are passed
    through untouched.
    """
    from repro import store

    if not (store.enabled() and store.any_mapped()):
        return fn, jobs
    from repro.store.artifacts import freeze

    # No parent-side counter here: swizzling is transport, and a metric
    # recorded only on the parallel path would break the "pool metrics ==
    # serial metrics" invariant.  Store traffic is still visible through
    # store.refs_frozen / store.maps.
    return _thawed_call, [(fn, freeze(args)) for args in jobs]


def _collected_call(job) -> tuple:
    """Run one job against a fresh metrics registry (worker shim).

    Isolation matters under the default ``fork`` start method: the child's
    global registry is a *copy* of the parent's, so snapshotting it
    directly would re-count everything the parent had already recorded.
    """
    from repro import obs

    fn, args = job
    with obs.collect() as registry:
        result = fn(*args)
    return result, registry.snapshot()


def _run_pool_collected(fn, arg_tuples, workers: int, chunksize: int) -> list:
    from repro import obs

    jobs = [(fn, args) for args in arg_tuples]
    with multiprocessing.Pool(min(workers, len(jobs))) as pool:
        outcomes = pool.map(_collected_call, jobs, chunksize=chunksize)
    results = []
    for result, snapshot in outcomes:  # merge in input order: deterministic
        obs.merge(snapshot)
        results.append(result)
    return results


# -- supervised execution --------------------------------------------------------------


def _supervised_call(job: tuple) -> tuple:
    """Worker shim for supervised jobs.

    Passes through the ``parallel.job`` fault site (so chaos plans can
    kill/raise/delay inside the worker) and, when metrics collection is
    on, runs the job against a fresh registry exactly like
    :func:`_collected_call`.
    """
    from repro import faults, obs

    fn, args, collect = job
    faults.site("parallel.job")
    if not collect:
        return fn(*args), None
    with obs.collect() as registry:
        result = fn(*args)
    return result, registry.snapshot()


def _kill_pool(executor: ProcessPoolExecutor) -> None:
    """Forcibly stop an executor whose workers are hung or dead."""
    processes = list(getattr(executor, "_processes", {}).values())
    for process in processes:
        if process.is_alive():
            process.kill()
    executor.shutdown(wait=True, cancel_futures=True)


def _run_supervised(
    fn,
    arg_tuples: Sequence[tuple],
    workers: int,
    collect_metrics: bool,
    timeout_s: Optional[float],
    max_attempts: int,
) -> list:
    """Run jobs with dead/hung-worker detection and resubmission.

    Results land in input-index slots, and metric snapshots are merged in
    input order only after every job has succeeded, so any pattern of
    worker deaths aggregates to exactly the serial outcome.
    """
    from repro import obs

    outcomes: List[Optional[tuple]] = [None] * len(arg_tuples)
    pending = list(range(len(arg_tuples)))
    attempt = 0
    while pending:
        attempt += 1
        if attempt > max_attempts:
            raise WorkerFailure(
                f"{len(pending)} job(s) still unfinished after "
                f"{max_attempts} rounds of worker failures"
            )
        executor = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
        futures = {}
        broken = False
        try:
            for index in pending:
                futures[
                    executor.submit(
                        _supervised_call, (fn, arg_tuples[index], collect_metrics)
                    )
                ] = index
        except BrokenProcessPool:
            broken = True
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        not_done = set(futures)
        while not_done and not broken:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                obs.counter("parallel.hung_workers").inc()
                broken = True
                break
            done, not_done = wait(
                not_done, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:  # hung: nothing completed within the budget
                obs.counter("parallel.hung_workers").inc()
                broken = True
                break
            for future in done:
                index = futures[future]
                try:
                    outcomes[index] = future.result()
                except BrokenProcessPool:
                    obs.counter("parallel.worker_deaths").inc()
                    broken = True
                except BaseException:
                    # The job itself failed — that is the caller's bug (or
                    # an injected `raise`), not infrastructure loss: stop
                    # the pool and propagate instead of retrying.
                    _kill_pool(executor)
                    raise
        if broken:
            _kill_pool(executor)
        else:
            executor.shutdown(wait=True)
        pending = [i for i in range(len(arg_tuples)) if outcomes[i] is None]
        if pending and broken:
            obs.counter("parallel.resubmissions").inc(len(pending))
    results = []
    for result, snapshot in outcomes:
        if collect_metrics and snapshot is not None:
            obs.merge(snapshot)
        results.append(result)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_workers: Optional[int] = None,
    chunksize: int = 1,
    collect_metrics: bool = False,
    supervised: Optional[bool] = None,
    timeout_s: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> List[R]:
    """Order-preserving map over a process pool.

    Serial (plain loop, no pool, no pickling) when the resolved worker
    count is 1 or there is at most one item.  ``fn`` must be a module-level
    callable for the parallel path.  With ``collect_metrics=True``, metrics
    the jobs record via :mod:`repro.obs` are shipped back as per-job
    snapshots and merged into this process's registry in input order.
    ``supervised`` (default ``$REPRO_SUPERVISED``) detects dead/hung
    workers and resubmits their jobs; see the module docstring.
    """
    workers = resolve_workers(n_workers)
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    return parallel_starmap(
        fn,
        [(item,) for item in items],
        n_workers=workers,
        chunksize=chunksize,
        collect_metrics=collect_metrics,
        supervised=supervised,
        timeout_s=timeout_s,
        max_attempts=max_attempts,
    )


def parallel_starmap(
    fn: Callable[..., R],
    arg_tuples: Iterable[tuple],
    n_workers: Optional[int] = None,
    chunksize: int = 1,
    collect_metrics: bool = False,
    supervised: Optional[bool] = None,
    timeout_s: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> List[R]:
    """:func:`parallel_map` for functions of several arguments."""
    workers = resolve_workers(n_workers)
    jobs = list(arg_tuples)
    if workers <= 1 or len(jobs) <= 1:
        return [fn(*args) for args in jobs]
    fn, jobs = _swizzle_jobs(fn, jobs)
    if resolve_supervised(supervised):
        return _run_supervised(
            fn, jobs, workers, collect_metrics, timeout_s, max_attempts
        )
    if collect_metrics:
        return _run_pool_collected(fn, jobs, workers, chunksize)
    with multiprocessing.Pool(min(workers, len(jobs))) as pool:
        return pool.starmap(fn, jobs, chunksize=chunksize)
