"""Struct-of-arrays batched kernels (see :mod:`repro.kernels.batched`)."""

from repro.kernels.batched import (
    expected_misses_batch,
    miss_counts_hierarchy_batch,
    simulate_caches,
    stack_distances_many,
    stack_distances_many_addresses,
)

__all__ = [
    "expected_misses_batch",
    "miss_counts_hierarchy_batch",
    "simulate_caches",
    "stack_distances_many",
    "stack_distances_many_addresses",
]
