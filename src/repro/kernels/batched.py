"""Struct-of-arrays batched cache and stack-distance kernels.

The per-pair kernels (:mod:`repro.spmv.cache`,
:mod:`repro.profiling.reuse`, :mod:`repro.uarch.cachemodel`) evaluate one
(configuration, trace) pair per call, so sweeping a thousand cache
architectures over one trace repeats the same argsorts and stack-distance
passes a thousand times.  The batched kernels here restructure that work
with configurations as a leading struct-of-arrays axis so shared
sub-computations are hoisted and executed once:

* :func:`simulate_caches` — many cold set-associative caches over one
  address stream.  LRU configurations sharing a ``(line shift, set
  count)`` geometry share one grouped stack-distance pass; per-config
  miss counts then cost one ``searchsorted`` each, because a cold LRU
  cache misses exactly on per-set stack distance >= ways.  Randomized
  policies (NMRU/RND) consume per-config RNG streams and fall back to
  the per-pair simulator unchanged.
* :func:`stack_distances_many` — stack distances for many short streams
  in one vectorized pass.  Streams are compacted to disjoint dense block
  id ranges and concatenated: no same-block window can cross a stream
  boundary, and distances depend only on the equality pattern, so the
  sliced-out results are bit-identical to per-stream calls while the
  O(M log^2 M) kernel's per-call setup is paid once per chunk.
* :func:`expected_misses_batch` — the analytic miss model over many
  (capacity, associativity) pairs of one shard.  The sorted-unique pass
  over the warm distances (the oracle's dominant cost) is hoisted: each
  config's tail histogram is a suffix of the global one.  Distinct
  (capacity, associativity) pairs are computed exactly once with the
  per-pair oracle's arithmetic on the same contiguous arrays, so results
  are bit-identical floats, not merely close.

Every batched kernel is checked against its retained per-pair oracle by
the hypothesis equivalence suite in ``tests/test_kernels_batched.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import obs
from repro.profiling.reuse import (
    COLD_DISTANCE,
    _block_ids,
    stack_distances_from_blocks,
)
from repro.uarch.cachemodel import _binom_sf

#: Target chunk size (total accesses) for stream concatenation.  Large
#: enough to amortize per-call setup, small enough to keep the
#: O(M log^2 M) log factor and working set in check.
MAX_BATCH = 1 << 17

#: Streams at least this long bypass concatenation and run one direct
#: per-stream pass.  Batching pays an extra dense-compaction sort per
#: stream to share the kernel's fixed setup; on long streams the setup
#: is already amortized and the extra sort makes batching a net loss
#: (measured crossover between ~400 and ~1500 accesses), so the batched
#: entry point is never slower than the per-stream loop in either
#: regime.
DIRECT_MIN = 1 << 10


def _lru_geometry(size_bytes: int, line_bytes: int, ways: int) -> Tuple[int, int]:
    """(line shift, set count) with :class:`SetAssociativeCache`'s checks."""
    if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
        raise ValueError("cache geometry must be positive")
    n_lines = size_bytes // line_bytes
    if n_lines * line_bytes != size_bytes:
        raise ValueError("size must be a multiple of the line size")
    n_sets = max(1, n_lines // ways)
    if n_sets * ways * line_bytes != size_bytes:
        raise ValueError("size must be a multiple of line_bytes * ways")
    return line_bytes.bit_length() - 1, n_sets


def simulate_caches(
    addresses: np.ndarray,
    specs: Sequence[Tuple[int, int, int, str]],
    seed: int = 0,
) -> np.ndarray:
    """Miss counts of many cold caches over one address stream.

    Parameters
    ----------
    addresses:
        Byte addresses in program order (one shared trace).
    specs:
        One ``(size_bytes, line_bytes, ways, policy)`` tuple per
        configuration — the struct-of-arrays axis.
    seed:
        Seed for the randomized policies; each non-LRU config gets a
        fresh ``default_rng(seed)`` exactly as
        :func:`repro.spmv.machine.run_trace` constructs its cache.

    Returns
    -------
    ``int64`` array of per-config miss counts, bit-identical to
    ``SetAssociativeCache(*spec, seed).simulate(addresses)`` per config.
    """
    addrs = np.asarray(addresses, dtype=np.int64)
    m = len(addrs)
    out = np.zeros(len(specs), dtype=np.int64)
    with obs.span("kernel.cache_sim_batch"):
        obs.counter("kernel.batched_pairs").inc(len(specs))
        obs.counter("kernel.batched_accesses").inc(len(specs) * m)
        groups: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        fallback: List[Tuple[int, Tuple[int, int, int, str]]] = []
        for idx, spec in enumerate(specs):
            size_bytes, line_bytes, ways, policy = spec
            _lru_geometry(size_bytes, line_bytes, ways)  # validate eagerly
            if policy == "LRU":
                shift, n_sets = _lru_geometry(size_bytes, line_bytes, ways)
                groups.setdefault((shift, n_sets), []).append((idx, ways))
            else:
                fallback.append((idx, spec))
        if m:
            positions = np.arange(m, dtype=np.int64)
            for (shift, n_sets), members in groups.items():
                lines = addrs >> np.int64(shift)
                # Group by set, preserving per-set program order (unique
                # composite keys make the unstable argsort grouping-stable).
                sets = (lines % n_sets).astype(np.int64)
                order = np.argsort(sets * np.int64(m) + positions)
                distances, _ = stack_distances_from_blocks(lines[order])
                distances.sort()
                ways_arr = np.array([w for _, w in members], dtype=np.int64)
                misses = m - np.searchsorted(distances, ways_arr, side="left")
                for (idx, _), n_miss in zip(members, misses):
                    out[idx] = n_miss
        if fallback:
            from repro.spmv.cache import SetAssociativeCache

            for idx, (size_bytes, line_bytes, ways, policy) in fallback:
                cache = SetAssociativeCache(
                    size_bytes, line_bytes, ways, policy, seed
                )
                out[idx] = cache.simulate(addrs)
    return out


def stack_distances_many(
    streams: Sequence[np.ndarray],
    max_batch: int = MAX_BATCH,
) -> List[Tuple[np.ndarray, int]]:
    """Exact stack distances for many block-id streams, batched.

    Returns one ``(distances, n_cold)`` pair per stream, bit-identical to
    ``stack_distances_from_blocks(stream)`` per stream.  Short streams
    are packed greedily (in order) into chunks of at most ``max_batch``
    total accesses; each chunk's streams are compacted to disjoint dense
    block id ranges and concatenated so one vectorized pass serves them
    all.  Streams of at least :data:`DIRECT_MIN` accesses run one direct
    per-stream pass instead — see :data:`DIRECT_MIN`.
    """
    streams = [np.asarray(s, dtype=np.int64) for s in streams]
    results: List[Tuple[np.ndarray, int]] = [None] * len(streams)  # type: ignore

    with obs.span("kernel.stack_distances_batch"):
        obs.counter("kernel.batched_streams").inc(len(streams))
        obs.counter("kernel.batched_stack_accesses").inc(
            sum(len(s) for s in streams)
        )

        def flush(chunk: List[int]) -> None:
            if not chunk:
                return
            if len(chunk) == 1:
                i = chunk[0]
                results[i] = stack_distances_from_blocks(streams[i])
                return
            parts: List[np.ndarray] = []
            bounds = [0]
            base = np.int64(0)
            for i in chunk:
                stream = streams[i]
                if len(stream):
                    uniques, inverse = np.unique(stream, return_inverse=True)
                    parts.append(
                        inverse.reshape(-1).astype(np.int64, copy=False) + base
                    )
                    base += np.int64(len(uniques))
                bounds.append(bounds[-1] + len(stream))
            combined = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            distances, _ = stack_distances_from_blocks(combined)
            for k, i in enumerate(chunk):
                sliced = distances[bounds[k] : bounds[k + 1]].copy()
                results[i] = (sliced, int((sliced == COLD_DISTANCE).sum()))

        chunk: List[int] = []
        chunk_len = 0
        for i, stream in enumerate(streams):
            if len(stream) >= DIRECT_MIN:
                flush(chunk)
                chunk, chunk_len = [], 0
                flush([i])
                continue
            if chunk and chunk_len + len(stream) > max_batch:
                flush(chunk)
                chunk, chunk_len = [], 0
            chunk.append(i)
            chunk_len += len(stream)
        flush(chunk)
    return results


def stack_distances_many_addresses(
    address_streams: Sequence[np.ndarray],
    block_bytes: int = 64,
    max_batch: int = MAX_BATCH,
) -> List[Tuple[np.ndarray, int]]:
    """:func:`stack_distances_many` on byte-address streams."""
    return stack_distances_many(
        [_block_ids(np.asarray(a), block_bytes) for a in address_streams],
        max_batch=max_batch,
    )


def expected_misses_batch(
    sorted_stack: np.ndarray,
    capacities: np.ndarray,
    assocs: np.ndarray,
) -> np.ndarray:
    """Analytic expected misses for many (capacity, assoc) configs.

    Bit-identical per element to
    :func:`repro.uarch.cachemodel.expected_misses` on the same shard
    stack: the warm/cold split and the sorted-unique histogram are
    hoisted out of the per-config loop (each config's tail histogram is a
    suffix of the global one because the warm distances are sorted), and
    each *distinct* (capacity, effective assoc) pair runs the oracle's
    exact arithmetic once on the same contiguous arrays.
    """
    from repro.uarch.shardstats import COLD

    capacities = np.asarray(capacities, dtype=np.int64)
    assocs = np.asarray(assocs, dtype=np.int64)
    if capacities.shape != assocs.shape:
        raise ValueError("capacities and assocs must have the same shape")
    if np.any(capacities <= 0):
        raise ValueError("capacity must be positive")
    if np.any(assocs <= 0):
        raise ValueError("associativity must be positive")
    n_configs = len(capacities)
    out = np.zeros(n_configs, dtype=float)
    m = len(sorted_stack)
    if m == 0 or n_configs == 0:
        return out
    obs.counter("kernel.batched_model_pairs").inc(n_configs)

    split = int(np.searchsorted(sorted_stack, COLD, side="left"))
    warm = sorted_stack[:split]
    n_cold = m - split
    values_all, counts_all = (
        np.unique(warm, return_counts=True)
        if len(warm)
        else (warm, np.empty(0, dtype=np.int64))
    )

    assoc_eff = np.minimum(assocs, capacities)
    memo: Dict[Tuple[int, int], float] = {}
    for i in range(n_configs):
        key = (int(capacities[i]), int(assoc_eff[i]))
        cached = memo.get(key)
        if cached is not None:
            out[i] = cached
            continue
        capacity, assoc = key
        sets = capacity // assoc
        if sets <= 1:
            # Fully associative: exact hit iff d < capacity.
            result = float(len(warm) - np.searchsorted(warm, capacity)) + n_cold
        else:
            always_hit = int(np.searchsorted(warm, assoc))
            if always_hit >= len(warm):
                result = float(n_cold)
            else:
                suffix = int(np.searchsorted(values_all, assoc))
                values = values_all[suffix:]
                counts = counts_all[suffix:]
                pmiss = _binom_sf(assoc, values, 1.0 / sets)
                result = float((pmiss * counts).sum()) + n_cold
        memo[key] = result
        out[i] = result
    return out


def miss_counts_hierarchy_batch(
    sorted_stack: np.ndarray,
    l1_blocks: np.ndarray,
    l1_assoc: np.ndarray,
    l2_blocks: np.ndarray,
    l2_assoc: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`repro.uarch.cachemodel.miss_counts_hierarchy`.

    Both levels go through one :func:`expected_misses_batch` call so
    distinct geometries dedupe across levels as well as across configs.
    """
    l1_blocks = np.asarray(l1_blocks, dtype=np.int64)
    l2_blocks = np.asarray(l2_blocks, dtype=np.int64)
    l1_assoc = np.asarray(l1_assoc, dtype=np.int64)
    l2_assoc = np.asarray(l2_assoc, dtype=np.int64)
    n_configs = len(l1_blocks)
    both = expected_misses_batch(
        sorted_stack,
        np.concatenate([l1_blocks, l2_blocks]),
        np.concatenate([l1_assoc, l2_assoc]),
    )
    l1, l2 = both[:n_configs], both[n_configs:]
    # An inclusive hierarchy cannot miss more in L2 than in L1.
    return l1, np.minimum(l1, l2)
