"""Drift detection over a prequential error stream.

The incumbent model is scored on every incoming batch *before* that batch
is folded into the training state (test-then-train, a.k.a. prequential
evaluation) — an honest held-out error signal with no separate holdout
split, in the spirit of Stevens & Klöckner's black-box held-out gating
(PAPERS.md).  :class:`DriftDetector` maintains a sliding window of those
per-record errors and compares the window median against the error the
incumbent specification achieved when it was last (re-)specified.

Hysteresis keeps noise from thrashing the GA:

* the window must hold at least ``min_fill`` errors before any verdict;
* the ratio must exceed ``trip_ratio`` on ``patience`` *consecutive*
  checks — one bad batch never trips;
* after a trip the detector latches until :meth:`DriftDetector.reset`
  (the re-specification) re-arms it, and re-arming additionally requires
  the score to fall back under ``clear_ratio`` so a still-degraded model
  does not immediately re-trip on residual window contents.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable

import numpy as np

from repro import obs


@dataclasses.dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for :class:`DriftDetector`.

    ``trip_ratio`` is in units of the baseline error: 1.5 means "trip when
    the windowed median error reaches 1.5x the error measured at the last
    re-specification" — the same tolerance the batch
    :class:`repro.core.updater.ModelManager` uses for its update trigger.
    """

    window: int = 64          # sliding window length, in records
    min_fill: int = 16        # verdicts need at least this many errors
    trip_ratio: float = 1.5   # windowed error / baseline that signals drift
    clear_ratio: float = 1.1  # must fall below this to re-arm after reset
    patience: int = 3         # consecutive over-threshold checks to trip

    def __post_init__(self):
        if self.window < 1 or not 1 <= self.min_fill <= self.window:
            raise ValueError("need 1 <= min_fill <= window")
        if not 1.0 <= self.clear_ratio <= self.trip_ratio:
            raise ValueError("need 1.0 <= clear_ratio <= trip_ratio")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


class DriftDetector:
    """Sliding-window prequential drift gate with hysteresis.

    ``baseline`` is the incumbent model's error at its last
    (re-)specification, in the same units as the errors passed to
    :meth:`observe` (we use absolute relative error throughout, matching
    :func:`repro.core.metrics.median_error`).
    """

    def __init__(self, baseline: float, config: DriftConfig = DriftConfig()):
        if baseline <= 0:
            raise ValueError("baseline error must be positive")
        self.config = config
        self.baseline = baseline
        self._window: deque = deque(maxlen=config.window)
        self._streak = 0
        self._armed = True
        self.tripped = False

    # -- signal ---------------------------------------------------------------------

    def observe(self, errors: Iterable[float]) -> bool:
        """Fold one batch of per-record errors in; return :attr:`tripped`.

        A single :meth:`observe` call is one "check" for patience
        purposes, however many records it carries — so patience counts
        consecutive degraded *batches*, not records.
        """
        batch = [float(e) for e in errors]
        self._window.extend(batch)
        score = self.score()
        obs.gauge("stream.drift_score").set(score)
        obs.gauge("stream.window_error").set(self._window_error())
        if len(self._window) < self.config.min_fill:
            return self.tripped
        if not self._armed:
            # Re-arm only once the model demonstrably recovered; otherwise
            # stale window contents would trip again right after a respec.
            if score < self.config.clear_ratio:
                self._armed = True
                self._streak = 0
            return self.tripped
        if self.tripped:
            return True
        if score > self.config.trip_ratio:
            self._streak += 1
            if self._streak >= self.config.patience:
                self.tripped = True
                obs.counter("stream.drift_trips").inc()
        else:
            self._streak = 0
        return self.tripped

    def score(self) -> float:
        """Windowed median error as a multiple of the baseline."""
        if not self._window:
            return 0.0
        return self._window_error() / self.baseline

    def _window_error(self) -> float:
        if not self._window:
            return 0.0
        return float(np.median(np.asarray(self._window)))

    # -- lifecycle ------------------------------------------------------------------

    def reset(self, baseline: float) -> None:
        """Acknowledge a re-specification: new baseline, cleared window.

        The detector stays disarmed until the post-respec score drops
        under ``clear_ratio`` (see :meth:`observe`), so the first few
        batches after a respec cannot immediately re-trip it.
        """
        if baseline <= 0:
            raise ValueError("baseline error must be positive")
        self.baseline = baseline
        self._window.clear()
        self._streak = 0
        self.tripped = False
        self._armed = False

    @property
    def fill(self) -> int:
        return len(self._window)
