"""Observation stream sources, including a drifting-sparsity SpMV workload.

The ROADMAP's dynamic-sparsity item: the paper's SpMV evaluation (§5.3)
models *static* matrices, but real sparse workloads — dynamic sparse
training being the sharpest example — rewire their sparsity pattern at
runtime.  :class:`DriftingSpMVSource` applies a RigL-style drop/regrow
schedule over the CSR representation: each :meth:`~StreamSource.step`
drops the smallest-magnitude entries and regrows the same count at
random positions.  Repeated steps erode the dense block substructure
register blocking exploits, so the matrix's fill-ratio surface — and
with it the performance topology the incumbent model learned — drifts
mid-run.  That is exactly the scenario the drift detector must catch
(and its stationary sibling :class:`SpMVStreamSource` must *not* trip).

Sources emit observations as :class:`~repro.core.dataset.ProfileDataset`
batches under a constant application label, so the stream reads as one
evolving application rather than a parade of new ones.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.spmv.cache import CacheConfig, SPMV_HARDWARE_NAMES, sample_cache_configs
from repro.spmv.matrices import SparseMatrix
from repro.spmv.space import BLOCK_SIZES, SPMV_SOFTWARE_NAMES, SpMVSpace


class SpMVStreamSource:
    """A stationary observation stream over one matrix's HW-SW space.

    ``candidates`` is the cross product of the chosen block sizes and a
    fixed pool of sampled cache configurations; :meth:`rows` exposes the
    candidates as raw feature rows (the representation
    :class:`repro.stream.ActiveSampler` scores), and :meth:`batch`
    simulates a chosen subset into profile records.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        seed: int = 0,
        block_sizes: Sequence[int] = BLOCK_SIZES,
        n_caches: int = 12,
        target: str = "mflops",
        application: Optional[str] = None,
    ):
        self.seed = seed
        self.block_sizes = tuple(block_sizes)
        self.target = target
        self.application = application or matrix.name
        self.caches: List[CacheConfig] = sample_cache_configs(
            n_caches, np.random.default_rng(seed)
        )
        self.step_count = 0
        self._bind(matrix)

    def _bind(self, matrix: SparseMatrix) -> None:
        """Point the source at (a new revision of) the matrix."""
        self.matrix = matrix
        self.space = SpMVSpace(matrix, self.seed)
        self.candidates: List[Tuple[int, int, CacheConfig]] = [
            (r, c, cache)
            for r in self.block_sizes
            for c in self.block_sizes
            for cache in self.caches
        ]

    # -- candidate view --------------------------------------------------------------

    def rows(self) -> np.ndarray:
        """Feature rows ``[x1..x3, y1..y7]`` for every candidate."""
        return np.array(
            [
                np.concatenate([self.space.software_vector(r, c), cache.as_vector()])
                for r, c, cache in self.candidates
            ]
        )

    # -- observation batches ---------------------------------------------------------

    def batch(self, indices: Sequence[int]) -> ProfileDataset:
        """Simulate the chosen candidates into one observation batch."""
        dataset = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
        for i in indices:
            r, c, cache = self.candidates[int(i)]
            result = self.space.evaluate(r, c, cache)
            dataset.add(
                ProfileRecord(
                    application=self.application,
                    x=self.space.software_vector(r, c),
                    y=cache.as_vector(),
                    z=float(getattr(result, self.target)),
                    tag=f"t{self.step_count}/{r}x{c}/{cache.key}",
                )
            )
        return dataset

    def sample(self, n: int, rng: np.random.Generator) -> ProfileDataset:
        """A random observation batch (the non-active baseline)."""
        indices = rng.choice(len(self.candidates), size=min(n, len(self.candidates)), replace=False)
        return self.batch(indices)

    def step(self) -> None:
        """Advance the workload one epoch.  Stationary: nothing changes."""
        self.step_count += 1


class DriftingSpMVSource(SpMVStreamSource):
    """RigL-style drop/regrow drift over the matrix's sparsity pattern.

    Each step converts the CSR matrix to COO, drops the
    ``drop_fraction`` of entries with the smallest magnitude (RigL's
    drop criterion), and regrows the same count at uniformly random
    empty-or-not positions with fresh values (RigL regrows by gradient;
    without gradients, uniform regrowth is the standard random-rewire
    baseline and erodes block structure even faster).  The revised
    matrix gets a distinct name (``<base>@t<step>``) so store-backed
    kernel traces of different revisions never collide.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        seed: int = 0,
        drop_fraction: float = 0.3,
        **kwargs,
    ):
        if not 0.0 < drop_fraction < 1.0:
            raise ValueError("drop_fraction must be in (0, 1)")
        self.drop_fraction = drop_fraction
        self._base_name = matrix.name
        self._rng = np.random.default_rng(seed + 0x5EED)
        super().__init__(matrix, seed, **kwargs)
        self.application = kwargs.get("application") or self._base_name

    def step(self) -> None:
        """Drop the weakest entries, regrow the same count at random."""
        self.step_count += 1
        m = self.matrix
        rows = np.repeat(np.arange(m.n_rows, dtype=np.int64), np.diff(m.indptr))
        cols = m.indices.copy()
        values = m.values.copy()
        k = max(1, int(round(self.drop_fraction * m.nnz)))

        # Drop: k smallest |value| entries, ties broken by position so the
        # schedule is deterministic for a given seed.
        order = np.lexsort((np.arange(len(values)), np.abs(values)))
        keep = np.ones(len(values), dtype=bool)
        keep[order[:k]] = False
        rows, cols, values = rows[keep], cols[keep], values[keep]

        # Regrow: k fresh entries at uniform positions (duplicates against
        # survivors coalesce by summation in the CSR constructor, which
        # only perturbs values — the pattern still rewires).
        new_rows = self._rng.integers(0, m.n_rows, size=k)
        new_cols = self._rng.integers(0, m.n_cols, size=k)
        new_values = self._rng.uniform(0.5, 2.0, size=k)
        revised = SparseMatrix(
            m.n_rows,
            m.n_cols,
            np.concatenate([rows, new_rows]),
            np.concatenate([cols, new_cols]),
            np.concatenate([values, new_values]),
            name=f"{self._base_name}@t{self.step_count}",
        )
        self._bind(revised)
