"""Continuous model maintenance: refresh cheaply, re-specify on drift.

:class:`StreamingRespecifier` is the control loop tying the subsystem
together.  Each ingested batch flows through four stages:

1. **prequential scoring** — the batch is predicted before being learned
   from, and per-record errors feed the
   :class:`~repro.stream.drift.DriftDetector`.  Scoring uses the frozen
   *reference* snapshot from the last re-specification, not the
   continuously-refreshed incumbent: an adaptive model absorbs drift into
   its own coefficients and hides exactly the signal the detector needs
   (the classic prequential-with-adaptive-model blind spot), while the
   reference answers the question that matters — has the distribution
   moved since the specification was last chosen?;
2. **accumulation** — the batch joins the dataset and its rank-k Gram
   contribution folds into the :class:`~repro.stream.accumulator.GramAccumulator`
   (periodically checkpointed through :mod:`repro.store`);
3. **coefficient refresh** — a p×p ``solve_gram`` rebinds the incumbent
   specification's coefficients to all evidence so far.  Orders of
   magnitude cheaper than a GA pass (``BENCH_stream.json``), so it runs
   on (almost) every batch;
4. **re-specification** — only when drift trips: the GA resumes
   *warm-started from the incumbent population*
   (:meth:`repro.core.genetic.GeneticSearch.update`), the winning spec is
   refit on the full dataset, and the accumulator/sampler/detector are
   rebuilt around the new structure.

The refresh/respec split is the paper's "dynamic spaces" claim made
online: structure changes are rare and expensive, coefficient updates
are constant and cheap.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro import faults, obs
from repro import store as store_mod
from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.genetic import GeneticSearch, SearchResult
from repro.core.model import InferredModel
from repro.stream.accumulator import GramAccumulator
from repro.stream.drift import DriftConfig, DriftDetector
from repro.stream.sampler import ActiveSampler

#: Buckets for the staleness histogram (observations absorbed between
#: re-specifications — a count, not a duration).
STALENESS_BUCKETS = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


@dataclasses.dataclass(frozen=True)
class StreamOutcome:
    """What one :meth:`StreamingRespecifier.ingest` call did."""

    action: str               # "none" | "refresh" | "respec"
    records: int
    drift_score: float
    tripped: bool             # detector latched this call (or earlier)
    needs_respec: bool        # tripped but respec deferred (allow_respec=False)
    batch_error: float        # median prequential error of this batch

    @property
    def refreshed(self) -> bool:
        return self.action == "refresh"


class StreamingRespecifier:
    """Owns the incumbent model and keeps it current against a stream.

    Parameters
    ----------
    dataset:
        The growing profile dataset; ingested batches are appended.
    search:
        The genetic search whose retained population warm-starts
        re-specification.
    drift_config:
        Hysteresis policy for the drift gate.
    refresh_every:
        Refresh coefficients every N ingested batches (1 = every batch).
    checkpoint_every:
        Checkpoint the accumulator every N batches (0 disables).
    store:
        Checkpoint destination; defaults to the ambient store when
        checkpointing is enabled.
    name:
        Namespaces checkpoints (``stream/<name>/ckpt/...``).
    """

    def __init__(
        self,
        dataset: ProfileDataset,
        search: Optional[GeneticSearch] = None,
        drift_config: DriftConfig = DriftConfig(),
        refresh_every: int = 1,
        checkpoint_every: int = 0,
        store: Optional[store_mod.Store] = None,
        name: str = "default",
        committee_size: int = 5,
    ):
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.dataset = dataset
        self.search = search or GeneticSearch()
        self.drift_config = drift_config
        self.refresh_every = refresh_every
        self.checkpoint_every = checkpoint_every
        self.store = store
        self.name = name
        self.committee_size = committee_size

        self.model: Optional[InferredModel] = None
        self.reference: Optional[InferredModel] = None  # last respec'd snapshot
        #: Optional :class:`repro.stream.OnlineRetuner` (see its
        #: ``attach``): notified after every re-specification and
        #: coefficient refresh so the deployed (r, c, cache) can follow
        #: the re-specified model.  Re-tune failures never propagate —
        #: the retuner degrades to its last-good tuning internally.
        self.retuner = None
        self.accumulator: Optional[GramAccumulator] = None
        self.detector: Optional[DriftDetector] = None
        self.sampler: Optional[ActiveSampler] = None
        self.last_result: Optional[SearchResult] = None
        self.batches_ingested = 0
        self.records_ingested = 0
        self._staleness = 0  # records since last re-specification
        self.refreshes = 0
        self.respecs = 0
        self._calibrated = False   # was set_baseline() ever used?
        self._recalibrate = False  # re-derive baseline from the next batch

    # -- lifecycle ------------------------------------------------------------------

    def bootstrap(self, generations: int = 10) -> InferredModel:
        """Initial GA specification search + streaming state."""
        result = self.search.run(self.dataset, generations)
        self._adopt(result)
        return self.model

    def bootstrap_from(self, result: SearchResult) -> InferredModel:
        """Adopt an already-completed GA result (e.g. a trained
        :class:`repro.core.updater.ModelManager`'s) instead of re-searching.
        The result's population must live in :attr:`search` for respec
        warm-starts to work — pass the same search instance that ran it."""
        self._adopt(result)
        return self.model

    def _adopt(self, result: SearchResult) -> None:
        """Rebuild all per-specification state around a GA result.

        The checkpoint sequence number carries over from the previous
        accumulator: checkpoints of the new specification must outrank
        every pre-respec checkpoint, or pruning would keep the stale ones
        and recovery would prefer them.  The old specification's
        checkpoints are purged outright (they are spec-tagged, so
        recovery would skip them anyway — this just reclaims the space).
        """
        self.last_result = result
        self.model = result.best_model(self.dataset)
        self.reference = self.model
        previous = self.accumulator
        self.accumulator = GramAccumulator.from_model(
            self.model,
            self.dataset,
            name=self.name,
            seq=previous.seq if previous is not None else 0,
        )
        if (
            previous is not None
            and previous.spec_digest != self.accumulator.spec_digest
            and (self.store is not None or store_mod.enabled())
        ):
            self.accumulator.purge_other_specs(self.store)
        baseline = max(result.best_fitness.mean_error, 1e-6)
        if self.detector is None:
            self.detector = DriftDetector(baseline, self.drift_config)
        else:
            self.detector.reset(baseline)
        try:
            self.sampler = ActiveSampler.from_search(
                result, self.dataset, self.committee_size
            )
        except ValueError:
            self.sampler = None  # degenerate population; sampling falls back

    def set_baseline(self, baseline: float) -> None:
        """Override the drift baseline (e.g. from a fresh stationary batch).

        GA fitness is leave-one-app-out error — pessimistic relative to
        the deployed full-data fit.  Calibrating the baseline against an
        actual prequential batch keeps the trip ratio in honest units.
        Once calibrated, every re-specification re-derives the baseline
        from its first post-respec batch (same units, new model).
        """
        self.detector = DriftDetector(max(baseline, 1e-6), self.drift_config)
        self._calibrated = True
        self._recalibrate = False

    # -- streaming ------------------------------------------------------------------

    def ingest(
        self, batch: ProfileDataset, allow_respec: bool = True
    ) -> StreamOutcome:
        """Fold one observation batch in; maybe refresh or re-specify."""
        if self.model is None:
            raise RuntimeError("bootstrap() before ingesting")
        if len(batch) == 0:
            return StreamOutcome("none", 0, self.detector.score(), False, False, 0.0)
        faults.site("stream.ingest")
        with obs.span("stream.ingest"):
            errors = self._prequential_errors(batch)
            if self._recalibrate:
                # First batch after a re-specification: its prequential
                # errors come from the *new* model, so its median is the
                # honest baseline — the GA's leave-one-app-out fitness
                # would leave the trip ratio in the wrong units.
                self.set_baseline(float(np.median(errors)))
                obs.counter("stream.baseline_recalibrations").inc()
            tripped = self.detector.observe(errors)
            self.dataset.extend(batch.records)
            self.accumulator.ingest(batch)
            self.batches_ingested += 1
            self.records_ingested += len(batch)
            self._staleness += len(batch)
            obs.counter("stream.observations").inc(len(batch))
            obs.gauge("stream.staleness_observations").set(self._staleness)
            obs.gauge("stream.drift_tripped").set(1.0 if tripped else 0.0)
            if self.checkpoint_every and self.batches_ingested % self.checkpoint_every == 0:
                self.checkpoint()

        batch_error = float(np.median(errors)) if len(errors) else 0.0
        score = self.detector.score()
        if tripped and allow_respec:
            self.respec()
            return StreamOutcome("respec", len(batch), score, True, False, batch_error)
        if tripped:
            return StreamOutcome("none", len(batch), score, True, True, batch_error)
        if self.batches_ingested % self.refresh_every == 0:
            refreshed = self.refresh()
            action = "refresh" if refreshed else "none"
            return StreamOutcome(action, len(batch), score, False, False, batch_error)
        return StreamOutcome("none", len(batch), score, False, False, batch_error)

    def _prequential_errors(self, batch: ProfileDataset) -> np.ndarray:
        """Test-then-train: score the batch before learning from it.

        Scored by the :attr:`reference` snapshot (last re-specification),
        so per-batch coefficient refreshes cannot absorb — and thereby
        hide — a distribution shift from the detector.
        """
        scorer = self.reference if self.reference is not None else self.model
        predictions = scorer.predict(batch)
        targets = batch.targets()
        denom = np.maximum(np.abs(targets), 1e-12)
        return np.abs(predictions - targets) / denom

    # -- maintenance actions ----------------------------------------------------------

    def refresh(self) -> bool:
        """Cheap coefficient refresh from the accumulated Gram blocks."""
        with obs.span("stream.refresh"):
            refreshed = self.accumulator.refresh()
        if refreshed is None:
            return False
        self.model = refreshed
        self.accumulator.model = refreshed
        self.refreshes += 1
        obs.counter("stream.refreshes").inc()
        if self.retuner is not None:
            self.retuner.on_refresh(self)
        return True

    def respec(self, generations: int = 5) -> InferredModel:
        """Full re-specification: warm-started GA over the grown dataset."""
        faults.site("stream.respec")
        with obs.span("stream.respec"):
            result = self.search.update(self.dataset, generations)
            obs.histogram("stream.staleness", STALENESS_BUCKETS).observe(
                self._staleness
            )
            self._staleness = 0
            self._adopt(result)
            self.respecs += 1
            self._recalibrate = self._calibrated
            obs.counter("stream.respecs").inc()
        if self.retuner is not None:
            self.retuner.on_respec(self)
        return self.model

    # -- active sampling ---------------------------------------------------------------

    def select_next(self, candidate_rows: np.ndarray, k: int) -> np.ndarray:
        """Indices of the next ``k`` configurations worth profiling.

        Committee disagreement when a sampler exists; otherwise the first
        ``k`` candidates (callers shuffle if they want random fallback).
        """
        if self.sampler is None:
            return np.arange(min(k, len(candidate_rows)))
        return self.sampler.select(candidate_rows, k)

    # -- persistence ------------------------------------------------------------------

    def checkpoint(self) -> Optional[str]:
        """Persist the accumulator if a store is available."""
        if self.accumulator is None:
            return None
        if self.store is None and not store_mod.enabled():
            return None
        return self.accumulator.checkpoint(self.store)

    def recover(self) -> bool:
        """Restore accumulator state from the newest valid checkpoint."""
        if self.accumulator is None:
            return False
        return self.accumulator.recover(self.store)

    # -- introspection -----------------------------------------------------------------

    def stats_dict(self) -> dict:
        stats = {
            "batches_ingested": self.batches_ingested,
            "records_ingested": self.records_ingested,
            "refreshes": self.refreshes,
            "respecs": self.respecs,
            "staleness_observations": self._staleness,
            "drift_score": self.detector.score() if self.detector else 0.0,
            "drift_tripped": bool(self.detector.tripped) if self.detector else False,
            "dataset_size": len(self.dataset),
        }
        if self.retuner is not None:
            stats["retune"] = self.retuner.stats_dict()
        return stats


def records_from_rows(
    application: str,
    rows: np.ndarray,
    targets: np.ndarray,
    n_software: int,
) -> List[ProfileRecord]:
    """Convenience: raw feature rows -> profile records for one application."""
    rows = np.atleast_2d(np.asarray(rows, dtype=float))
    targets = np.asarray(targets, dtype=float)
    return [
        ProfileRecord(
            application, row[:n_software].copy(), row[n_software:].copy(), float(z)
        )
        for row, z in zip(rows, targets)
    ]
