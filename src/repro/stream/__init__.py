"""repro.stream — continuous model maintenance over observation streams.

The paper's "dynamic spaces" made online (DESIGN.md §11): rank-k Gram
accumulation for cheap coefficient refreshes, prequential drift
detection with hysteresis to gate full GA re-specification, committee
disagreement to pick which configurations to simulate next, a
drifting-sparsity SpMV workload to exercise all of it, and — closing the
loop (DESIGN.md §12) — drift-triggered coordinated HW-SW re-tuning that
acts on each freshly re-specified model with verified, switch-over-cost-
aware (r, c, cache) migrations.
"""

from repro.stream.accumulator import (
    ACCUMULATION_RTOL,
    GramAccumulator,
    StreamStateError,
    spec_digest,
)
from repro.stream.drift import DriftConfig, DriftDetector
from repro.stream.respec import (
    StreamingRespecifier,
    StreamOutcome,
    records_from_rows,
)
from repro.stream.retune import (
    OnlineRetuner,
    RetuneDecision,
    SwitchCost,
    TuningState,
)
from repro.stream.sampler import ActiveSampler
from repro.stream.source import DriftingSpMVSource, SpMVStreamSource

__all__ = [
    "ACCUMULATION_RTOL",
    "ActiveSampler",
    "DriftConfig",
    "DriftDetector",
    "DriftingSpMVSource",
    "GramAccumulator",
    "OnlineRetuner",
    "RetuneDecision",
    "SpMVStreamSource",
    "StreamOutcome",
    "StreamStateError",
    "StreamingRespecifier",
    "SwitchCost",
    "TuningState",
    "records_from_rows",
    "spec_digest",
]
