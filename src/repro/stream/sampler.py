"""Active configuration selection by committee disagreement.

Which configurations should be simulated/profiled *next*?  Random
sampling (the paper's §3.3 growth loop) wastes simulator budget on
regions every plausible model already agrees on.  Following Ghaffari et
al.'s multi-model active learning (PAPERS.md), we instead keep a small
committee of fitted models — the top distinct chromosomes of the last GA
population, each fit on the full dataset — and score every candidate
configuration by the committee's *prediction disagreement*:

    score(row) = std(predictions) / max(|mean(predictions)|, eps)

High disagreement marks the configurations the current evidence least
constrains; profiling those shrinks model variance fastest per simulated
observation.  The coefficient of variation (rather than raw std) keeps
the score comparable across performance regimes — a 10% spread matters
equally at 2 CPI and at 200 Mflop/s.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro import obs
from repro.core.dataset import ProfileDataset
from repro.core.model import InferredModel

#: Guard against division by ~zero mean predictions.
_EPS = 1e-12


class ActiveSampler:
    """Scores candidate configuration rows by committee disagreement."""

    def __init__(self, committee: Sequence[InferredModel]):
        if len(committee) < 2:
            raise ValueError("committee needs at least 2 models to disagree")
        self.committee = list(committee)

    @classmethod
    def from_search(
        cls,
        result,
        dataset: ProfileDataset,
        committee_size: int = 5,
    ) -> "ActiveSampler":
        """Build the committee from a GA :class:`SearchResult`.

        Takes the top ``committee_size`` *distinct* chromosomes of the
        final ranked population and fits each on the full dataset.
        Degenerate specs that fail to fit are skipped; the population
        always yields >= 2 fits in practice (the GA keeps elites sane).
        """
        models: List[InferredModel] = []
        seen = set()
        for chromosome, _ in result.ranked():
            if chromosome in seen:
                continue
            seen.add(chromosome)
            spec = chromosome.to_spec(dataset.variable_names)
            try:
                models.append(InferredModel.fit(spec, dataset))
            except (ValueError, np.linalg.LinAlgError):
                continue
            if len(models) == committee_size:
                break
        return cls(models)

    def scores(self, rows: np.ndarray) -> np.ndarray:
        """Disagreement score per candidate row (higher = more informative)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        predictions = np.stack(
            [model.predict_rows(rows) for model in self.committee]
        )
        mean = predictions.mean(axis=0)
        std = predictions.std(axis=0)
        return std / np.maximum(np.abs(mean), _EPS)

    def select(self, rows: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` most-disagreed-on rows, best first.

        Stable (mergesort) ordering, so ties resolve by candidate index
        and selection is deterministic.
        """
        scores = self.scores(rows)
        order = np.argsort(-scores, kind="stable")[: max(k, 0)]
        obs.counter("stream.active_selections").inc(len(order))
        if len(scores):
            obs.gauge("stream.disagreement_max").set(float(scores.max()))
        return order
