"""Drift-triggered coordinated HW-SW re-tuning (DESIGN.md §12).

PR 8's streaming loop detects drift and re-specifies the model; this
module *acts* on the refreshed model.  :class:`OnlineRetuner` re-runs the
coordinated :class:`~repro.spmv.tuning.TuningSearch` against the freshly
re-specified model after every drift-triggered re-specification (and,
optionally, every K coefficient refreshes), following the
model-guided-search protocol: rank the full (r, c, cache) cross product
with the model, then *verify the top candidates with true simulated
measurements*.  An adopted tuning is therefore always a truly-measured
candidate, never a model-only ranking winner.

Switching is not free.  A new block size means re-blocking the matrix
(a CSR scan plus writing the padded dense blocks); a new cache
configuration means a drain-reprogram-rewarm cycle.  Both are priced in
seconds on the study's 400 MHz machine model and amortized over an
*expected tenure* — how long the new tuning is likely to survive before
the next re-tune, estimated from the drift detector's observed trip
rate (the mean observation count between recent re-tunes).  The tuner
switches only when

    (incumbent_time - candidate_time) * tenure_executions > switch_cost

*and* the verified candidate clears a relative hysteresis margin over
the re-measured incumbent, so near-ties between adjacent block sizes
cannot make the tuner thrash.

A failed re-tune (the ``stream.retune`` fault site, a broken candidate
measurement, a degenerate model) never propagates: the incumbent
tuning — last-good — stays in force and the failure is recorded in the
decision history.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.core.model import InferredModel
from repro.spmv.cache import CacheConfig
from repro.spmv.machine import CLOCK_HZ, miss_penalty_cycles
from repro.spmv.space import BLOCK_SIZES, SpMVSpace
from repro.spmv.tuning import TuningSearch

#: Re-blocking cost: one pass over the CSR entries (read + classify) ...
REBLOCK_CYCLES_PER_NNZ = 6.0
#: ... plus writing every stored value of the new blocking, fill included.
REBLOCK_CYCLES_PER_STORED = 4.0
#: Fixed cache drain + reprogram latency before the rewarm misses start.
CACHE_RECONFIG_CYCLES = 100_000.0


@dataclasses.dataclass(frozen=True)
class TuningState:
    """One adopted coordinated tuning and its true measured performance."""

    r: int
    c: int
    cache: CacheConfig
    mflops: float

    @property
    def key(self) -> str:
        return f"{self.r}x{self.c}/{self.cache.key}"


@dataclasses.dataclass(frozen=True)
class SwitchCost:
    """Priced switch-over work, in seconds on the 400 MHz machine model."""

    reblock_seconds: float    # CSR -> BCSR(r', c') conversion
    reconfig_seconds: float   # cache drain + reprogram + rewarm

    @property
    def total_seconds(self) -> float:
        return self.reblock_seconds + self.reconfig_seconds


@dataclasses.dataclass(frozen=True)
class RetuneDecision:
    """What one re-tune concluded, and why."""

    trigger: str                        # "respec" | "refresh" | "manual"
    action: str                         # "switch" | "hold" | "error"
    step: int                           # re-tune sequence number
    incumbent: Optional[TuningState]    # re-measured on the current revision
    candidate: Optional[TuningState]    # best verified candidate
    verified: bool                      # candidate's mflops is a true measurement
    predicted_mflops: float             # the model's score for the candidate
    gain_seconds_per_execution: float   # incumbent time - candidate time
    switch_cost: Optional[SwitchCost]
    tenure_executions: float            # expected executions before next re-tune
    net_gain_seconds: float             # gain * tenure - switch cost
    reason: str

    @property
    def switched(self) -> bool:
        return self.action == "switch"

    def to_dict(self) -> dict:
        return {
            "trigger": self.trigger,
            "action": self.action,
            "step": self.step,
            "incumbent": self.incumbent.key if self.incumbent else None,
            "incumbent_mflops": self.incumbent.mflops if self.incumbent else None,
            "candidate": self.candidate.key if self.candidate else None,
            "candidate_mflops": self.candidate.mflops if self.candidate else None,
            "verified": self.verified,
            "predicted_mflops": self.predicted_mflops,
            "gain_seconds_per_execution": self.gain_seconds_per_execution,
            "switch_cost_seconds": (
                self.switch_cost.total_seconds if self.switch_cost else None
            ),
            "tenure_executions": self.tenure_executions,
            "net_gain_seconds": self.net_gain_seconds,
            "reason": self.reason,
        }


class OnlineRetuner:
    """Keeps the deployed (r, c, cache) current against a drifting space.

    Parameters
    ----------
    space_provider:
        Callable returning the *current revision* of the SpMV space (e.g.
        ``lambda: source.space`` for a drifting stream source).  Called at
        every re-tune so verification always measures the live matrix.
    caches:
        Candidate cache pool; crossed with ``block_sizes`` into the
        coordinated candidate set.
    verify_top:
        How many model-ranked candidates to verify with true measurements.
    min_gain_ratio:
        Hysteresis margin: a candidate must beat the re-measured incumbent
        by this relative factor before a switch is even considered, so
        near-equal adjacent block sizes cannot thrash.
    executions_per_observation:
        Deployment duty cycle: how many kernel executions the workload
        runs per profiled stream observation.  Converts the tenure
        estimate from observations into executions.
    default_tenure_observations:
        Tenure prior used until the trip rate has produced at least one
        inter-retune interval.
    retune_every_refreshes:
        Also re-tune after every K coefficient refreshes (0 disables; the
        post-respec hook always fires regardless).
    history:
        Decision-history ring size.
    """

    def __init__(
        self,
        space_provider: Callable[[], SpMVSpace],
        caches: Sequence[CacheConfig],
        *,
        block_sizes: Sequence[int] = BLOCK_SIZES,
        verify_top: int = 5,
        min_gain_ratio: float = 0.03,
        executions_per_observation: float = 25.0,
        default_tenure_observations: float = 512.0,
        retune_every_refreshes: int = 0,
        history: int = 64,
    ):
        if not caches:
            raise ValueError("need at least one candidate cache")
        if min_gain_ratio < 0.0:
            raise ValueError("min_gain_ratio must be >= 0")
        if executions_per_observation <= 0.0:
            raise ValueError("executions_per_observation must be > 0")
        if default_tenure_observations <= 0.0:
            raise ValueError("default_tenure_observations must be > 0")
        if retune_every_refreshes < 0:
            raise ValueError("retune_every_refreshes must be >= 0")
        self.space_provider = space_provider
        self.caches = list(caches)
        self.block_sizes = tuple(block_sizes)
        self.verify_top = verify_top
        self.min_gain_ratio = min_gain_ratio
        self.executions_per_observation = executions_per_observation
        self.default_tenure_observations = default_tenure_observations
        self.retune_every_refreshes = retune_every_refreshes

        self.current: Optional[TuningState] = None
        self.decisions: deque = deque(maxlen=max(1, history))
        self.retunes = 0
        self.switches = 0
        self.holds = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self._refreshes_since_retune = 0
        self._observations_at_last_retune: Optional[int] = None
        self._tenure_samples: deque = deque(maxlen=8)

    # -- candidate set ----------------------------------------------------------------

    def candidates(self) -> List[Tuple[int, int, CacheConfig]]:
        return [
            (r, c, cache)
            for cache in self.caches
            for r in self.block_sizes
            for c in self.block_sizes
        ]

    # -- lifecycle --------------------------------------------------------------------

    def bootstrap(self, model: Optional[InferredModel] = None) -> TuningState:
        """Adopt the initial tuning (exhaustive true search when no model)."""
        space = self.space_provider()
        search = TuningSearch(space, model, verify_top=self.verify_top)
        best = search.choose_verified(self.candidates())
        self.current = TuningState(best.r, best.c, best.cache, best.mflops)
        self._export_gauges()
        return self.current

    def attach(self, respecifier) -> "OnlineRetuner":
        """Register with a :class:`~repro.stream.StreamingRespecifier`.

        The respecifier invokes :meth:`on_respec` after every successful
        re-specification and :meth:`on_refresh` after every coefficient
        refresh.
        """
        respecifier.retuner = self
        return self

    # -- respecifier hooks ------------------------------------------------------------

    def on_respec(self, respecifier) -> Optional[RetuneDecision]:
        self._refreshes_since_retune = 0
        return self._guarded_retune(respecifier, "respec")

    def on_refresh(self, respecifier) -> Optional[RetuneDecision]:
        if self.retune_every_refreshes <= 0:
            return None
        self._refreshes_since_retune += 1
        if self._refreshes_since_retune < self.retune_every_refreshes:
            return None
        self._refreshes_since_retune = 0
        return self._guarded_retune(respecifier, "refresh")

    def _guarded_retune(self, respecifier, trigger: str) -> RetuneDecision:
        """Re-tune, degrading to the last-good tuning on any failure."""
        try:
            return self.retune(
                respecifier.model, trigger, observations=respecifier.records_ingested
            )
        except Exception as exc:
            self.failures += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            obs.counter("retune.failures").inc()
            decision = RetuneDecision(
                trigger=trigger,
                action="error",
                step=self.retunes,
                incumbent=self.current,
                candidate=None,
                verified=False,
                predicted_mflops=0.0,
                gain_seconds_per_execution=0.0,
                switch_cost=None,
                tenure_executions=0.0,
                net_gain_seconds=0.0,
                reason=self.last_error,
            )
            self.decisions.append(decision)
            return decision

    # -- the re-tune itself -----------------------------------------------------------

    def retune(
        self,
        model: Optional[InferredModel],
        trigger: str = "manual",
        observations: Optional[int] = None,
    ) -> RetuneDecision:
        """Model-guided coordinated search + verified, cost-aware adoption."""
        if self.current is None:
            raise RuntimeError("bootstrap() before retuning")
        faults.site("stream.retune")
        with obs.span("stream.retune"):
            tenure_executions = self._expected_tenure(observations)
            space = self.space_provider()
            search = TuningSearch(space, model, verify_top=self.verify_top)
            best = search.choose_verified(self.candidates())
            incumbent_now = space.evaluate(
                self.current.r, self.current.c, self.current.cache
            )
            decision = self._decide(
                space, best, incumbent_now, tenure_executions, trigger
            )
        self.retunes += 1
        self.last_error = None
        self.decisions.append(decision)
        if decision.switched:
            self.switches += 1
            self.current = decision.candidate
            obs.counter("retune.switches").inc()
        else:
            self.holds += 1
            # The incumbent stays, but its measured performance is pinned
            # to the current matrix revision.
            self.current = decision.incumbent
            obs.counter("retune.holds").inc()
        self._export_gauges()
        return decision

    def _decide(
        self,
        space: SpMVSpace,
        best,
        incumbent_now,
        tenure_executions: float,
        trigger: str,
    ) -> RetuneDecision:
        candidate_result = space.evaluate(best.r, best.c, best.cache)  # memoized
        candidate = TuningState(
            best.r, best.c, best.cache, float(candidate_result.mflops)
        )
        incumbent = dataclasses.replace(
            self.current, mflops=float(incumbent_now.mflops)
        )
        gain = float(incumbent_now.time_seconds - candidate_result.time_seconds)
        cost = self.switch_cost(space, incumbent, candidate)
        net = gain * tenure_executions - cost.total_seconds
        fields = dict(
            trigger=trigger,
            step=self.retunes,
            incumbent=incumbent,
            candidate=candidate,
            verified=True,
            predicted_mflops=float(best.predicted),
            gain_seconds_per_execution=gain,
            switch_cost=cost,
            tenure_executions=tenure_executions,
            net_gain_seconds=net,
        )
        if candidate.key == incumbent.key:
            return RetuneDecision(
                action="hold",
                reason="incumbent is still the verified best",
                **fields,
            )
        if candidate.mflops < incumbent.mflops * (1.0 + self.min_gain_ratio):
            return RetuneDecision(
                action="hold",
                reason=(
                    f"hysteresis: {candidate.mflops / incumbent.mflops:.3f}x is "
                    f"inside the {self.min_gain_ratio:.0%} margin"
                ),
                **fields,
            )
        if net <= 0.0:
            return RetuneDecision(
                action="hold",
                reason=(
                    f"switch-over cost {cost.total_seconds:.2e}s exceeds the "
                    f"{gain * tenure_executions:.2e}s gain over the expected tenure"
                ),
                **fields,
            )
        return RetuneDecision(
            action="switch",
            reason=(
                f"verified {candidate.mflops / incumbent.mflops:.2f}x gain nets "
                f"{net:.2e}s over the expected tenure"
            ),
            **fields,
        )

    # -- switch-over cost -------------------------------------------------------------

    @staticmethod
    def switch_cost(
        space: SpMVSpace, incumbent: TuningState, candidate: TuningState
    ) -> SwitchCost:
        """Price the migration from ``incumbent`` to ``candidate``.

        Re-blocking only when the block size changes: a scan of the CSR
        entries plus a write of every stored value of the new blocking
        (fill zeros included — the BCSR conversion materializes them).
        Cache reconfiguration only when the cache changes: a fixed
        drain + reprogram latency plus rewarming every line of the new
        data cache at the new line size's miss penalty.
        """
        reblock = 0.0
        if (candidate.r, candidate.c) != (incumbent.r, incumbent.c):
            stored = space.bcsr(candidate.r, candidate.c).stored_values
            cycles = (
                REBLOCK_CYCLES_PER_NNZ * space.matrix.nnz
                + REBLOCK_CYCLES_PER_STORED * stored
            )
            reblock = cycles / CLOCK_HZ
        reconfig = 0.0
        if candidate.cache.key != incumbent.cache.key:
            lines = candidate.cache.dsize_kb * 1024 / candidate.cache.line_bytes
            rewarm = lines * miss_penalty_cycles(candidate.cache.line_bytes)
            reconfig = (CACHE_RECONFIG_CYCLES + rewarm) / CLOCK_HZ
        return SwitchCost(float(reblock), float(reconfig))

    # -- tenure estimate --------------------------------------------------------------

    def _expected_tenure(self, observations: Optional[int]) -> float:
        """Expected executions before the next re-tune, from the trip rate.

        The drift detector's trip rate manifests as the observation count
        between consecutive re-tunes; its recent mean (a prior before any
        interval exists) times the deployment duty cycle is the horizon a
        switch-over cost must amortize over.
        """
        if observations is not None:
            previous = self._observations_at_last_retune
            if previous is not None and observations > previous:
                self._tenure_samples.append(float(observations - previous))
            self._observations_at_last_retune = observations
        tenure_observations = (
            float(np.mean(self._tenure_samples))
            if self._tenure_samples
            else float(self.default_tenure_observations)
        )
        return tenure_observations * self.executions_per_observation

    # -- introspection ----------------------------------------------------------------

    def _export_gauges(self) -> None:
        if self.current is None:
            return
        obs.gauge("retune.block_rows").set(float(self.current.r))
        obs.gauge("retune.block_cols").set(float(self.current.c))
        obs.gauge("retune.cache_dsize_kb").set(float(self.current.cache.dsize_kb))
        obs.gauge("retune.cache_line_bytes").set(float(self.current.cache.line_bytes))
        obs.gauge("retune.current_mflops").set(float(self.current.mflops))

    def stats_dict(self, history: int = 16) -> dict:
        recent = list(self.decisions)[-max(0, history):]
        return {
            "retunes": self.retunes,
            "switches": self.switches,
            "holds": self.holds,
            "failures": self.failures,
            "last_error": self.last_error,
            "current": (
                {
                    "r": self.current.r,
                    "c": self.current.c,
                    "cache": self.current.cache.key,
                    "mflops": self.current.mflops,
                }
                if self.current is not None
                else None
            ),
            "decisions": [d.to_dict() for d in recent],
        }
