"""Online Gram accumulation — the streaming half of §2.3's regression.

The Gram formulation (:func:`repro.core.regression.accumulate_gram`) is
*additive over rows*: the normal-equation blocks ``(XᵀX, Xᵀy)`` of a
dataset are the sum of the blocks of any partition of its rows.  A
:class:`GramAccumulator` exploits exactly that — new (application, shard)
observations are reduced to rank-k contributions and folded into one
running pair of blocks, so refreshing the incumbent model's coefficients
is a p×p :func:`~repro.core.regression.solve_gram` instead of a re-reduce
of every row ever seen.

Equivalence contract (asserted by ``tests/test_stream.py``): folding the
same rows in N batches produces blocks equal to a one-shot
:func:`accumulate_gram` over the concatenated rows up to floating-point
summation order — relative error below :data:`ACCUMULATION_RTOL` — and
the refreshed coefficients match a batch rebuild to the same tolerance.
The accumulator is **spec-frozen**: rows are prepared by the incumbent
model's fitted transform/pruning state, so a structural change (new
specification out of the GA) requires rebuilding the accumulator from the
full dataset (:meth:`GramAccumulator.from_model`).

Checkpoints persist through :mod:`repro.store`: the whole state is packed
into a single flat column written write-once under a content-addressed
key (``stream/<name>/ckpt/<seq>-<spec>-<digest>``), so a crash —
including a kill injected at the ``stream.checkpoint`` fault site or
mid-flush at ``store.flush`` — can never tear a checkpoint; recovery
scans for the newest checkpoint whose embedded digest verifies.  The
``<spec>`` component is a digest of the specification's design-defining
state (spec, fitted transforms, surviving columns — NOT the
coefficients, which refreshes rebind): recovery and pruning only ever
consider checkpoints of the *current* specification, so a
re-specification that happens to land on the same design width can
never resurrect the old specification's Gram blocks.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import List, Optional, Tuple

import numpy as np

from repro import faults, obs
from repro import store as store_mod
from repro.core.dataset import ProfileDataset
from repro.core.model import InferredModel
from repro.core.regression import LinearFit, accumulate_gram, solve_gram

#: Relative tolerance between N-batch accumulation and a one-shot rebuild
#: on the same rows.  Gram addition is exact apart from fp summation
#: order, so the divergence is a few ulps amplified by cancellation;
#: 1e-9 on the blocks (and the solved coefficients) holds with wide
#: margin at every scale the tests exercise.
ACCUMULATION_RTOL = 1e-9

#: Checkpoint payload layout version (first header slot).
CHECKPOINT_FORMAT = 1.0

#: Header slots ahead of the moment/gram data: format, seq, rows, batches, p.
_HEADER = 5

_CKPT_NAME = re.compile(r"^(\d{8})-([0-9a-f]{8})-([0-9a-f]{12})\.npy$")


class StreamStateError(RuntimeError):
    """Accumulator state could not be checkpointed or recovered."""


def spec_digest(model) -> str:
    """Digest of the design-defining state the accumulator is frozen to.

    Covers the specification, fitted transform state, surviving columns
    and response — everything :meth:`InferredModel.prepared_design`
    depends on — and deliberately NOT the fitted coefficients, which
    :meth:`GramAccumulator.refresh`/:meth:`InferredModel.refit_from`
    rebind without changing the design.  Models that cannot serialize
    (the test-suite stubs) fall back to their column names.
    """
    try:
        from repro.core import serialize

        body = serialize.model_to_dict(model)
        body.pop("fit", None)
        body.pop("checksum", None)
        blob = json.dumps(body, sort_keys=True)
    except Exception:
        blob = repr(tuple(getattr(model, "fit_column_names", ())))
    return hashlib.sha256(blob.encode()).hexdigest()[:8]


class GramAccumulator:
    """Running ``(XᵀX, Xᵀy)`` blocks for one model specification.

    Rows enter through the incumbent model's
    :meth:`~repro.core.model.InferredModel.prepared_design` /
    :meth:`~repro.core.model.InferredModel.transform_targets`, so the
    blocks are always over the exact design the model's fit consumes.
    """

    def __init__(self, model: InferredModel, name: str = "default", seq: int = 0):
        self.model = model
        self.name = name
        self.spec_digest = spec_digest(model)
        p = len(model.fit_column_names) + 1  # + intercept
        self.gram = np.zeros((p, p))
        self.moment = np.zeros(p)
        self.rows = 0
        self.batches = 0
        # Checkpoint sequence number.  Carried forward across
        # re-specifications (see StreamingRespecifier._adopt) so post-respec
        # checkpoints always outrank pre-respec ones in pruning and recovery.
        self.seq = seq

    @classmethod
    def from_model(
        cls,
        model: InferredModel,
        dataset: Optional[ProfileDataset] = None,
        name: str = "default",
        seq: int = 0,
    ) -> "GramAccumulator":
        """An accumulator seeded with ``dataset``'s rows (if given)."""
        acc = cls(model, name, seq=seq)
        if dataset is not None and len(dataset):
            acc.ingest(dataset)
        return acc

    # -- accumulation ---------------------------------------------------------------

    def ingest(self, dataset: ProfileDataset) -> int:
        """Fold one observation batch into the running blocks (rank-k update)."""
        if len(dataset) == 0:
            return 0
        design = self.model.prepared_design(dataset)
        targets = self.model.transform_targets(dataset.targets())
        gram, moment = accumulate_gram(design, targets)
        self.gram += gram
        self.moment += moment
        self.rows += len(dataset)
        self.batches += 1
        obs.counter("stream.rows_accumulated").inc(len(dataset))
        return len(dataset)

    def solve(self) -> Optional[LinearFit]:
        """Coefficients over everything accumulated so far.

        The fast path is the Cholesky :func:`solve_gram`.  When it refuses
        — the surviving design columns are collinear (spline bases over few
        distinct knot values leave the Gram rank-deficient) — the solver
        falls back to the minimum-norm solution ``pinv(G) m``, which equals
        the ``X⁺y`` that the batch path's SVD lstsq produces.  Still a p×p
        solve; no row re-reduce either way.  ``None`` only when there are
        fewer rows than columns (genuinely underdetermined — callers keep
        the incumbent coefficients and wait for evidence) or the blocks
        are non-finite.
        """
        fit = solve_gram(self.gram, self.moment, self.model.fit_column_names)
        if fit is not None:
            return fit
        if self.rows < len(self.moment):
            return None
        if not (np.isfinite(self.gram).all() and np.isfinite(self.moment).all()):
            return None
        solution = np.linalg.pinv(self.gram, hermitian=True) @ self.moment
        if not np.isfinite(solution).all():
            return None
        obs.counter("stream.solve_pinv_fallbacks").inc()
        return LinearFit(
            intercept=float(solution[0]),
            coefficients=solution[1:].copy(),
            column_names=tuple(self.model.fit_column_names),
        )

    def refresh(self) -> Optional[InferredModel]:
        """A model with refreshed coefficients, or ``None`` if unsolvable."""
        fit = self.solve()
        if fit is None:
            obs.counter("stream.refresh_failures").inc()
            return None
        return self.model.refit_from(fit)

    # -- persistence ----------------------------------------------------------------

    def _payload(self) -> np.ndarray:
        p = len(self.moment)
        header = np.array(
            [CHECKPOINT_FORMAT, self.seq, self.rows, self.batches, p]
        )
        return np.concatenate([header, self.moment, self.gram.ravel()])

    def _ckpt_dir(self, store: store_mod.Store):
        return store.root / "stream" / self.name / "ckpt"

    def checkpoint(self, store: Optional[store_mod.Store] = None) -> str:
        """Persist the state as one atomic, content-addressed column.

        Returns the store key.  The single-column layout is what makes the
        checkpoint crash-safe as a *unit*: the store's write-once
        tmp/fsync/rename publish means a reader sees the whole checkpoint
        or none of it, never a gram without its moment.  The
        ``stream.checkpoint`` fault site fires before the write, so an
        injected kill loses at most the checkpoint being attempted.
        """
        store = store or store_mod.Store()
        self.seq += 1
        payload = self._payload()
        digest = hashlib.sha256(payload.tobytes()).hexdigest()[:12]
        key = f"stream/{self.name}/ckpt/{self.seq:08d}-{self.spec_digest}-{digest}"
        faults.site("stream.checkpoint")
        with obs.span("stream.checkpoint"):
            store.put(key, payload)
        obs.counter("stream.checkpoints").inc()
        self._prune_checkpoints(store)
        return key

    def _prune_checkpoints(self, store: store_mod.Store, keep: int = 3) -> None:
        """Best-effort removal of superseded checkpoint columns."""
        entries = self._list_checkpoints(store)
        for _, path in entries[:-keep]:
            try:
                path.unlink()
            except OSError:
                pass

    def purge_other_specs(self, store: Optional[store_mod.Store] = None) -> int:
        """Best-effort removal of checkpoints from other specifications.

        Called after a re-specification adopts a new design: the old
        specification's checkpoints are dead weight (recovery filters
        them out regardless), so they are unlinked rather than left to
        accumulate under the shared ``stream/<name>/ckpt/`` namespace.
        Returns the number of columns removed.
        """
        store = store or store_mod.Store()
        removed = 0
        for _, path in self._list_checkpoints(store, all_specs=True):
            match = _CKPT_NAME.match(path.name)
            if match.group(2) == self.spec_digest:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _list_checkpoints(
        self, store: store_mod.Store, all_specs: bool = False
    ) -> List[Tuple[int, object]]:
        """Seq-sorted checkpoints of this accumulator's specification.

        Other specifications' checkpoints (same stream name, different
        ``spec_digest`` — e.g. left behind by a crash between respec and
        purge) are invisible here unless ``all_specs`` is set, which is
        what keeps pruning and recovery from ever touching them.
        """
        directory = self._ckpt_dir(store)
        if not directory.is_dir():
            return []
        entries = []
        for path in directory.iterdir():
            match = _CKPT_NAME.match(path.name)
            if match and (all_specs or match.group(2) == self.spec_digest):
                entries.append((int(match.group(1)), path))
        return sorted(entries)

    def recover(self, store: Optional[store_mod.Store] = None) -> bool:
        """Restore the newest verifiable checkpoint, if any.

        Scans this specification's checkpoints newest-first (checkpoints
        written under a different ``spec_digest`` are never candidates,
        whatever their design width); each candidate must load (the
        store quarantines torn ``.npy`` files) *and* its recomputed
        digest must match the content-addressed key — so a corrupted
        column silently falls through to the previous checkpoint instead
        of poisoning the state.  Returns ``True`` when state was restored.
        """
        store = store or store_mod.Store()
        for seq, path in reversed(self._list_checkpoints(store)):
            key = f"stream/{self.name}/ckpt/{path.name[:-4]}"
            try:
                payload = np.asarray(store.get(key), dtype=float)
            except store_mod.StoreError:
                continue
            digest = hashlib.sha256(payload.tobytes()).hexdigest()[:12]
            if not path.name[:-4].endswith(digest):
                obs.counter("stream.checkpoint_rejects").inc()
                continue
            if self._restore(payload, seq):
                obs.counter("stream.recoveries").inc()
                return True
        return False

    def _restore(self, payload: np.ndarray, seq: int) -> bool:
        if payload.ndim != 1 or len(payload) < _HEADER:
            return False
        fmt, ckpt_seq, rows, batches, p = payload[:_HEADER]
        p = int(p)
        if fmt != CHECKPOINT_FORMAT or p != len(self.moment):
            # A checkpoint of a different spec (different design width)
            # cannot seed this accumulator — the caller rebuilds from the
            # dataset instead.
            return False
        if len(payload) != _HEADER + p + p * p:
            return False
        self.moment = payload[_HEADER : _HEADER + p].copy()
        self.gram = payload[_HEADER + p :].reshape(p, p).copy()
        self.rows = int(rows)
        self.batches = int(batches)
        self.seq = max(int(ckpt_seq), seq)
        return True
