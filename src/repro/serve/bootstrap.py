"""Assembly helpers: dataset → trained manager → registry → live server.

Used by the ``python -m repro.experiments serve`` CLI, the serving
benchmarks, and the end-to-end tests, so all three bring the service up
through the exact same path.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.genetic import GeneticSearch
from repro.core.updater import ModelManager
from repro.serve.batching import BatchConfig, ModelSlot
from repro.serve.manager import ServingManager
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.server import PredictionServer

#: Variable layout of the demo service (three software characteristics,
#: two hardware parameters — the same shape the engine benchmark uses).
DEMO_X_NAMES = ("x1", "x2", "x3")
DEMO_Y_NAMES = ("y1", "y2")


def demo_dataset(
    n_apps: int = 4, n_per_app: int = 30, seed: int = 0
) -> ProfileDataset:
    """A small synthetic HW-SW profile set with known structure."""
    rng = np.random.default_rng(seed)
    ds = ProfileDataset(DEMO_X_NAMES, DEMO_Y_NAMES)
    for k in range(n_apps):
        for record in _app_records(f"app{k}", n_per_app, rng, shift=0.5 * k):
            ds.add(record)
    return ds


def outlier_profiles(
    application: str, n: int = 12, seed: int = 99, shift: float = 4.0
) -> List[ProfileRecord]:
    """Profiles of a behaviorally new application (forces a model update).

    The response surface gains a strong extra term the steady-state model
    has never seen, so its median error lands well outside the paper's
    1.5x tolerance band.
    """
    rng = np.random.default_rng(seed)
    return _app_records(application, n, rng, shift=shift, extra_term=1.5)


def _app_records(application, n, rng, shift=0.0, extra_term=0.0):
    records = []
    for _ in range(n):
        x = rng.normal(loc=shift, scale=1.0, size=3)
        y = rng.uniform(0.5, 2.0, size=2)
        z = (
            2.0 + 0.5 * x[0] - 0.3 * x[1] + 0.2 * x[2] ** 2
            + 0.8 * y[0] + 0.4 * x[0] * y[0]
            + extra_term * x[1] * y[1]
            + rng.normal(0, 0.01)
        )
        records.append(
            ProfileRecord(application, x, y, float(np.exp(z / 4.0)))
        )
    return records


def build_service(
    dataset: ProfileDataset,
    registry_root: Union[str, Path],
    space: str = "demo",
    application: str = "suite",
    host: str = "127.0.0.1",
    port: int = 0,
    generations: int = 3,
    update_generations: int = 2,
    population_size: int = 10,
    seed: int = 0,
    batch_config: Optional[BatchConfig] = None,
    min_update_profiles: int = 10,
    request_deadline_s: float = 30.0,
    backend: str = "cpu",
) -> Tuple[PredictionServer, ServingManager, ModelRegistry]:
    """Train, publish, and assemble a ready-to-start server.

    The caller still runs the asyncio lifecycle (``await server.start()``
    / ``serve_forever``); everything up to that — genetic bootstrap
    (§3.2), registry publish, slot load, manager wiring — happens here.
    ``backend`` names the timing backend the profiles came from; it must
    be registered in :mod:`repro.uarch.backends` and flows into registry
    metadata, stats payloads, and prometheus labels.
    """
    from repro.uarch.backends import get_backend

    get_backend(backend)  # reject unknown names before anything is built
    search = GeneticSearch(population_size=population_size, seed=seed)
    manager = ModelManager(
        dataset,
        search=search,
        generations=generations,
        update_generations=update_generations,
        min_update_profiles=min_update_profiles,
    )
    manager.train()

    registry = ModelRegistry(registry_root)
    slot = ModelSlot()
    serving = ServingManager(
        manager, registry, ModelKey(space, application), slot, backend=backend
    )
    serving.publish_initial(
        metadata={
            "trigger": "bootstrap",
            "steady_state_error": manager.steady_state_error,
            "n_records": len(dataset),
        }
    )
    server = PredictionServer(
        slot,
        host=host,
        port=port,
        batch_config=batch_config,
        manager=serving,
        request_deadline_s=request_deadline_s,
        backend=backend,
    )
    return server, serving, registry


def attach_streaming(
    serving: ServingManager, publish_every: int = 1, **respec_kwargs
) -> object:
    """Wire a :class:`repro.stream.StreamingRespecifier` into a built service.

    Reuses the ModelManager's dataset, GA search (so re-specifications
    warm-start from its retained population), and bootstrap search result
    — no second GA run.  ``publish_every`` throttles per-refresh registry
    publishes (see :meth:`ServingManager.attach_stream`); extra kwargs go
    to the respecifier constructor (``drift_config``,
    ``checkpoint_every``, ...).  Once attached, the batch ``observe`` op
    is rejected in favor of ``observe_stream``.
    """
    from repro.stream import StreamingRespecifier

    manager = serving.manager
    if manager.last_search_result is None:
        raise RuntimeError("train() the ModelManager before attaching a stream")
    respec = StreamingRespecifier(
        manager.dataset, manager.search, **respec_kwargs
    )
    respec.bootstrap_from(manager.last_search_result)
    serving.attach_stream(respec, publish_every=publish_every)
    return respec
