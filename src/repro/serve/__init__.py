"""Online model serving: registry, micro-batched prediction, live updates.

The deployment layer the paper's methodology points at (§3.2's "models can
be boot-strapped ... and updated as new software arrives"): trained
:class:`~repro.core.model.InferredModel` objects are published to a
versioned on-disk registry, served over TCP with micro-batched vectorized
prediction, and re-specified in the background by the genetic heuristic as
new applications accrue — with atomic old-or-new model swaps.

Public API:

* registry: :class:`ModelRegistry`, :class:`ModelKey`,
  :class:`PublishedModel`, :class:`RegistryError`
* batching: :class:`MicroBatcher`, :class:`BatchConfig`,
  :class:`ModelSlot`, :class:`QueueFullError`, :class:`RequestTimeout`
* server: :class:`PredictionServer`, :class:`ServerThread`
* updates: :class:`ServingManager`
* clients: :class:`ServeClient`, :class:`AsyncServeClient`,
  :class:`LoadGenerator`, :func:`wait_for_server` (retries per
  :class:`repro.faults.RetryPolicy`, re-exported here)
* assembly: :func:`build_service`, :func:`demo_dataset`,
  :func:`outlier_profiles`
* sharding: :class:`ShardSupervisor`, :class:`ShardServer`,
  :class:`ShardRouter`, :func:`build_sharded_service`,
  :func:`supports_reuse_port` — N worker processes behind one port
  (SO_REUSEPORT or the router fallback) with fleet-atomic model swaps
"""

from repro.faults import NO_RETRY, RetryPolicy
from repro.serve.batching import (
    BatchConfig,
    BatchStats,
    MicroBatcher,
    ModelSlot,
    QueueFullError,
    RequestTimeout,
)
from repro.serve.bootstrap import build_service, demo_dataset, outlier_profiles
from repro.serve.client import (
    AsyncServeClient,
    LoadGenerator,
    LoadReport,
    ServeClient,
    ServeError,
    wait_for_server,
)
from repro.serve.manager import ServingManager
from repro.serve.registry import (
    ModelKey,
    ModelRegistry,
    PublishedModel,
    RegistryError,
)
from repro.serve.server import FrameTooLarge, PredictionServer
from repro.serve.shard import (
    ShardRouter,
    ShardServer,
    ShardSupervisor,
    build_sharded_service,
    supports_reuse_port,
)
from repro.serve.testing import ServerThread

__all__ = [
    "NO_RETRY",
    "RetryPolicy",
    "FrameTooLarge",
    "BatchConfig",
    "BatchStats",
    "MicroBatcher",
    "ModelSlot",
    "QueueFullError",
    "RequestTimeout",
    "build_service",
    "demo_dataset",
    "outlier_profiles",
    "AsyncServeClient",
    "LoadGenerator",
    "LoadReport",
    "ServeClient",
    "ServeError",
    "wait_for_server",
    "ServingManager",
    "ModelKey",
    "ModelRegistry",
    "PublishedModel",
    "RegistryError",
    "PredictionServer",
    "ServerThread",
    "ShardRouter",
    "ShardServer",
    "ShardSupervisor",
    "build_sharded_service",
    "supports_reuse_port",
]
