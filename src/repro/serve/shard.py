"""Sharded multi-process serving: N workers, one port, one model fleet.

A single :class:`~repro.serve.server.PredictionServer` is bounded by one
event loop on one core; the GIL caps it regardless of batcher tuning.
This module scales the same protocol across processes on one machine:

* a parent :class:`ShardSupervisor` forks ``n_shards`` worker processes;
* each worker runs its own event loop, micro-batcher, and a *read-only*
  :class:`~repro.serve.batching.ModelSlot` loaded from the shared
  on-disk :class:`~repro.serve.registry.ModelRegistry`;
* clients connect to ONE public ``host:port``.  On platforms with
  ``SO_REUSEPORT`` (Linux, BSDs) every worker accepts on that port
  directly and the kernel load-balances connections; elsewhere the
  supervisor runs a :class:`ShardRouter` — a single-listener asyncio
  byte pump that round-robins connections to per-shard private ports
  (with connect-failover past dead shards).

**Model swaps are fleet-atomic in the versioned sense**: the supervisor
publishes to the registry first (durable), then broadcasts a ``reload``
op to every shard's private port.  Each :class:`ShardServer` reloads the
*exact* published version and swaps its slot only if the version is
newer (the slot enforces monotonicity), so during a rollout clients
observe at most two versions — ``{v, v+1}`` — and never an older one
resurfacing.  ``tests/test_serve_shard.py`` property-tests this.

**The feedback path stays centralized**: shards proxy ``observe`` frames
to the supervisor's control server (:class:`_ObserveProxy`), where the
single :class:`~repro.serve.manager.ServingManager` accrues evidence,
re-specifies, publishes, and — via its ``on_swap`` hook — fans the new
version out to every shard.  One learner, N predictors.

**Shards are cattle**: a monitor thread waits on process sentinels and
respawns any worker that dies (crash, injected ``shard.request=kill``,
or a client-sent ``shutdown`` op, which therefore only recycles one
shard).  A respawned worker loads the latest registry version, so it
rejoins already reconciled.  Fleet shutdown is :meth:`ShardSupervisor.drain`:
scrape per-shard metrics, stop every worker gracefully, flush the
per-shard + merged JSONL report, stop the control plane.

Fault sites: ``shard.request`` (every frame a shard dispatches — ``kill``
here is the chaos-suite shard-crash scenario), ``shard.worker.boot``
(worker startup, before the ready handshake).

Observability: each worker keeps its own process-wide ``repro.obs``
registry (reset post-fork so fork-inherited counts never double-report);
the supervisor scrapes per-shard snapshots and merges them in shard-id
order — the same deterministic in-order merge ``repro.parallel`` uses —
plus a ``prometheus_text_multi`` dump with per-shard ``shard="<i>"``
labels.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import functools
import itertools
import multiprocessing
import multiprocessing.connection
import os
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro import faults, obs
from repro.obs import MetricsRegistry, prometheus_text_multi, write_jsonl
from repro.serve.batching import BatchConfig, ModelSlot
from repro.serve.bootstrap import build_service
from repro.serve.client import NO_RETRY, AsyncServeClient, ServeClient
from repro.serve.manager import ServingManager
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.server import PredictionServer
from repro.serve.testing import ServerThread


@functools.lru_cache(maxsize=None)
def supports_reuse_port() -> bool:
    """Can this platform actually share a listening port across sockets?

    ``hasattr(socket, "SO_REUSEPORT")`` is necessary but not sufficient
    (some kernels expose the constant and refuse the double bind), so
    probe with two real sockets once and cache the verdict.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    s1 = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s2 = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        s1.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        s1.bind(("127.0.0.1", 0))
        s2.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        s2.bind(("127.0.0.1", s1.getsockname()[1]))
        return True
    except OSError:
        return False
    finally:
        s1.close()
        s2.close()


def _reserve_reuse_port(host: str, port: int) -> Tuple[socket.socket, int]:
    """Bind (but never listen on) a SO_REUSEPORT socket to pin the port.

    The supervisor holds this socket for the fleet's lifetime: it fixes
    the port number before any worker exists (``port=0`` resolves here,
    once, so every worker binds the same number) and keeps the number
    reserved across the window where all shards are mid-respawn.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock, sock.getsockname()[1]


# -- the per-shard server ----------------------------------------------------------


class _ObserveProxy:
    """Stands in for the ServingManager inside a shard worker.

    Prediction never leaves the shard; *learning* must — the single
    ServingManager lives in the supervisor.  This proxy forwards each
    ``observe`` frame verbatim to the supervisor's control port and
    relays the reply, so clients can send observations to any shard.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.forwarded = 0
        self.failed = 0

    async def handle_observe(self, request: dict) -> dict:
        return await self._forward(request)

    async def handle_observe_stream(self, request: dict) -> dict:
        # Streaming maintenance is control-plane work just like batch
        # observes: the supervisor owns the one StreamingRespecifier.
        return await self._forward(request)

    async def _forward(self, request: dict) -> dict:
        client = AsyncServeClient(self.host, self.port)
        try:
            await client.connect()
            reply = await client.request(request, check=False)
        except (OSError, EOFError, asyncio.IncompleteReadError) as exc:
            self.failed += 1
            obs.counter("shard.observe_forward_failures").inc()
            return {
                "ok": False,
                "status": 503,
                "error": f"control plane unreachable: {exc}",
            }
        finally:
            await client.close()
        self.forwarded += 1
        obs.counter("shard.observe_forwarded").inc()
        return reply

    def stats_dict(self) -> Dict[str, object]:
        return {
            "observe_forwarded": self.forwarded,
            "observe_forward_failures": self.failed,
            "control_port": self.port,
        }


class ShardServer(PredictionServer):
    """One worker's server: the base protocol plus fleet plumbing.

    Extends :class:`PredictionServer` with

    * a ``reload`` op (version-gated registry load + slot swap) — the
      receiving end of the supervisor's fleet-wide swap broadcast;
    * a *private* loopback listener (always), the reload/stats/drain
      channel that stays reachable whether or not the public port is
      kernel-balanced;
    * the ``shard.request`` fault site ahead of every dispatch;
    * shard-labeled metrics and a ``shard`` field in ``stats``.
    """

    def __init__(
        self,
        slot: ModelSlot,
        shard_id: int,
        registry: ModelRegistry,
        key: ModelKey,
        host: str = "127.0.0.1",
        port: int = 0,
        public_bind: bool = True,
        reuse_port: bool = False,
        batch_config: Optional[BatchConfig] = None,
        manager=None,
        request_deadline_s: float = 30.0,
        backend: str = "cpu",
    ):
        super().__init__(
            slot,
            host=host,
            port=port,
            batch_config=batch_config,
            manager=manager,
            request_deadline_s=request_deadline_s,
            reuse_port=reuse_port,
            backend=backend,
        )
        self.shard_id = shard_id
        self.registry = registry
        self.key = key
        self.public_bind = public_bind
        self.private_port = 0
        self._private_server: Optional[asyncio.base_events.Server] = None
        self._obs_reloads = obs.counter("shard.reloads_applied")
        self._ops["reload"] = self._op_reload

    async def start(self) -> None:
        self.batcher.start()
        if self.public_bind:
            kwargs = {"reuse_port": True} if self.reuse_port else {}
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, **kwargs
            )
            self.port = self._server.sockets[0].getsockname()[1]
        # The private channel: loopback, kernel-assigned port, never
        # kernel-balanced — the supervisor can always address THIS shard.
        self._private_server = await asyncio.start_server(
            self._handle_connection, "127.0.0.1", 0
        )
        self.private_port = self._private_server.sockets[0].getsockname()[1]

    async def _shutdown(self) -> None:
        if self._private_server is not None:
            self._private_server.close()
            await self._private_server.wait_closed()
            self._private_server = None
        await super()._shutdown()

    async def _dispatch_op(self, request: dict) -> dict:
        # The shard-crash/hang chaos hook: kill exits this worker (the
        # supervisor respawns), delay wedges the request (the deadline
        # answers 408), drop tears the connection (clients retry).
        await faults.site_async("shard.request")
        return await super()._dispatch_op(request)

    def _op_reload(self, request: dict) -> dict:
        """Version-gated model reload from the shared registry.

        ``version`` pins the exact published version to load (the swap
        broadcast passes it so every shard lands on the same bytes);
        omitted, the latest valid version is resolved — the respawn and
        manual-reconcile path.  A version at or below the live one is a
        no-op: broadcasts are idempotent and re-deliveries/reorderings
        can never roll a shard back.
        """
        version = request.get("version")
        if version is None:
            version = self.registry.latest_version(self.key)
        version = int(version)
        current = self.slot.version
        if version <= current:
            return {
                "ok": True,
                "op": "reload",
                "shard": self.shard_id,
                "model_version": current,
                "reloaded": False,
            }
        model, loaded = self.registry.load(self.key, version)
        self.slot.swap(loaded, model)
        self._obs_reloads.inc()
        obs.gauge("serve.model_version").set(loaded)
        return {
            "ok": True,
            "op": "reload",
            "shard": self.shard_id,
            "model_version": loaded,
            "reloaded": True,
        }

    def _op_stats(self) -> dict:
        payload = super()._op_stats()
        payload["shard"] = self.shard_id
        payload["private_port"] = self.private_port
        return payload

    def _op_metrics(self, request: dict) -> dict:
        if request.get("format") == "prometheus":
            text = obs.prometheus_dump(
                labels={"shard": str(self.shard_id), "backend": self.backend}
            )
            return {"ok": True, "format": "prometheus", "text": text}
        return {
            "ok": True,
            "format": "snapshot",
            "shard": self.shard_id,
            "metrics": obs.snapshot(),
        }


# -- the worker process ------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker needs, in fork-safe primitives."""

    shard_id: int
    registry_root: str
    space: str
    application: str
    host: str
    #: public port to bind with SO_REUSEPORT, or ``None`` in router mode
    public_port: Optional[int]
    control_port: int
    batch_config: Optional[BatchConfig]
    request_deadline_s: float
    backend: str = "cpu"


def _shard_worker_main(spec: _WorkerSpec, ready_conn) -> None:
    """Worker process entry: build the shard server, run its loop."""
    # The fork copied the parent's metrics registry; start from zero so
    # per-shard snapshots report only this shard's activity and the
    # supervisor's in-order merge never double-counts parent history.
    obs.reset()
    # Ctrl-C belongs to the supervisor (it drains the fleet); workers
    # stop via SIGTERM or a shutdown/drain op on the private port.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    faults.site("shard.worker.boot")

    # recover=False: read-only opens must not sweep a live publisher's
    # in-flight .tmp-* files into quarantine.
    registry = ModelRegistry(spec.registry_root, recover=False)
    key = ModelKey(spec.space, spec.application)
    model, version = registry.load(key)
    slot = ModelSlot(model, version)
    server = ShardServer(
        slot,
        spec.shard_id,
        registry,
        key,
        host=spec.host,
        port=spec.public_port or 0,
        public_bind=spec.public_port is not None,
        reuse_port=spec.public_port is not None,
        batch_config=spec.batch_config,
        manager=_ObserveProxy("127.0.0.1", spec.control_port),
        request_deadline_s=spec.request_deadline_s,
        backend=spec.backend,
    )
    obs.gauge("serve.model_version").set(version)
    obs.gauge("shard.id").set(spec.shard_id)

    async def main() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signal.SIGTERM, server.stop)
        ready_conn.send(
            {
                "shard": spec.shard_id,
                "pid": os.getpid(),
                "private_port": server.private_port,
                "public_port": server.port if spec.public_port is not None else None,
                "model_version": version,
            }
        )
        ready_conn.close()
        await server.serve_forever()

    try:
        asyncio.run(main())
    except BaseException as exc:
        # Startup failures (bind error, injected boot fault) must reach
        # the parent; if the ready message already went out this send
        # hits a closed pipe and is ignored.
        with contextlib.suppress(OSError, ValueError):
            ready_conn.send({"shard": spec.shard_id, "error": repr(exc)})
        raise


# -- the router fallback -----------------------------------------------------------


class ShardRouter:
    """Single-listener round-robin connection router.

    The portability fallback when ``SO_REUSEPORT`` is unavailable: the
    supervisor listens on the public port itself and pumps each accepted
    connection's bytes to one shard's private port, rotating targets per
    connection and failing over past shards that refuse the connect.
    Byte-level and protocol-agnostic — frames, retries, and errors all
    pass through untouched, so clients cannot tell the modes apart.
    """

    def __init__(self, host: str, port: int, targets: Callable[[], List[int]]):
        self.host = host
        self.port = port
        self._targets = targets
        self._rr = itertools.count()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> int:
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("shard router did not come up")
        if self._startup_error is not None:
            raise RuntimeError("shard router failed to start") from self._startup_error
        return self.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and not self._loop.is_closed():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle, self.host, self.port)
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        await self._stop_event.wait()
        server.close()
        await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def _handle(self, client_reader, client_writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        obs.counter("shard.router_connections").inc()

        ports = self._targets()
        shard_reader = shard_writer = None
        if ports:
            start_index = next(self._rr)
            for offset in range(len(ports)):
                port = ports[(start_index + offset) % len(ports)]
                try:
                    shard_reader, shard_writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    break
                except OSError:
                    # Dead/respawning shard: fail over to the next one.
                    obs.counter("shard.router_failovers").inc()
        if shard_writer is None:
            obs.counter("shard.router_no_backend").inc()
            client_writer.close()
            with contextlib.suppress(Exception):
                await client_writer.wait_closed()
            return

        try:
            await asyncio.gather(
                self._pump(client_reader, shard_writer),
                self._pump(shard_reader, client_writer),
                return_exceptions=True,
            )
        finally:
            for writer in (client_writer, shard_writer):
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

    @staticmethod
    async def _pump(reader, writer) -> None:
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            # Propagate the half-close so a shard's reply in flight still
            # reaches the client after the client stops sending.
            with contextlib.suppress(Exception):
                if writer.can_write_eof():
                    writer.write_eof()


# -- the supervisor ----------------------------------------------------------------


@dataclasses.dataclass
class _WorkerHandle:
    shard_id: int
    process: multiprocessing.Process
    private_port: int
    public_port: Optional[int]
    spawned_unix: float


class ShardSupervisor:
    """Owns the fleet: spawn, route, swap, monitor, respawn, drain.

    The supervisor process hosts the single :class:`ServingManager` (the
    learner) on a loopback *control server*; shards proxy ``observe``
    frames to it, and its ``on_swap`` hook broadcasts every successful
    re-specification to the fleet.  :meth:`publish_model` is the manual
    equivalent for operators/tests.

    ``reuse_port=None`` auto-detects: kernel balancing where the
    platform supports it, the :class:`ShardRouter` fallback elsewhere.
    """

    def __init__(
        self,
        serving: ServingManager,
        registry_root: Union[str, Path],
        n_shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: Optional[bool] = None,
        batch_config: Optional[BatchConfig] = None,
        request_deadline_s: float = 30.0,
        max_respawns: int = 16,
        respawn_backoff_s: float = 0.05,
        spawn_timeout_s: float = 60.0,
        control_server: Optional[PredictionServer] = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.serving = serving
        self.registry = serving.registry
        self.key = serving.key
        # The fleet serves what the learner trained on: one backend tag,
        # propagated from the ServingManager into every worker.
        self.backend = getattr(serving, "backend", "cpu")
        self.registry_root = str(registry_root)
        self.n_shards = n_shards
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self.batch_config = batch_config
        self.request_deadline_s = request_deadline_s
        self.max_respawns = max_respawns
        self.respawn_backoff_s = respawn_backoff_s
        self.spawn_timeout_s = spawn_timeout_s
        self.mode: Optional[str] = None  # "reuse_port" | "router"
        self.control_port = 0
        self.respawns = 0

        self._control_server = control_server or PredictionServer(
            serving.slot,
            host="127.0.0.1",
            port=0,
            manager=serving,
            backend=self.backend,
        )
        self._control_thread: Optional[ServerThread] = None
        self._router: Optional[ShardRouter] = None
        self._reserved_sock: Optional[socket.socket] = None
        self._handles: Dict[int, _WorkerHandle] = {}
        self._handles_lock = threading.Lock()
        self._monitor_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "ShardSupervisor":
        reuse = self.reuse_port if self.reuse_port is not None else supports_reuse_port()
        self.mode = "reuse_port" if reuse else "router"

        # Control plane first: workers forward observes here from boot.
        self._control_thread = ServerThread(self._control_server).start()
        self.control_port = self._control_server.port
        self.serving.on_swap = self._broadcast_reload

        if reuse:
            # Pin the public port before any worker exists so every shard
            # binds the same (resolved) number.
            self._reserved_sock, self.port = _reserve_reuse_port(self.host, self.port)

        try:
            for shard_id in range(self.n_shards):
                self._spawn(shard_id)
        except BaseException:
            self.drain()
            raise

        if not reuse:
            self._router = ShardRouter(self.host, self.port, self._live_private_ports)
            self.port = self._router.start()

        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-shard-monitor", daemon=True
        )
        self._monitor_thread.start()
        obs.gauge("shard.fleet_size").set(self.n_shards)
        return self

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()

    def drain(self, timeout_s: float = 30.0) -> None:
        """Graceful fleet shutdown (idempotent).

        Order matters: stop respawning, stop routing new connections,
        then stop the workers (shutdown op first, SIGTERM for stragglers),
        the control plane, and the learner's executor.  Callers that want
        the fleet's final metrics run :meth:`flush_metrics` *before* this
        — a stopped shard cannot be scraped.
        """
        self._stopping.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        if self._router is not None:
            self._router.stop()
            self._router = None

        with self._handles_lock:
            handles = sorted(self._handles.values(), key=lambda h: h.shard_id)
        deadline = time.monotonic() + timeout_s
        for handle in handles:
            try:
                with ServeClient(
                    "127.0.0.1", handle.private_port, timeout=5.0, retry=NO_RETRY
                ) as client:
                    client.shutdown()
            except Exception:
                pass  # already dead or wedged; terminate below
        for handle in handles:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        with self._handles_lock:
            self._handles.clear()

        if self._reserved_sock is not None:
            self._reserved_sock.close()
            self._reserved_sock = None
        if self._control_thread is not None:
            self._control_thread.stop()
            self._control_thread = None
        self.serving.close()

    # -- worker management -----------------------------------------------------------

    def _spawn(self, shard_id: int) -> _WorkerHandle:
        spec = _WorkerSpec(
            shard_id=shard_id,
            registry_root=self.registry_root,
            space=self.key.space,
            application=self.key.application,
            host=self.host,
            public_port=self.port if self.mode == "reuse_port" else None,
            control_port=self.control_port,
            batch_config=self.batch_config,
            request_deadline_s=self.request_deadline_s,
            backend=self.backend,
        )
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_shard_worker_main,
            args=(spec, child_conn),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(self.spawn_timeout_s):
                process.terminate()
                raise RuntimeError(
                    f"shard {shard_id} did not come up in {self.spawn_timeout_s}s"
                )
            try:
                info = parent_conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard {shard_id} died during startup "
                    f"(exit code {process.exitcode})"
                ) from None
        finally:
            parent_conn.close()
        if "error" in info:
            process.join(timeout=5.0)
            raise RuntimeError(f"shard {shard_id} failed to start: {info['error']}")

        handle = _WorkerHandle(
            shard_id=shard_id,
            process=process,
            private_port=info["private_port"],
            public_port=info.get("public_port"),
            spawned_unix=time.time(),
        )
        with self._handles_lock:
            self._handles[shard_id] = handle
        obs.counter("shard.workers_spawned").inc()
        return handle

    def _live_private_ports(self) -> List[int]:
        with self._handles_lock:
            return [
                handle.private_port
                for _, handle in sorted(self._handles.items())
                if handle.process.is_alive()
            ]

    def _monitor(self) -> None:
        """Wait on process sentinels; respawn whatever dies."""
        while not self._stopping.is_set():
            with self._handles_lock:
                sentinels = {
                    h.process.sentinel: h for h in self._handles.values()
                }
            if not sentinels:
                if self._stopping.wait(0.1):
                    return
                continue
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=0.25
            )
            for sentinel in ready:
                if self._stopping.is_set():
                    return
                handle = sentinels[sentinel]
                handle.process.join()
                obs.counter("shard.worker_deaths").inc()
                with self._handles_lock:
                    if self._handles.get(handle.shard_id) is not handle:
                        continue  # already replaced
                    del self._handles[handle.shard_id]
                if self.respawns >= self.max_respawns:
                    # A crash loop must not fork forever; the fleet keeps
                    # serving on the surviving shards.
                    obs.counter("shard.respawns_exhausted").inc()
                    continue
                self.respawns += 1
                time.sleep(self.respawn_backoff_s)
                try:
                    self._spawn(handle.shard_id)
                    obs.counter("shard.workers_respawned").inc()
                except Exception:
                    obs.counter("shard.respawn_failures").inc()

    # -- fleet-wide model swaps --------------------------------------------------------

    async def _broadcast_reload(self, version: Optional[int]) -> int:
        """Tell every live shard to load ``version``; returns the ack count.

        Runs on the control server's loop (it is the ServingManager's
        ``on_swap`` hook).  Per-shard failures are retried briefly, then
        counted and left for reconciliation — a dead shard reloads the
        latest version when it respawns, a wedged one answers the next
        broadcast; meanwhile it still serves the previous version, which
        the version-gating contract permits.
        """
        with self._handles_lock:
            handles = sorted(self._handles.values(), key=lambda h: h.shard_id)
        results = await asyncio.gather(
            *(self._reload_one(handle, version) for handle in handles)
        )
        return sum(results)

    async def _reload_one(self, handle: _WorkerHandle, version) -> bool:
        for attempt in range(3):
            try:
                client = AsyncServeClient("127.0.0.1", handle.private_port)
                await client.connect()
                try:
                    reply = await client.request(
                        {"op": "reload", "version": version}, check=False
                    )
                finally:
                    await client.close()
                if reply.get("ok"):
                    obs.counter("shard.reload_acks").inc()
                    return True
            except (OSError, EOFError, asyncio.IncompleteReadError):
                pass
            await asyncio.sleep(0.05 * (attempt + 1))
        obs.counter("shard.reload_failures").inc()
        return False

    def reload_all(self, version: Optional[int] = None, timeout: float = 30.0) -> int:
        """Synchronous fleet reload (``None`` = latest registry version)."""
        if self._control_thread is None or self._control_thread.loop is None:
            raise RuntimeError("supervisor is not started")
        future = asyncio.run_coroutine_threadsafe(
            self._broadcast_reload(version), self._control_thread.loop
        )
        return future.result(timeout)

    def publish_model(self, model, metadata=None, timeout: float = 30.0) -> int:
        """Publish ``model`` and roll it out fleet-wide; returns its version.

        The same durable-first order the online update uses: registry
        publish, supervisor slot swap, then the reload broadcast — at
        every instant each shard serves either the old or the new
        version, never anything else.
        """
        receipt = self.registry.publish(self.key, model, metadata=metadata)
        self.serving.slot.swap(receipt.version, model)
        self.serving.stats.last_published_version = receipt.version
        obs.gauge("serve.model_version").set(receipt.version)
        self.reload_all(receipt.version, timeout=timeout)
        return receipt.version

    # -- fleet introspection -----------------------------------------------------------

    def _shard_request(self, handle: _WorkerHandle, payload: dict) -> dict:
        with ServeClient(
            "127.0.0.1", handle.private_port, timeout=5.0, retry=NO_RETRY
        ) as client:
            return client.request(payload)

    def fleet_stats(self) -> Dict[str, object]:
        """Aggregate + per-shard serving stats (scraped over private ports)."""
        with self._handles_lock:
            handles = sorted(self._handles.values(), key=lambda h: h.shard_id)
        per_shard: Dict[str, dict] = {}
        for handle in handles:
            try:
                per_shard[str(handle.shard_id)] = self._shard_request(
                    handle, {"op": "stats"}
                )
            except Exception as exc:
                per_shard[str(handle.shard_id)] = {"ok": False, "error": repr(exc)}
        live = [s for s in per_shard.values() if s.get("ok")]
        return {
            "mode": self.mode,
            "shards": self.n_shards,
            "live": len(live),
            "respawns": self.respawns,
            "supervisor_version": self.serving.slot.version,
            "versions": sorted({s["model_version"] for s in live}),
            "requests": sum(s["requests"] for s in live),
            "predictions": sum(s["predictions"] for s in live),
            "per_shard": per_shard,
        }

    def fleet_metrics(self) -> Tuple[List[Tuple[int, dict]], dict]:
        """Per-shard obs snapshots and their deterministic merge.

        The merge folds shards in ascending shard-id order into a fresh
        registry — same in-order contract as ``repro.parallel``'s worker
        aggregation, so two scrapes of the same fleet state agree bit
        for bit.
        """
        with self._handles_lock:
            handles = sorted(self._handles.values(), key=lambda h: h.shard_id)
        snapshots: List[Tuple[int, dict]] = []
        for handle in handles:
            try:
                reply = self._shard_request(handle, {"op": "metrics"})
                snapshots.append((handle.shard_id, reply["metrics"]))
            except Exception:
                obs.counter("shard.metrics_scrape_failures").inc()
        merged = MetricsRegistry()
        for _, snapshot in snapshots:
            merged.merge(snapshot)
        return snapshots, merged.snapshot()

    def prometheus_dump(self) -> str:
        """The whole fleet in Prometheus text format, ``shard``-labeled."""
        snapshots, _ = self.fleet_metrics()
        series = [
            ({"shard": str(shard_id), "backend": self.backend}, snapshot)
            for shard_id, snapshot in snapshots
        ]
        series.append(
            ({"shard": "supervisor", "backend": self.backend}, obs.snapshot())
        )
        return prometheus_text_multi(series)

    def flush_metrics(self, path: Union[str, Path]) -> Path:
        """Write per-shard, merged-fleet, and supervisor snapshots as JSONL."""
        snapshots, merged = self.fleet_metrics()
        path = Path(path)
        append = False
        for shard_id, snapshot in snapshots:
            write_jsonl(snapshot, path, run=f"shard{shard_id}", append=append)
            append = True
        write_jsonl(merged, path, run="fleet", append=append)
        write_jsonl(obs.snapshot(), path, run="supervisor", append=True)
        return path


# -- assembly ----------------------------------------------------------------------


def build_sharded_service(
    dataset,
    registry_root: Union[str, Path],
    n_shards: int = 2,
    space: str = "demo",
    application: str = "suite",
    host: str = "127.0.0.1",
    port: int = 0,
    reuse_port: Optional[bool] = None,
    generations: int = 3,
    update_generations: int = 2,
    population_size: int = 10,
    seed: int = 0,
    batch_config: Optional[BatchConfig] = None,
    min_update_profiles: int = 10,
    request_deadline_s: float = 30.0,
    max_respawns: int = 16,
    backend: str = "cpu",
) -> ShardSupervisor:
    """Train, publish, and assemble an (unstarted) shard supervisor.

    The sharded twin of :func:`~repro.serve.bootstrap.build_service` —
    and built *through* it, so the learner bootstrap is byte-identical
    between single-process and sharded serving; the server it assembles
    becomes the fleet's loopback control server.
    """
    control_server, serving, _registry = build_service(
        dataset,
        registry_root,
        space=space,
        application=application,
        host="127.0.0.1",
        port=0,
        generations=generations,
        update_generations=update_generations,
        population_size=population_size,
        seed=seed,
        batch_config=batch_config,
        min_update_profiles=min_update_profiles,
        request_deadline_s=request_deadline_s,
        backend=backend,
    )
    return ShardSupervisor(
        serving,
        registry_root=registry_root,
        n_shards=n_shards,
        host=host,
        port=port,
        reuse_port=reuse_port,
        batch_config=batch_config,
        request_deadline_s=request_deadline_s,
        max_respawns=max_respawns,
        control_server=control_server,
    )
