"""Live model updates: wiring §3.2–§3.3 into the serving loop.

:class:`ServingManager` owns the feedback path of the service.  The
prediction path never touches it — predictions read the
:class:`~repro.serve.batching.ModelSlot` snapshot and nothing else — so a
re-specification in flight can never block or fail a prediction.

The flow mirrors the paper's inductive update policy:

1. ``observe`` frames deliver profiles of a (possibly new) application.
   The accuracy check (``ModelManager.observe(auto_update=False)``) runs in
   a worker thread; the asyncio loop stays free to serve predictions.
2. Accurate applications are absorbed silently.  Inaccurate ones accrue
   pending profiles until the hysteresis threshold (10–20 profiles, §3.3).
3. Once the threshold trips, ONE background update runs: absorb the
   evidence, re-run the genetic heuristic (which fans out across processes
   via ``repro.parallel`` when ``REPRO_WORKERS`` is set), refit.
4. The new model is published to the registry first (durable), then
   swapped into the slot (visible).  The swap is a single atomic snapshot
   rebind: every in-flight batch keeps the version it started with, every
   later batch sees the new one — zero dropped requests, old-or-new only.

**Failure policy**: an update that raises anywhere — re-specification,
publish, swap — degrades gracefully to the last-good model.  The slot is
only rebound after a successful publish, so the live snapshot is
untouched by construction; the failure is recorded
(``updates_failed`` / ``last_error`` in :meth:`ServingManager.stats_dict`,
``serve.updates_failed`` in obs) and swallowed rather than left to die as
an unobserved task exception.  Serving never stops because learning
stumbled.  The ``serve.update`` fault site injects such failures in
``tests/test_serve_chaos.py``.

When a :class:`repro.stream.StreamingRespecifier` is attached
(:meth:`ServingManager.attach_stream`), continuous maintenance replaces
the batch flow outright: ``observe_stream`` frames drive
ingest/refresh/re-spec, and batch ``observe`` frames are rejected with a
409 — the two paths each keep their own incumbent model, so letting both
publish would silently revert each other's updates.

Swap safety and version monotonicity are asserted by
``tests/test_serve_manager.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

import numpy as np

from repro import faults, obs
from repro.core.dataset import ProfileDataset, ProfileRecord
from repro.core.updater import ModelManager, ObservationOutcome
from repro.serve.batching import ModelSlot
from repro.serve.registry import ModelKey, ModelRegistry


@dataclasses.dataclass
class UpdateStats:
    observations: int = 0
    absorbed: int = 0
    updates_started: int = 0
    updates_completed: int = 0
    updates_failed: int = 0
    stream_batches: int = 0
    stream_refreshes: int = 0
    stream_respecs: int = 0
    stream_failed: int = 0
    last_published_version: int = 0
    last_error: Optional[str] = None


def _record_last_error(stats: UpdateStats, error: Optional[str]) -> None:
    """Track the last update error in stats AND the Prometheus export.

    ``last_error`` historically only reached ``stats`` frames; the gauge
    makes failure state visible through ``metrics`` /
    ``serve --metrics-dump`` too (1 = last maintenance action failed),
    picking up ``{shard=...}`` labels for free under the sharded tier.
    """
    stats.last_error = error
    obs.gauge("serve.update_last_error").set(0.0 if error is None else 1.0)


class ServingManager:
    """Bridges ``observe`` traffic to ``ModelManager`` and the model slot."""

    def __init__(
        self,
        manager: ModelManager,
        registry: ModelRegistry,
        key: ModelKey,
        slot: ModelSlot,
        backend: str = "cpu",
    ):
        self.manager = manager
        self.registry = registry
        self.key = key
        self.slot = slot
        #: Timing backend this model's profiles came from; stamped into
        #: every registry publish and reported by ``stats``.
        self.backend = backend
        self.stats = UpdateStats()
        # Export the health gauge from boot, not first failure: a scrape
        # that has never seen serve.update_last_error cannot alert on it.
        _record_last_error(self.stats, None)
        # One worker: updates and accuracy checks both mutate the
        # ModelManager, so they serialize on this executor; the _lock
        # additionally keeps the observe/decide step atomic per request.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-update"
        )
        self._lock = asyncio.Lock()
        self._update_task: Optional[asyncio.Task] = None
        #: Optional :class:`repro.stream.StreamingRespecifier` powering the
        #: ``observe_stream`` path (see :meth:`attach_stream`).  While
        #: attached, the batch ``observe`` path is rejected (409): both
        #: maintenance paths publish to the same slot and would silently
        #: revert each other's models otherwise.
        self.stream = None
        self._stream_publish_every = 1
        self._refreshes_since_publish = 0
        #: Optional async hook ``on_swap(version)`` awaited after each
        #: successful publish-then-swap.  The shard supervisor registers
        #: its fleet-wide reload broadcast here; failures are counted
        #: (``serve.swap_hook_failures``), never allowed to fail the
        #: update itself — the local slot already swapped.
        self.on_swap = None

    # -- bootstrap -----------------------------------------------------------------

    def publish_initial(self, metadata: Optional[Dict[str, object]] = None) -> int:
        """Publish the manager's trained model and load it into the slot."""
        if self.manager.model is None:
            raise RuntimeError("train() the ModelManager before serving it")
        receipt = self.registry.publish(
            self.key,
            self.manager.model,
            metadata={"backend": self.backend, **(metadata or {})},
        )
        self.slot.swap(receipt.version, self.manager.model)
        self.stats.last_published_version = receipt.version
        obs.gauge("serve.model_version").set(receipt.version)
        return receipt.version

    # -- observe path --------------------------------------------------------------

    async def handle_observe(self, request: dict) -> dict:
        """Serve one ``observe`` frame; may schedule a background update.

        Rejected (409) while a streaming respecifier is attached: the
        batch updater and the respecifier each keep their own incumbent
        and publish to the same slot, so running both would let either
        maintenance path silently revert the other's published model.
        """
        if self.stream is not None:
            obs.counter("serve.observe_rejected_streaming").inc()
            return {
                "ok": False,
                "status": 409,
                "error": (
                    "batch 'observe' is disabled while a streaming "
                    "respecifier is attached (the two maintenance paths "
                    "would fight over the model slot); use 'observe_stream'"
                ),
            }
        application = request["application"]
        profiles = [
            ProfileRecord(
                application,
                np.asarray(p["x"], dtype=float),
                np.asarray(p["y"], dtype=float),
                float(p["z"]),
            )
            for p in request["profiles"]
        ]
        if not profiles:
            raise ValueError("observe needs at least one profile")

        loop = asyncio.get_running_loop()
        async with self._lock:
            outcome: ObservationOutcome = await loop.run_in_executor(
                self._executor,
                lambda: self.manager.observe(profiles, auto_update=False),
            )
            self.stats.observations += 1
            obs.counter("serve.observations").inc()
            if outcome.accurate:
                self.stats.absorbed += 1
                obs.counter("serve.observations_absorbed").inc()
            update_scheduled = False
            if self.manager.needs_update(outcome) and not self.update_in_progress:
                self.manager.absorb(application)
                self._update_task = loop.create_task(self._run_update())
                self.stats.updates_started += 1
                update_scheduled = True

        return {
            "ok": True,
            "application": outcome.application,
            "median_error": outcome.median_error,
            "steady_state_error": outcome.steady_state_error,
            "accurate": outcome.accurate,
            "n_profiles": outcome.n_profiles,
            "update_scheduled": update_scheduled,
            "model_version": self.slot.version,
        }

    # -- streaming observe path ----------------------------------------------------

    def attach_stream(self, respecifier, publish_every: int = 1) -> None:
        """Enable continuous maintenance via a bootstrapped respecifier.

        The respecifier's incumbent model should be the one served (or an
        ancestor of it): refreshed/re-specified models are published and
        swapped into the slot exactly like batch updates.  While attached,
        the batch ``observe`` op is rejected — see :meth:`handle_observe`.

        ``publish_every`` throttles how often coefficient *refreshes*
        reach the registry: every registry publish is a durable
        tmp/fsync/rename write plus a new version, so publishing each
        refresh puts a disk fsync on the hot ingest path and grows the
        registry without bound.  With ``publish_every=N`` only every Nth
        refresh is published (re-specifications always publish
        immediately); deployments ingesting at rate should set N > 1 here
        or ``refresh_every`` > 1 on the respecifier.
        """
        if respecifier.model is None:
            raise RuntimeError("bootstrap() the respecifier before attaching")
        if publish_every < 1:
            raise ValueError("publish_every must be >= 1")
        self.stream = respecifier
        self._stream_publish_every = publish_every
        self._refreshes_since_publish = 0

    async def handle_observe_stream(self, request: dict) -> dict:
        """Serve one ``observe_stream`` frame: ingest, maybe refresh/respec.

        Same frame shape as ``observe``.  Coefficient refreshes happen
        inline (they are p×p solves); a tripped drift detector instead
        schedules ONE background re-specification, predictions staying on
        the incumbent snapshot for its whole duration.
        """
        if self.stream is None:
            return {
                "ok": False,
                "status": 501,
                "error": "no streaming respecifier attached (see attach_stream)",
            }
        application = request["application"]
        batch = ProfileDataset(
            self.stream.dataset.x_names, self.stream.dataset.y_names
        )
        for p in request["profiles"]:
            batch.add(
                ProfileRecord(
                    application,
                    np.asarray(p["x"], dtype=float),
                    np.asarray(p["y"], dtype=float),
                    float(p["z"]),
                )
            )
        if len(batch) == 0:
            raise ValueError("observe_stream needs at least one profile")

        loop = asyncio.get_running_loop()
        respec_scheduled = False
        async with self._lock:
            try:
                # Respec is deferred to a background task; ingestion itself
                # (prequential scoring + Gram fold + refresh solve) is cheap
                # and runs off-loop on the update executor.
                outcome = await loop.run_in_executor(
                    self._executor,
                    lambda: self.stream.ingest(batch, allow_respec=False),
                )
            except Exception as exc:
                # Same degradation contract as _run_update: the slot keeps
                # the last-good snapshot, the failure is recorded, serving
                # continues.  stream.ingest fault injections land here.
                self.stats.stream_failed += 1
                _record_last_error(self.stats, f"{type(exc).__name__}: {exc}")
                obs.counter("serve.stream_failed").inc()
                return {"ok": False, "status": 500, "error": self.stats.last_error}
            self.stats.stream_batches += 1
            obs.counter("serve.stream_batches").inc()
            if outcome.refreshed:
                self.stats.stream_refreshes += 1
                self._refreshes_since_publish += 1
                if self._refreshes_since_publish >= self._stream_publish_every:
                    self._publish_stream_model("stream-refresh")
                else:
                    # Throttled (attach_stream publish_every): the refresh
                    # updated the in-memory incumbent; the durable publish
                    # rides along with a later refresh or re-spec.
                    obs.counter("serve.stream_publish_deferred").inc()
            if outcome.needs_respec and not self.update_in_progress:
                self._update_task = loop.create_task(self._run_stream_respec())
                self.stats.updates_started += 1
                respec_scheduled = True

        return {
            "ok": True,
            "application": application,
            "action": outcome.action,
            "drift_score": outcome.drift_score,
            "drift_tripped": outcome.tripped,
            "batch_error": outcome.batch_error,
            "respec_scheduled": respec_scheduled,
            "model_version": self.slot.version,
        }

    def _publish_stream_model(self, trigger: str) -> int:
        """Durable-then-visible publish of the stream's incumbent model.

        Must run under ``self._lock``: it reads the respecifier's model
        and detector, which ``stream.ingest`` mutates on the executor
        thread during ``handle_observe_stream`` (which holds the lock
        across that executor hop).
        """
        self._refreshes_since_publish = 0
        receipt = self.registry.publish(
            self.key,
            self.stream.model,
            metadata={
                "trigger": trigger,
                "backend": self.backend,
                "n_records": len(self.stream.dataset),
                "drift_score": self.stream.detector.score(),
            },
        )
        self.slot.swap(receipt.version, self.stream.model)
        self.stats.last_published_version = receipt.version
        obs.gauge("serve.model_version").set(receipt.version)
        return receipt.version

    async def _run_stream_respec(self) -> None:
        """Background drift-triggered re-specification (GA warm-start).

        The GA itself runs lock-free (the single-worker executor already
        serializes it against ingests), but the publish step takes
        ``self._lock``, mirroring :meth:`handle_observe_stream`'s refresh
        publishes: publishing reads the respecifier's model and detector
        window, which a concurrent ``observe_stream`` frame mutates on
        the executor thread while holding the lock — an unlocked publish
        can crash on the detector's deque mutating mid-``score()`` and
        record the successful respec as failed.
        """
        loop = asyncio.get_running_loop()
        try:
            with obs.span("serve.stream_respec"):
                await loop.run_in_executor(self._executor, self.stream.respec)
            async with self._lock:
                version = self._publish_stream_model("stream-respec")
                self.stats.stream_respecs += 1
                self.stats.updates_completed += 1
                _record_last_error(self.stats, None)
            obs.counter("serve.stream_respecs").inc()
            if self.on_swap is not None:
                try:
                    await self.on_swap(version)
                except Exception:
                    obs.counter("serve.swap_hook_failures").inc()
        except Exception as exc:
            self.stats.updates_failed += 1
            _record_last_error(self.stats, f"{type(exc).__name__}: {exc}")
            obs.counter("serve.updates_failed").inc()

    # -- the background update -----------------------------------------------------

    @property
    def update_in_progress(self) -> bool:
        return self._update_task is not None and not self._update_task.done()

    async def wait_for_update(self) -> None:
        """Block until any in-flight update settles (test/shutdown hook)."""
        if self._update_task is not None:
            await asyncio.shield(self._update_task)

    async def _run_update(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            faults.site("serve.update")
            # The genetic re-specification (§3.3) — minutes of CPU at paper
            # scale — runs off-loop; predictions continue on the old
            # snapshot for its whole duration.
            with obs.span("serve.update"):
                model = await loop.run_in_executor(
                    self._executor, self.manager.update
                )
            receipt = self.registry.publish(
                self.key,
                model,
                metadata={
                    "trigger": "online-update",
                    "backend": self.backend,
                    "steady_state_error": self.manager.steady_state_error,
                    "n_records": len(self.manager.dataset),
                },
            )
            # Durable first, visible second: a crash between the two leaves
            # a valid registry entry and a stale-but-correct live model.
            self.slot.swap(receipt.version, model)
            self.stats.last_published_version = receipt.version
            self.stats.updates_completed += 1
            _record_last_error(self.stats, None)
            obs.counter("serve.updates_completed").inc()
            obs.gauge("serve.model_version").set(receipt.version)
            if self.on_swap is not None:
                try:
                    await self.on_swap(receipt.version)
                except Exception:
                    # The update itself succeeded (published + swapped
                    # locally); a failed fan-out is the fleet layer's
                    # problem — it reconciles on respawn/next reload.
                    obs.counter("serve.swap_hook_failures").inc()
        except Exception as exc:
            # Graceful degradation: the slot still holds the last-good
            # (version, model) snapshot — publish-then-swap means a failed
            # update never half-applies.  Record and absorb; a raised
            # exception here would only die unobserved in the task.
            self.stats.updates_failed += 1
            _record_last_error(self.stats, f"{type(exc).__name__}: {exc}")
            obs.counter("serve.updates_failed").inc()

    # -- reporting -----------------------------------------------------------------

    def stats_dict(self) -> Dict[str, object]:
        stats = {
            "backend": self.backend,
            "observations": self.stats.observations,
            "absorbed": self.stats.absorbed,
            "updates_started": self.stats.updates_started,
            "updates_completed": self.stats.updates_completed,
            "updates_failed": self.stats.updates_failed,
            "update_in_progress": self.update_in_progress,
            "last_published_version": self.stats.last_published_version,
            "last_error": self.stats.last_error,
            "pending": {
                app: self.manager.pending_profiles(app)
                for app in self.manager.pending_applications
            },
        }
        if self.stream is not None:
            stats["stream"] = {
                "batches": self.stats.stream_batches,
                "refreshes": self.stats.stream_refreshes,
                "respecs": self.stats.stream_respecs,
                "failed": self.stats.stream_failed,
                **self.stream.stats_dict(),
            }
        return stats

    def close(self) -> None:
        self._executor.shutdown(wait=False)
