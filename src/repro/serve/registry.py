"""Versioned model registry: the durable half of the serving subsystem.

Layered on :mod:`repro.core.serialize`: every published model is one JSON
file whose body is exactly ``model_to_dict`` output (schema version and
checksum included), wrapped in a small registry envelope recording the
(space, application) key, the version number, and free-form metadata.

Layout on disk::

    <root>/
      <space>__<application>/        one directory per registry key
        v000001.json                 immutable, content-checksummed
        v000002.json
        LATEST                       text file holding the latest version

Guarantees:

* **Atomic publish** — payloads are written to a temp file in the same
  directory and linked into place with ``os.link`` (fails rather than
  overwrites on a version collision, so concurrent publishers race safely);
  the ``LATEST`` pointer is swapped with ``os.replace``.  A reader never
  observes a half-written model.
* **Crash-safe publish** — the temp file is ``fsync``\\ ed before the link
  and the directory is ``fsync``\\ ed after it, so a version that became
  visible is durable on disk, not just in the page cache.  A publisher
  that dies inside the window (between temp write and link — the
  ``registry.publish.link`` fault site) leaves only a torn ``.tmp-*``
  artifact, never a half-published version.
* **Quarantine on load** — torn artifacts are swept into a
  ``quarantine/`` subdirectory when a registry is (re)opened, and a
  latest-version load that hits a corrupt manifest quarantines it and
  falls back to the newest *valid* predecessor.  A registry that
  survived a crash or bit-rot keeps serving the last good model; the
  damage is preserved for post-mortems instead of deleted.
* **Validated load** — the payload round-trips through
  :func:`~repro.core.serialize.model_from_dict`, which verifies the schema
  version and SHA-256 checksum; corruption surfaces as
  :class:`~repro.core.serialize.ModelFormatError`, not garbage predictions.
* **LRU cache** — deserialized models are kept in a bounded in-process
  cache keyed by (key, version), so repeated lookups on the serving path
  cost a dict hit, not a JSON parse.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import re
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import faults, obs
from repro.core.model import InferredModel
from repro.core.serialize import (
    ModelFormatError,
    model_from_dict,
    model_to_dict,
)

#: Envelope schema of the registry entry files (distinct from the model
#: payload schema, which is owned by ``core/serialize.py``).
REGISTRY_SCHEMA = 1

_VERSION_FILE = re.compile(r"^v(\d{6})\.json$")
_KEY_TOKEN = re.compile(r"[^A-Za-z0-9._-]+")
#: Distinguishes temp files of concurrent publishers within one process.
_TMP_COUNTER = itertools.count()

#: Subdirectory (per registry key) where torn/corrupt artifacts are moved.
QUARANTINE_DIR = "quarantine"


class RegistryError(RuntimeError):
    """A registry operation failed (unknown key, missing version, ...)."""


def _write_durable(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` and fsync it: survives a crash/power cut."""
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        os.write(fd, text.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename/link inside it is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _slug(token: str) -> str:
    cleaned = _KEY_TOKEN.sub("-", token.strip())
    if not cleaned:
        raise ValueError(f"registry key token {token!r} is empty after sanitizing")
    return cleaned


@dataclasses.dataclass(frozen=True)
class ModelKey:
    """A registry key: which space the model covers, for which application
    mix it was trained."""

    space: str
    application: str

    @property
    def slug(self) -> str:
        return f"{_slug(self.space)}__{_slug(self.application)}"


@dataclasses.dataclass(frozen=True)
class PublishedModel:
    """Receipt for one published model version."""

    key: ModelKey
    version: int
    path: Path
    created_unix: float
    metadata: Dict[str, object]


class ModelRegistry:
    """Durable, versioned store of fitted :class:`InferredModel` objects."""

    def __init__(
        self, root: Union[str, Path], cache_size: int = 8, recover: bool = True
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple[str, int], InferredModel]" = OrderedDict()
        self._lock = threading.Lock()
        # Opening a registry is the crash-recovery point: any .tmp-*
        # artifact on disk belonged to a publisher that died mid-publish
        # (live temp files exist only inside a publish call).  Read-only
        # consumers that share the directory with a LIVE publisher (shard
        # workers) pass ``recover=False`` — sweeping here would race the
        # publisher's in-flight temp file.
        if recover:
            self.recover()

    # -- crash recovery ------------------------------------------------------------

    def recover(self) -> List[Path]:
        """Quarantine torn publish artifacts; returns the moved paths."""
        moved = []
        for entry_dir in self.root.iterdir():
            if not entry_dir.is_dir() or entry_dir.name == QUARANTINE_DIR:
                continue
            for name in sorted(os.listdir(entry_dir)):
                if name.startswith(".tmp-"):
                    moved.append(self._quarantine(entry_dir / name))
        return moved

    def _quarantine(self, path: Path) -> Path:
        """Move a damaged artifact aside (kept for post-mortem, never served)."""
        qdir = path.parent / QUARANTINE_DIR
        qdir.mkdir(exist_ok=True)
        target = qdir / f"{path.name.lstrip('.')}.{os.getpid()}-{next(_TMP_COUNTER)}"
        os.replace(path, target)
        obs.counter("registry.quarantined").inc()
        return target

    # -- publishing ----------------------------------------------------------------

    def publish(
        self,
        key: ModelKey,
        model: InferredModel,
        metadata: Optional[Dict[str, object]] = None,
    ) -> PublishedModel:
        """Atomically publish ``model`` as the next version under ``key``.

        Returns the receipt; the new version becomes ``latest`` for the key.
        """
        entry_dir = self.root / key.slug
        entry_dir.mkdir(parents=True, exist_ok=True)
        body = model_to_dict(model)

        while True:
            version = self._next_version(entry_dir)
            payload = {
                "registry_schema": REGISTRY_SCHEMA,
                "key": {"space": key.space, "application": key.application},
                "version": version,
                "created_unix": time.time(),
                "metadata": dict(metadata or {}),
                "model": body,
            }
            final = entry_dir / f"v{version:06d}.json"
            tmp = entry_dir / (
                f".tmp-v{version:06d}-{os.getpid()}"
                f"-{threading.get_ident()}-{next(_TMP_COUNTER)}.json"
            )
            # fsync before the link: once the version becomes visible its
            # bytes are already durable, so no reader can see a name whose
            # content a crash could still lose.
            _write_durable(tmp, json.dumps(payload, indent=2))
            # The crash window the quarantine sweep exists for: a publisher
            # dying here leaves a durable-but-unlinked .tmp-* artifact.
            faults.site("registry.publish.link")
            try:
                # link-then-unlink instead of replace: linking onto an
                # existing name fails, so two publishers racing for the
                # same version number cannot silently clobber each other.
                os.link(tmp, final)
            except FileExistsError:
                tmp.unlink()
                continue
            tmp.unlink()
            _fsync_dir(entry_dir)
            break

        self._point_latest(entry_dir, version)
        receipt = PublishedModel(
            key=key,
            version=version,
            path=final,
            created_unix=payload["created_unix"],
            metadata=payload["metadata"],
        )
        with self._lock:
            self._cache_put((key.slug, version), model)
        return receipt

    # -- lookup --------------------------------------------------------------------

    def keys(self) -> List[ModelKey]:
        """All keys with at least one published version."""
        out = []
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir() or "__" not in entry.name:
                continue
            if not self.versions_dir(entry):
                continue
            space, application = entry.name.split("__", 1)
            out.append(ModelKey(space, application))
        return out

    def versions(self, key: ModelKey) -> List[int]:
        """Published version numbers for ``key``, ascending."""
        return self.versions_dir(self.root / key.slug)

    @staticmethod
    def versions_dir(entry_dir: Path) -> List[int]:
        if not entry_dir.is_dir():
            return []
        found = []
        for name in os.listdir(entry_dir):
            match = _VERSION_FILE.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, key: ModelKey) -> int:
        """Latest published version for ``key`` (``LATEST`` pointer, falling
        back to a directory scan if the pointer is missing or stale)."""
        entry_dir = self.root / key.slug
        pointer = entry_dir / "LATEST"
        versions = self.versions(key)
        if not versions:
            raise RegistryError(f"no versions published for {key.slug!r}")
        if pointer.exists():
            try:
                stated = int(pointer.read_text().strip())
            except ValueError:
                stated = -1
            if stated in versions:
                return stated
        return versions[-1]

    def load(
        self, key: ModelKey, version: Optional[int] = None
    ) -> Tuple[InferredModel, int]:
        """Load ``key`` at ``version`` (``None`` means latest *valid*).

        Returns ``(model, version)``.  Validates the registry envelope and
        the model payload's schema version + checksum; corrupt entries raise
        :class:`~repro.core.serialize.ModelFormatError`.

        A latest load (``version=None``) degrades gracefully: a corrupt
        manifest is quarantined and the newest valid predecessor is served
        instead; only when *no* published version validates does the first
        corruption error propagate.  A pinned ``version`` is strict — the
        caller asked for those exact bytes, so corruption raises.
        """
        if version is None:
            # Honor the LATEST pointer (it may deliberately roll back), then
            # degrade downward through older versions on corruption.
            newest = self.latest_version(key)  # raises RegistryError if none
            candidates = [v for v in reversed(self.versions(key)) if v <= newest]
            first_error: Optional[ModelFormatError] = None
            for candidate in candidates:
                try:
                    return self._load_version(key, candidate)
                except ModelFormatError as exc:
                    if first_error is None:
                        first_error = exc
                    self._quarantine(self.root / key.slug / f"v{candidate:06d}.json")
            raise first_error
        return self._load_version(key, version)

    def _load_version(
        self, key: ModelKey, version: int
    ) -> Tuple[InferredModel, int]:
        cache_key = (key.slug, version)
        with self._lock:
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                return cached, version

        path = self.root / key.slug / f"v{version:06d}.json"
        if not path.exists():
            raise RegistryError(
                f"{key.slug!r} has no version {version} "
                f"(published: {self.versions(key) or 'none'})"
            )
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ModelFormatError(f"{path}: not valid JSON ({exc})") from exc
        if payload.get("registry_schema") != REGISTRY_SCHEMA:
            raise ModelFormatError(
                f"{path}: registry envelope schema "
                f"{payload.get('registry_schema')!r}, expected {REGISTRY_SCHEMA}"
            )
        model = model_from_dict(payload["model"])
        with self._lock:
            self._cache_put(cache_key, model)
        return model, version

    def entry_metadata(self, key: ModelKey, version: int) -> Dict[str, object]:
        """The envelope metadata stored with one published version."""
        path = self.root / key.slug / f"v{version:06d}.json"
        if not path.exists():
            raise RegistryError(f"{key.slug!r} has no version {version}")
        return json.loads(path.read_text()).get("metadata", {})

    # -- internals -----------------------------------------------------------------

    def _next_version(self, entry_dir: Path) -> int:
        existing = self.versions_dir(entry_dir)
        return (existing[-1] + 1) if existing else 1

    def _point_latest(self, entry_dir: Path, version: int) -> None:
        faults.site("registry.publish.latest")
        pointer = entry_dir / "LATEST"
        tmp = entry_dir / (
            f".tmp-LATEST-{os.getpid()}"
            f"-{threading.get_ident()}-{next(_TMP_COUNTER)}"
        )
        _write_durable(tmp, f"{version}\n")
        os.replace(tmp, pointer)
        _fsync_dir(entry_dir)

    def _cache_put(self, cache_key: Tuple[str, int], model: InferredModel) -> None:
        # Caller holds self._lock.
        self._cache[cache_key] = model
        self._cache.move_to_end(cache_key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def cache_info(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._cache), "capacity": self.cache_size}
