"""Run a :class:`PredictionServer` on a background thread.

Tests, benchmarks, and the blocking CLI client all need a live server
without owning an event loop; :class:`ServerThread` hosts one loop on a
daemon thread and exposes the bound port plus a clean stop.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.server import PredictionServer


class ServerThread:
    """Owns an event loop thread running one server's lifecycle."""

    def __init__(self, server: PredictionServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server thread did not come up")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()
            self._done.set()

    async def _serve(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.serve_forever()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and not self._done.is_set():
            self._loop.call_soon_threadsafe(self.server.stop)
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def loop(self) -> Optional[asyncio.AbstractEventLoop]:
        """The event loop hosting the server (for run_coroutine_threadsafe)."""
        return self._loop

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
