"""Micro-batching: coalesce concurrent single-profile predictions.

One prediction is a handful of transform evaluations plus a dot product —
far cheaper than the per-request overhead of parsing, scheduling, and
replying.  The :class:`MicroBatcher` amortizes the numpy dispatch cost by
draining concurrently queued requests into one vectorized
``InferredModel.predict_rows`` call per *tick*:

* a tick opens when the first request arrives and closes after
  ``max_latency_s`` or as soon as ``max_batch`` requests are queued,
  whichever comes first;
* the whole batch is predicted against **one** model snapshot, so every
  response in a tick is served by a single (model, version) pair — the
  invariant the live-update swap protocol relies on;
* the queue is bounded: submissions beyond ``queue_depth`` fail fast with
  :class:`QueueFullError` (surfaced as HTTP-style 429 by the server) rather
  than building unbounded latency;
* per-request timeouts cancel the waiter, not the batch.

Because ``predict_rows`` ends in a batch-size-invariant reduction (see
``LinearFit.predict``), a batched response is bit-identical to the
sequential ``predict_one`` call for the same row, for *any* interleaving of
arrivals — property-tested in ``tests/test_serve_batching.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro import faults, obs


class QueueFullError(RuntimeError):
    """The prediction queue is at capacity; shed load (429)."""


class RequestTimeout(RuntimeError):
    """A queued request waited longer than its timeout."""


# Let fault plans speak the server's failure vocabulary:
# ``serve.dispatch=raise:queue_full`` makes the server answer 429,
# ``raise:request_timeout`` answers 408 — without touching a real queue.
faults.register_exception(
    "queue_full", lambda site: QueueFullError(f"injected queue-full at {site!r}")
)
faults.register_exception(
    "request_timeout", lambda site: RequestTimeout(f"injected timeout at {site!r}")
)


@dataclasses.dataclass(frozen=True)
class BatchConfig:
    """Tuning knobs of the batching tick."""

    max_batch: int = 64          #: flush as soon as this many are queued
    max_latency_s: float = 0.002  #: ... or this long after the first arrival
    queue_depth: int = 1024      #: bound on queued-but-unflushed requests
    request_timeout_s: float = 10.0  #: per-request wait budget

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_latency_s < 0:
            raise ValueError("max_latency_s must be >= 0")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")


@dataclasses.dataclass
class BatchStats:
    """Occupancy accounting for the benchmark report."""

    ticks: int = 0
    requests: int = 0
    rejected: int = 0
    timed_out: int = 0
    #: batch-size -> number of ticks that flushed exactly that many rows
    occupancy: Dict[int, int] = dataclasses.field(default_factory=dict)

    def record_flush(self, size: int) -> None:
        self.ticks += 1
        self.requests += size
        self.occupancy[size] = self.occupancy.get(size, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        mean = self.requests / self.ticks if self.ticks else 0.0
        return {
            "ticks": self.ticks,
            "requests": self.requests,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "mean_occupancy": round(mean, 3),
            "occupancy_histogram": {
                str(size): count for size, count in sorted(self.occupancy.items())
            },
        }


class ModelSlot:
    """Atomic holder of the live ``(version, model)`` snapshot.

    The pair is swapped by rebinding one attribute, which is atomic under
    the GIL; readers grab the tuple once and never see a torn
    version/model combination.
    """

    def __init__(self, model=None, version: int = 0):
        self._snapshot: Optional[Tuple[int, object]] = (
            None if model is None else (version, model)
        )

    def get(self) -> Tuple[int, object]:
        snapshot = self._snapshot
        if snapshot is None:
            raise RuntimeError("no model published to the serving slot yet")
        return snapshot

    def swap(self, version: int, model) -> None:
        current = self._snapshot
        if current is not None and version <= current[0]:
            raise ValueError(
                f"model versions must increase: live={current[0]}, new={version}"
            )
        self._snapshot = (version, model)

    @property
    def version(self) -> int:
        return self.get()[0]


class MicroBatcher:
    """Coalesces awaitable single-row predictions into vectorized calls."""

    def __init__(self, slot: ModelSlot, config: Optional[BatchConfig] = None):
        self.slot = slot
        self.config = config or BatchConfig()
        self.stats = BatchStats()
        self._queue: Deque[Tuple[np.ndarray, asyncio.Future]] = deque()
        self._wakeup = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self._obs_occupancy = obs.histogram(
            "serve.batch_occupancy", obs.SIZE_BUCKETS
        )
        self._obs_queue_depth = obs.gauge("serve.queue_depth")
        self._obs_ticks = obs.counter("serve.batch_ticks")
        self._obs_rejected = obs.counter("serve.queue_rejected")
        self._obs_timed_out = obs.counter("serve.request_timeouts")

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        self._closed = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None
        for _, future in self._queue:
            if not future.done():
                future.set_exception(RuntimeError("batcher closed"))
        self._queue.clear()

    # -- submission ----------------------------------------------------------------

    async def submit(self, row: np.ndarray) -> Tuple[float, int]:
        """Queue one feature row; returns ``(prediction, model_version)``.

        Raises :class:`QueueFullError` when the queue is at capacity and
        :class:`RequestTimeout` when the configured wait budget elapses.
        """
        if self._closed:
            raise RuntimeError("batcher closed")
        if len(self._queue) >= self.config.queue_depth:
            self.stats.rejected += 1
            self._obs_rejected.inc()
            raise QueueFullError(
                f"prediction queue at capacity ({self.config.queue_depth})"
            )
        future = asyncio.get_running_loop().create_future()
        self._queue.append((np.asarray(row, dtype=float), future))
        self._obs_queue_depth.set(len(self._queue))
        self._wakeup.set()
        try:
            return await asyncio.wait_for(future, self.config.request_timeout_s)
        except asyncio.TimeoutError:
            self.stats.timed_out += 1
            self._obs_timed_out.inc()
            raise RequestTimeout(
                f"prediction not served within {self.config.request_timeout_s}s"
            ) from None

    # -- the tick ------------------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not self._queue and not self._closed:
                self._wakeup.clear()
                await self._wakeup.wait()
            if self._closed:
                return
            # A tick: the first arrival opens a window; keep accumulating
            # until the window closes or the batch is full.
            deadline = loop.time() + self.config.max_latency_s
            while len(self._queue) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), remaining)
                except asyncio.TimeoutError:
                    break
                if self._closed:
                    break
            self._flush()

    def _flush(self) -> None:
        take = min(len(self._queue), self.config.max_batch)
        if take == 0:
            return
        batch = [self._queue.popleft() for _ in range(take)]
        self._obs_queue_depth.set(len(self._queue))
        # Drop requests whose waiter already gave up (timeout/cancel); they
        # must not occupy batch rows.
        live = [(row, fut) for row, fut in batch if not fut.done()]
        if not live:
            return
        version, model = self.slot.get()
        rows = np.vstack([row for row, _ in live])
        try:
            predictions = model.predict_rows(rows)
        except Exception as exc:  # surface per-request, keep the loop alive
            for _, future in live:
                if not future.done():
                    future.set_exception(
                        RuntimeError(f"prediction failed: {exc}")
                    )
            return
        self.stats.record_flush(len(live))
        self._obs_ticks.inc()
        self._obs_occupancy.observe(len(live))
        for (_, future), prediction in zip(live, predictions):
            if not future.done():
                future.set_result((float(prediction), version))
