"""Clients for the prediction server, plus the load generator.

* :class:`ServeClient` — a small blocking client over a plain socket.
  One instance per thread; used by the quickstart, the CLI smoke
  round-trip, and anything that just wants an answer.  Wraps every
  request in a :class:`~repro.faults.RetryPolicy`: transport failures
  (dropped/reset connections, per-attempt socket timeouts, corrupted
  reply frames) tear the socket down, back off deterministically, and
  retry on a fresh connection; retryable server statuses (408/429/500/
  503 by default) back off without reconnecting.  Non-retryable server
  errors (400/404...) raise :class:`ServeError` immediately.
* :class:`AsyncServeClient` — asyncio streams, one in-flight request per
  connection; the load generator opens one per concurrent worker.
* :class:`LoadGenerator` — drives a server at configurable concurrency
  and collects the latency distribution, throughput, and the server-side
  batch-occupancy histogram for ``BENCH_serve.json``.

Retry caveat: a retried request is at-least-once delivery — a request
that executed but whose reply was lost will execute again.  ``predict``
ops are pure reads, so this is safe; for ``observe`` (which mutates
update bookkeeping) pass ``retrying=NO_RETRY`` if duplicate delivery
matters more than availability.

Command-line smoke usage (used by CI against a detached server)::

    python -m repro.serve.client --port 7654 --smoke
    python -m repro.serve.client --port 7654 --load 16 --requests 2000
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import socket
import struct
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.faults import NO_RETRY, RetryPolicy

_LENGTH = struct.Struct(">I")

#: Exceptions that mean "this connection is no longer trustworthy": the
#: socket is torn down and the next attempt reconnects.  Decode failures
#: are included because a half/corrupt frame leaves the stream unframed.
_TRANSPORT_ERRORS = (
    ConnectionError,
    socket.timeout,
    OSError,
    EOFError,
    json.JSONDecodeError,
    UnicodeDecodeError,
    struct.error,
)


class ServeError(RuntimeError):
    """The server answered ``ok: false``."""

    def __init__(self, payload: dict):
        super().__init__(payload.get("error", "server error"))
        self.status = payload.get("status", 500)
        self.payload = payload


def _encode(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


# -- blocking client -------------------------------------------------------------------


class ServeClient:
    """Blocking length-prefixed-JSON client.  Not thread-safe; one per thread.

    A context manager: ``with ServeClient(...) as client:`` guarantees the
    socket is closed however the block exits.  Any exception mid-request
    also closes the socket immediately (a half-finished exchange leaves
    the stream unframed, so the connection cannot be reused) — the next
    request reconnects transparently.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7654,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sock: Optional[socket.socket] = None
        # Monotonic per-instance request sequence number.  Each request
        # derives its backoff jitter from (policy seed, this number), so
        # the schedule is deterministic for a given client history and
        # NOT reset by reconnects — a retry that lands on a different
        # shard after a 429/timeout backs off on the same derived
        # schedule it started with (DESIGN.md §8).
        self._request_seq = 0
        self._connect()

    # -- connection management ---------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            timeout = self.retry.attempt_timeout_s or self.timeout
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=timeout
            )
        return self._sock

    def _teardown(self) -> None:
        """Drop the socket; a later request reconnects."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests ------------------------------------------------------------------

    def request(self, payload: dict, retrying: Optional[RetryPolicy] = None) -> dict:
        """One request/reply exchange under the retry policy.

        ``retrying`` overrides the client's policy per call (e.g.
        ``NO_RETRY`` for non-idempotent ops).  Transport errors reconnect
        before the next attempt; retryable server statuses back off on
        the same connection; other ``ok: false`` replies raise
        :class:`ServeError` at once.
        """
        self._request_seq += 1
        policy = retrying if retrying is not None else self.retry
        # One derived jitter stream per request: deterministic given the
        # client's request history, decorrelated between requests (and
        # between clients with different seeds), stable across the
        # teardown/reconnect cycle a shard failover causes.
        policy = policy.derive(self._request_seq)
        frame = _encode(payload)
        failures = 0
        for attempt, is_last in policy.attempts():
            try:
                reply = self._exchange(frame)
            except _TRANSPORT_ERRORS:
                # Mid-request failure: the stream may hold half a frame,
                # so the socket must not be reused (this also plugs the
                # old leak where an errored connection stayed open).
                self._teardown()
                if is_last:
                    obs.counter("client.giveups").inc()
                    raise
                failures += 1
                obs.counter("client.retries").inc()
                policy.sleep(failures)
                continue
            if reply.get("ok", False):
                return reply
            status = int(reply.get("status", 500))
            if is_last or not policy.retryable_status(status):
                if is_last:
                    obs.counter("client.giveups").inc()
                raise ServeError(reply)
            failures += 1
            obs.counter("client.retries").inc()
            policy.sleep(failures)
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange(self, frame: bytes) -> dict:
        sock = self._connect()
        sock.sendall(frame)
        header = self._recv_exact(sock, _LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        return json.loads(self._recv_exact(sock, length).decode("utf-8"))

    @staticmethod
    def _recv_exact(sock: socket.socket, n: int) -> bytes:
        chunks = []
        while n:
            chunk = sock.recv(n)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    # -- convenience ops ---------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"})["ok"]

    def info(self) -> dict:
        return self.request({"op": "info"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def metrics(self) -> dict:
        """The server's ``repro.obs`` registry snapshot."""
        return self.request({"op": "metrics"})["metrics"]

    def metrics_prometheus(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self.request({"op": "metrics", "format": "prometheus"})["text"]

    def predict(self, x: Sequence[float], y: Sequence[float]) -> dict:
        return self.request({"op": "predict", "x": list(x), "y": list(y)})

    def predict_row(self, row: Sequence[float]) -> dict:
        return self.request({"op": "predict", "row": list(row)})

    def predict_batch(self, rows) -> dict:
        rows = np.asarray(rows, dtype=float)
        return self.request({"op": "predict_batch", "rows": rows.tolist()})

    def observe(
        self,
        application: str,
        profiles: Sequence[dict],
        retrying: Optional[RetryPolicy] = None,
    ) -> dict:
        return self.request(
            {"op": "observe", "application": application, "profiles": list(profiles)},
            retrying=retrying,
        )

    def observe_stream(
        self,
        application: str,
        profiles: Sequence[dict],
        retrying: Optional[RetryPolicy] = None,
    ) -> dict:
        """Ship one continuous-maintenance observation batch."""
        return self.request(
            {
                "op": "observe_stream",
                "application": application,
                "profiles": list(profiles),
            },
            retrying=retrying,
        )

    def shutdown(self) -> dict:
        # Never retried: a lost reply almost certainly means the server
        # already stopped, and re-sending would only wait out backoffs
        # against a dead endpoint.
        return self.request({"op": "shutdown"}, retrying=NO_RETRY)


def wait_for_server(
    host: str, port: int, timeout: float = 20.0, interval: float = 0.1
) -> ServeClient:
    """Poll until the server accepts a ping; returns a connected client."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        client = None
        try:
            client = ServeClient(host, port, retry=NO_RETRY)
            client.ping()
            client.retry = RetryPolicy()  # polling done: serve requests robustly
            return client
        except (OSError, ServeError) as exc:
            if client is not None:
                client.close()  # a connected-but-unhealthy client must not leak
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(f"server at {host}:{port} not ready: {last_error}")


# -- async client ----------------------------------------------------------------------


class AsyncServeClient:
    """Asyncio client; one outstanding request per connection."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def request(self, payload: dict, check: bool = True) -> dict:
        self._writer.write(_encode(payload))
        await self._writer.drain()
        header = await self._reader.readexactly(_LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        reply = json.loads((await self._reader.readexactly(length)).decode("utf-8"))
        if check and not reply.get("ok", False):
            raise ServeError(reply)
        return reply


# -- load generation -------------------------------------------------------------------


@dataclasses.dataclass
class LoadReport:
    """What one load-generation run measured."""

    requests: int
    ok: int
    failed: int
    duration_s: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    model_versions: List[int]
    server_stats: Dict[str, object]
    #: driver processes the load was generated from (1 = in-process)
    processes: int = 1
    #: TCP connections opened over the run (> concurrency under churn)
    connections: int = 0
    #: simulated clients driven (soak mode; 0 for plain runs)
    clients: int = 0

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def percentiles_ms(latencies_s: Sequence[float]) -> Dict[str, float]:
    if not latencies_s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    arr = np.asarray(latencies_s, dtype=float) * 1000.0
    return {
        "p50": round(float(np.percentile(arr, 50)), 3),
        "p95": round(float(np.percentile(arr, 95)), 3),
        "p99": round(float(np.percentile(arr, 99)), 3),
        "mean": round(float(arr.mean()), 3),
        "max": round(float(arr.max()), 3),
    }


async def _drive_load(
    host: str,
    port: int,
    rows: np.ndarray,
    concurrency: int,
    total_requests: int,
    requests_per_connection: Optional[int] = None,
) -> Dict[str, object]:
    """One event loop's worth of load; returns raw tallies for aggregation.

    ``requests_per_connection`` bounds how many requests ride one TCP
    connection before the worker reconnects — the connection-churn knob
    the soak profile uses to simulate large client populations (each
    connection stands in for one short-lived client).  ``None`` keeps the
    plain mode: one long-lived connection per concurrency slot.
    """
    counter = {"next": 0, "ok": 0, "failed": 0, "connections": 0}
    latencies: List[float] = []
    versions: set = set()

    async def worker() -> None:
        while counter["next"] < total_requests:
            client = await AsyncServeClient(host, port).connect()
            counter["connections"] += 1
            on_this_connection = 0
            try:
                while True:
                    i = counter["next"]
                    if i >= total_requests:
                        return
                    counter["next"] = i + 1
                    row = rows[i % len(rows)]
                    start = time.perf_counter()
                    try:
                        reply = await client.request(
                            {"op": "predict", "row": row.tolist()}
                        )
                    except ServeError:
                        counter["failed"] += 1
                        continue
                    latencies.append(time.perf_counter() - start)
                    versions.add(reply["model_version"])
                    counter["ok"] += 1
                    on_this_connection += 1
                    if (
                        requests_per_connection is not None
                        and on_this_connection >= requests_per_connection
                    ):
                        break  # churn: this simulated client disconnects
            finally:
                await client.close()

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return {
        "ok": counter["ok"],
        "failed": counter["failed"],
        "connections": counter["connections"],
        "latencies": latencies,
        "versions": sorted(versions),
    }


def _load_process_main(
    conn, host, port, rows, concurrency, total_requests, requests_per_connection
):
    """Entry point of one load-driver process (multi-process drive mode)."""
    try:
        result = asyncio.run(
            _drive_load(
                host, port, rows, concurrency, total_requests,
                requests_per_connection,
            )
        )
        conn.send(result)
    except BaseException as exc:  # surfaced by the parent as a failed share
        conn.send({"error": repr(exc)})
    finally:
        conn.close()


class LoadGenerator:
    """Drives concurrent single-profile predictions at a server.

    Three drive modes, composable:

    * **in-process** (default) — one asyncio loop, ``concurrency``
      long-lived connections;
    * **multi-process** (``processes > 1``) — forks that many driver
      processes, each running its own loop at ``concurrency``; the way to
      saturate a sharded server from one generator (a single GIL cannot
      fill 8 shards);
    * **soak** (:meth:`soak`) — simulates a large client population over
      connection churn: each simulated client connects, issues
      ``requests_per_client`` predictions, and disconnects, so hundreds
      of thousands of clients flow through ``concurrency x processes``
      live sockets.
    """

    def __init__(
        self,
        host: str,
        port: int,
        rows: np.ndarray,
        concurrency: int = 16,
        processes: int = 1,
    ):
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2 or not len(rows):
            raise ValueError("rows must be a non-empty 2-D array")
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.host = host
        self.port = port
        self.rows = rows
        self.concurrency = concurrency
        self.processes = processes

    def run(
        self,
        total_requests: int,
        requests_per_connection: Optional[int] = None,
        clients: int = 0,
    ) -> LoadReport:
        """Issue ``total_requests`` predictions and report the distribution."""
        start = time.perf_counter()
        if self.processes == 1:
            shares = [
                asyncio.run(
                    _drive_load(
                        self.host, self.port, self.rows, self.concurrency,
                        total_requests, requests_per_connection,
                    )
                )
            ]
        else:
            shares = self._run_processes(total_requests, requests_per_connection)
        duration = time.perf_counter() - start

        errors = [s["error"] for s in shares if "error" in s]
        if errors:
            raise RuntimeError(f"load driver process failed: {errors[0]}")

        latencies = [lat for s in shares for lat in s["latencies"]]
        versions = sorted({v for s in shares for v in s["versions"]})
        ok = sum(s["ok"] for s in shares)
        failed = sum(s["failed"] for s in shares)
        connections = sum(s["connections"] for s in shares)
        done = ok + failed
        return LoadReport(
            requests=done,
            ok=ok,
            failed=failed,
            duration_s=round(duration, 4),
            throughput_rps=round(done / duration, 1) if duration else 0.0,
            latency_ms=percentiles_ms(latencies),
            model_versions=versions,
            server_stats=self._server_stats(),
            processes=self.processes,
            connections=connections,
            clients=clients,
        )

    def soak(self, clients: int, requests_per_client: int = 4) -> LoadReport:
        """Simulate ``clients`` short-lived clients over connection churn.

        Each client is one connect / ``requests_per_client`` predictions /
        disconnect cycle; ``concurrency x processes`` of them are alive at
        any instant.  The report's ``connections`` counts how many client
        lifetimes actually ran.
        """
        if clients < 1 or requests_per_client < 1:
            raise ValueError("clients and requests_per_client must be >= 1")
        return self.run(
            clients * requests_per_client,
            requests_per_connection=requests_per_client,
            clients=clients,
        )

    # -- internals -----------------------------------------------------------------

    def _run_processes(self, total_requests, requests_per_connection):
        import multiprocessing

        share, remainder = divmod(total_requests, self.processes)
        workers = []
        for rank in range(self.processes):
            n = share + (1 if rank < remainder else 0)
            if n == 0:
                continue
            parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
            proc = multiprocessing.Process(
                target=_load_process_main,
                args=(
                    child_conn, self.host, self.port, self.rows,
                    self.concurrency, n, requests_per_connection,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            workers.append((proc, parent_conn))

        shares = []
        for proc, conn in workers:
            try:
                shares.append(conn.recv())
            except EOFError:
                shares.append({"error": f"driver pid {proc.pid} died"})
            finally:
                conn.close()
        for proc, _ in workers:
            proc.join()
        return shares

    def _server_stats(self) -> Dict[str, object]:
        async def fetch():
            client = await AsyncServeClient(self.host, self.port).connect()
            try:
                return await client.request({"op": "stats"})
            finally:
                await client.close()

        stats = asyncio.run(fetch())
        return {k: v for k, v in stats.items() if k not in ("ok",)}


# -- CLI -------------------------------------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Smoke/load client for the repro prediction server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="ping, info, one predict, one predict_batch; exit non-zero on failure",
    )
    parser.add_argument(
        "--load",
        type=int,
        metavar="CONCURRENCY",
        default=0,
        help="run the load generator at this concurrency",
    )
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="load-driver processes (multi-process drive mode)",
    )
    parser.add_argument(
        "--soak",
        type=int,
        metavar="CLIENTS",
        default=0,
        help="soak profile: simulate this many short-lived clients over "
        "connection churn (requires --load for the live concurrency)",
    )
    parser.add_argument(
        "--requests-per-client",
        type=int,
        default=4,
        help="predictions each simulated soak client issues before "
        "disconnecting",
    )
    parser.add_argument(
        "--check-metrics",
        action="store_true",
        help="fetch the metrics op and fail unless the server has counted "
        "a non-zero number of requests and predictions",
    )
    parser.add_argument(
        "--shutdown", action="store_true", help="stop the server when done"
    )
    parser.add_argument(
        "--wait",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="readiness-poll timeout before the first request (raise it "
        "when the server bootstraps a model or a sharded fleet first)",
    )
    args = parser.parse_args(argv)

    client = wait_for_server(args.host, args.port, timeout=args.wait)
    info = client.info()
    print(f"server up: model v{info['model_version']}, "
          f"{len(info['variables'])} variables, {info['n_terms']} terms")

    rng = np.random.default_rng(0)
    n_vars = len(info["variables"])
    rows = np.abs(rng.normal(loc=1.0, scale=0.3, size=(64, n_vars))) + 0.1

    status = 0
    if args.smoke:
        single = client.predict_row(rows[0].tolist())
        batch = client.predict_batch(rows[:8])
        same = single["prediction"] == batch["predictions"][0]
        print(f"predict: {single['prediction']:.6g} "
              f"(batch head matches: {same})")
        if not same:
            status = 1
    if args.load:
        generator = LoadGenerator(
            args.host, args.port, rows,
            concurrency=args.load, processes=args.processes,
        )
        if args.soak:
            report = generator.soak(
                args.soak, requests_per_client=args.requests_per_client
            )
        else:
            report = generator.run(args.requests)
        print(json.dumps(report.to_dict(), indent=2))
        if report.failed:
            status = 1
    if args.check_metrics:
        counters = client.metrics().get("counters", {})
        requests = counters.get("serve.requests", 0)
        predictions = counters.get("serve.predictions", 0)
        print(f"metrics: serve.requests={requests} "
              f"serve.predictions={predictions}")
        if requests <= 0 or predictions <= 0:
            print("metrics check failed: expected non-zero request and "
                  "prediction counts")
            status = 1
    if args.shutdown:
        try:
            client.shutdown()
        except (ServeError, ConnectionError):
            pass
    client.close()
    return status


if __name__ == "__main__":
    import sys

    sys.exit(main())
