"""The online prediction server.

A stdlib-only asyncio TCP server speaking length-prefixed JSON frames
(4-byte big-endian length, then a UTF-8 JSON body; see
:data:`MAX_FRAME_BYTES`).  One frame in, one frame out, per request, over a
persistent connection.

Operations (``{"op": ...}`` request, ``{"ok": true/false, ...}`` reply):

``ping``            liveness probe.
``info``            live model version, variable order, term count.
``predict``         one profile (``x`` + ``y`` arrays *or* a flat ``row``)
                    through the micro-batcher; replies with ``prediction``
                    and the ``model_version`` that served it.
``predict_batch``   a caller-assembled batch of rows, predicted against a
                    single model snapshot (bypasses the batcher).
``observe``         profiles of a (possibly new) application — forwarded to
                    the online update manager when one is attached.
                    Rejected (409) while a streaming respecifier is
                    attached: the two maintenance paths would fight over
                    the model slot; use ``observe_stream`` instead.
``observe_stream``  a continuous-maintenance observation batch — forwarded
                    to the manager's streaming respecifier (prequential
                    drift scoring + Gram accumulation + coefficient
                    refresh; drift trips schedule a background re-spec).
``stats``           request counters, batch-occupancy histogram, model
                    version, update counters.
``metrics``         the process-wide ``repro.obs`` registry: a snapshot
                    dict by default, the Prometheus text exposition format
                    with ``{"format": "prometheus"}`` (this is what
                    ``python -m repro.experiments serve --metrics-dump``
                    prints).
``shutdown``        graceful stop (used by the CLI smoke flow and tests).

Error replies carry HTTP-flavored ``status`` codes: 400 malformed, 404
unknown op, 408 request timeout (batcher wait *or* the per-request
deadline), 413 oversized frame, 429 queue full, 503 no model loaded, 500
anything else.  Backpressure is load-shedding, not buffering: when the
batcher queue is full the server answers 429 immediately.

Degradation policy for damaged input: a frame whose *body* is corrupt
(undecodable JSON) gets a structured 400 reply and the connection stays
up — the length prefix was honored, so framing is intact and the next
request parses normally.  A frame whose *length prefix* is implausible
(over :data:`MAX_FRAME_BYTES`) gets a structured 413 reply and then a
close, because a bogus length desynchronizes the stream and every
subsequent byte would be garbage.  Every request is bounded by
``request_deadline_s``: a dispatch that exceeds it (slow model, injected
stall) is cancelled and answered with 408 instead of wedging the
connection.

Fault sites (armed via :mod:`repro.faults`): ``serve.read_frame``
(delay/drop before reading), ``serve.dispatch`` (delay/raise inside
request handling), ``serve.write_frame`` (corrupt/drop the reply frame —
a drop writes half the frame then tears the connection, so clients
observe a mid-frame EOF).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import struct
import time
from typing import Dict, Optional

import numpy as np

from repro import faults, obs
from repro.serve.batching import (
    BatchConfig,
    MicroBatcher,
    ModelSlot,
    QueueFullError,
    RequestTimeout,
)

#: Frame-size sanity bound; a registry payload is ~10 KiB, so 16 MiB leaves
#: ample room for large observe/predict_batch bodies while bounding memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameTooLarge(ValueError):
    """A frame's length prefix exceeds :data:`MAX_FRAME_BYTES`.

    Distinct from a JSON decode failure because the recovery differs: an
    implausible length prefix means the stream can no longer be framed,
    so the connection must close after the error reply.
    """


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one length-prefixed JSON frame; ``None`` on clean EOF.

    Raises :class:`FrameTooLarge` for an implausible length prefix and
    :class:`json.JSONDecodeError` / :class:`UnicodeDecodeError` for a
    corrupt body (framing intact — the caller may keep the connection).
    """
    await faults.site_async("serve.read_frame")
    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = await reader.readexactly(length)
    return json.loads(body.decode("utf-8"))


def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    frame = _LENGTH.pack(len(body)) + body
    try:
        frame = faults.site("serve.write_frame", frame)
    except faults.InjectedDrop:
        # Torn mid-frame: ship half the reply, then let the drop tear the
        # connection down — the client sees EOF inside a frame.
        writer.write(frame[: max(1, len(frame) // 2)])
        raise
    writer.write(frame)


@dataclasses.dataclass
class ServerStats:
    requests: int = 0
    predictions: int = 0
    errors: int = 0
    connections: int = 0


class PredictionServer:
    """Serves one live model (one registry key) over TCP."""

    def __init__(
        self,
        slot: ModelSlot,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_config: Optional[BatchConfig] = None,
        manager=None,
        request_deadline_s: float = 30.0,
        reuse_port: bool = False,
        backend: str = "cpu",
    ):
        if request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be > 0")
        self.slot = slot
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        #: Which timing backend produced the profiles this model serves;
        #: tags ``info``/``stats`` payloads and prometheus series.
        self.backend = backend
        self.manager = manager  # Optional[ServingManager], wired by serve.manager
        self.batcher = MicroBatcher(slot, batch_config)
        self.request_deadline_s = request_deadline_s
        self.stats = ServerStats()
        # Cached instrument handles: one dict lookup per server, not per
        # request (no-op singletons when $REPRO_OBS=0).
        self._obs_latency = obs.histogram(
            "serve.request_seconds", obs.SECONDS_BUCKETS
        )
        self._obs_requests = obs.counter("serve.requests")
        self._obs_predictions = obs.counter("serve.predictions")
        self._obs_errors = obs.counter("serve.errors")
        self._obs_rejected = obs.counter("serve.rejected_429")
        self._obs_connections = obs.counter("serve.connections")
        self._obs_bad_frames = obs.counter("serve.bad_frames")
        self._obs_deadline = obs.counter("serve.deadline_timeouts")
        self._obs_dropped = obs.counter("serve.dropped_connections")
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        self._conn_tasks: set = set()
        # Dispatch table: op name -> handler(request) (sync or async).
        # Subclasses (e.g. the shard worker server) extend the protocol by
        # registering additional entries instead of overriding dispatch.
        self._ops: Dict[str, object] = {
            "ping": lambda request: {"ok": True, "op": "ping"},
            "info": lambda request: self._op_info(),
            "stats": lambda request: self._op_stats(),
            "metrics": self._op_metrics,
            "predict": self._op_predict,
            "predict_batch": self._op_predict_batch,
            "observe": self._op_observe,
            "observe_stream": self._op_observe_stream,
            "shutdown": self._op_shutdown,
        }

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        self.batcher.start()
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a ``shutdown`` op) is called."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        await self._shutdown()

    def stop(self) -> None:
        self._stopped.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit blocked in read_frame; cancel them
        # so the loop drains cleanly instead of abandoning coroutines.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.batcher.close()

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self._obs_connections.inc()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except FrameTooLarge as exc:
                    # A bogus length prefix desynchronizes the stream:
                    # reply with structure, then close — nothing after
                    # this frame can be parsed.
                    self.stats.errors += 1
                    self._obs_errors.inc()
                    self._obs_bad_frames.inc()
                    write_frame(
                        writer, {"ok": False, "status": 413, "error": str(exc)}
                    )
                    await writer.drain()
                    break
                except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
                    # The length prefix was honored, only the body is
                    # damaged — framing survives, so answer 400 and keep
                    # serving this connection.
                    self.stats.errors += 1
                    self._obs_errors.inc()
                    self._obs_bad_frames.inc()
                    write_frame(
                        writer,
                        {"ok": False, "status": 400, "error": f"bad frame: {exc}"},
                    )
                    await writer.drain()
                    continue
                if request is None:
                    break
                response = await self._dispatch(request)
                write_frame(writer, response)
                await writer.drain()
                if request.get("op") == "shutdown":
                    break
        except ConnectionError:
            # Peer reset (or an injected drop) — count it and fall through
            # to the close; per-request state is owned by the batcher and
            # unaffected.
            self._obs_dropped.inc()
        except asyncio.CancelledError:
            # Server shutdown cancels idle keep-alive readers; absorb the
            # cancellation so the task finishes cleanly instead of tripping
            # asyncio.streams' done-callback with a CancelledError.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    # -- dispatch ------------------------------------------------------------------

    async def _dispatch(self, request: dict) -> dict:
        start = time.perf_counter()
        try:
            # The per-request deadline: a dispatch that stalls (slow model,
            # wedged executor, injected delay) is cancelled and answered
            # with a structured 408 instead of silently holding the
            # connection hostage.
            return await asyncio.wait_for(
                self._dispatch_op(request), self.request_deadline_s
            )
        except asyncio.TimeoutError:
            self.stats.errors += 1
            self._obs_errors.inc()
            self._obs_deadline.inc()
            return {
                "ok": False,
                "status": 408,
                "error": f"request exceeded the {self.request_deadline_s}s deadline",
            }
        finally:
            self._obs_latency.observe(time.perf_counter() - start)

    async def _dispatch_op(self, request: dict) -> dict:
        self.stats.requests += 1
        self._obs_requests.inc()
        op = request.get("op")
        handler = self._ops.get(op) if isinstance(op, str) else None
        try:
            await faults.site_async("serve.dispatch")
            if handler is None:
                self.stats.errors += 1
                self._obs_errors.inc()
                return {"ok": False, "status": 404, "error": f"unknown op {op!r}"}
            result = handler(request)
            if asyncio.iscoroutine(result):
                result = await result
            return result
        except QueueFullError as exc:
            self.stats.errors += 1
            self._obs_errors.inc()
            self._obs_rejected.inc()
            return {"ok": False, "status": 429, "error": str(exc)}
        except RequestTimeout as exc:
            self.stats.errors += 1
            self._obs_errors.inc()
            return {"ok": False, "status": 408, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            self.stats.errors += 1
            self._obs_errors.inc()
            return {"ok": False, "status": 400, "error": f"bad request: {exc}"}
        except RuntimeError as exc:
            self.stats.errors += 1
            self._obs_errors.inc()
            status = 503 if "no model" in str(exc) else 500
            return {"ok": False, "status": status, "error": str(exc)}

    # -- operations ----------------------------------------------------------------

    @staticmethod
    def _request_row(request: dict, n_variables: int) -> np.ndarray:
        if "row" in request:
            row = np.asarray(request["row"], dtype=float)
        else:
            row = np.concatenate(
                [
                    np.asarray(request["x"], dtype=float),
                    np.asarray(request["y"], dtype=float),
                ]
            )
        if row.ndim != 1 or row.shape[0] != n_variables:
            raise ValueError(
                f"expected {n_variables} feature values, got shape {row.shape}"
            )
        if not np.isfinite(row).all():
            raise ValueError("non-finite feature values")
        return row

    def _op_info(self) -> dict:
        version, model = self.slot.get()
        return {
            "ok": True,
            "model_version": version,
            "backend": self.backend,
            "variables": list(model.variable_names),
            "n_terms": model.n_terms,
            "response": model.response,
        }

    async def _op_predict(self, request: dict) -> dict:
        _, model = self.slot.get()
        row = self._request_row(request, len(model.variable_names))
        prediction, version = await self.batcher.submit(row)
        self.stats.predictions += 1
        self._obs_predictions.inc()
        return {"ok": True, "prediction": prediction, "model_version": version}

    def _op_predict_batch(self, request: dict) -> dict:
        version, model = self.slot.get()
        rows = np.asarray(request["rows"], dtype=float)
        if rows.ndim != 2 or rows.shape[1] != len(model.variable_names):
            raise ValueError(
                f"rows must be (n, {len(model.variable_names)}), "
                f"got shape {rows.shape}"
            )
        if not np.isfinite(rows).all():
            raise ValueError("non-finite feature values")
        predictions = model.predict_rows(rows)
        self.stats.predictions += len(predictions)
        self._obs_predictions.inc(len(predictions))
        return {
            "ok": True,
            "predictions": [float(p) for p in predictions],
            "model_version": version,
        }

    def _op_shutdown(self, request: dict) -> dict:
        self.stop()
        return {"ok": True, "op": "shutdown"}

    async def _op_observe(self, request: dict) -> dict:
        if self.manager is None:
            return {
                "ok": False,
                "status": 501,
                "error": "server runs without an online update manager",
            }
        return await self.manager.handle_observe(request)

    async def _op_observe_stream(self, request: dict) -> dict:
        # Duck-typed so the shard workers' observe proxy (which forwards
        # frames to the supervisor) plugs in without subclassing.
        handler = getattr(self.manager, "handle_observe_stream", None)
        if handler is None:
            return {
                "ok": False,
                "status": 501,
                "error": "server runs without a streaming respecifier",
            }
        return await handler(request)

    def _op_metrics(self, request: dict) -> dict:
        if request.get("format") == "prometheus":
            text = obs.prometheus_dump(labels={"backend": self.backend})
            return {"ok": True, "format": "prometheus", "text": text}
        return {"ok": True, "format": "snapshot", "metrics": obs.snapshot()}

    def _op_stats(self) -> dict:
        payload: Dict[str, object] = {
            "ok": True,
            "requests": self.stats.requests,
            "predictions": self.stats.predictions,
            "errors": self.stats.errors,
            "connections": self.stats.connections,
            "model_version": self.slot.version,
            "batching": self.batcher.stats.to_dict(),
        }
        if self.manager is not None:
            payload["updates"] = self.manager.stats_dict()
        return payload
