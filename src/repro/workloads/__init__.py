"""Synthetic SPEC2006-like workload substrate.

The paper profiles seven SPEC2006 applications cross-compiled to Alpha and
run under Gem5.  Those binaries and that simulator are unavailable here, so
this package generates *synthetic dynamic instruction traces* from
parameterized behavior specifications (see DESIGN.md §1).  Each specification
controls exactly the axes the paper's Table 1 characteristics measure:
instruction mix, branch behavior, temporal/spatial data locality,
instruction-stream locality, instruction-level parallelism, and basic-block
size — with multi-phase structure inside each application so that shard-level
profiles expose intra-application diversity (§2.1 of the paper).
"""

from repro.workloads.behaviors import PhaseSpec, BehaviorSpec
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.suite import (
    SPEC_APP_NAMES,
    spec2006_suite,
    application_spec,
    optimization_variant,
    input_variant,
    random_behavior_spec,
)

__all__ = [
    "PhaseSpec",
    "BehaviorSpec",
    "TraceGenerator",
    "generate_trace",
    "SPEC_APP_NAMES",
    "spec2006_suite",
    "application_spec",
    "optimization_variant",
    "input_variant",
    "random_behavior_spec",
]
