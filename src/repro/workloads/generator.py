"""Synthetic dynamic-trace generation from behavior specifications.

The generator turns the statistical knobs of a :class:`PhaseSpec` into a
concrete committed instruction stream:

* opcode classes are sampled i.i.d. from the phase mix;
* branch outcomes are Bernoulli draws at the phase's taken/mispredict rates;
* data addresses follow an **LRU-stack model**: each access either continues
  a unit-stride streaming run, touches a brand-new block, or re-touches the
  block at a lognormally distributed stack depth.  This gives direct control
  over the re-use distance distribution the paper profiles (Table 1 x8,
  Figure 3) while producing a real address stream the cache models can
  consume;
* instruction addresses walk a hot loop of configurable size with occasional
  far jumps, controlling instruction-cache locality (x9);
* dependence distances are geometric draws, controlling ILP (x10..x13).

State (LRU stack, program counter, block allocator) persists across phases
of one application so the address space is coherent end-to-end.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.isa.instructions import OpClass, empty_trace
from repro.isa.trace import Trace
from repro.workloads.behaviors import BehaviorSpec, PhaseSpec

BLOCK_BYTES = 64
WORD_BYTES = 8
WORDS_PER_BLOCK = BLOCK_BYTES // WORD_BYTES
INSTRUCTION_BYTES = 4

#: Bound on the LRU stack the generator maintains.  Deeper references are
#: treated as touches to new blocks (effectively infinite re-use distance).
MAX_STACK = 1 << 16

#: Mean length (accesses) of a unit-stride streaming run once started.
STREAM_RUN_MEAN = 12

#: Number of distant code regions far jumps may target.
FAR_REGIONS = 16


class _AddressState:
    """Mutable data-address state shared across the phases of one trace."""

    def __init__(self):
        self.stack: List[int] = []
        self.next_block = 1  # block 0 reserved so addr 0 means "no access"
        self.stream_left = 0
        self.last_addr = 0

    def new_block(self) -> int:
        block = self.next_block
        self.next_block += 1
        return block


class TraceGenerator:
    """Generates reproducible traces for a :class:`BehaviorSpec`.

    Parameters
    ----------
    spec:
        The application behavior description.
    seed:
        Seed for the dedicated random generator.  The same (spec, seed,
        length) always yields the identical trace.
    """

    def __init__(self, spec: BehaviorSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed

    def generate(self, n_instructions: int, shard_length: Optional[int] = None) -> Trace:
        """Generate a trace of ``n_instructions``.

        ``shard_length`` sets the phase-segment granularity (segments are
        ``phase_run`` shards long); it defaults to 1/16 of the trace.
        """
        if n_instructions <= 0:
            raise ValueError(f"n_instructions must be positive, got {n_instructions}")
        if shard_length is None:
            shard_length = max(1, n_instructions // 16)
        segment_len = shard_length * self.spec.phase_run
        n_segments = max(1, -(-n_instructions // segment_len))
        schedule = self.spec.phase_schedule(n_segments)

        rng = np.random.default_rng(self.seed)
        addr_state = _AddressState()
        pc_state = {"pc": 0, "region": 0}

        pieces = []
        remaining = n_instructions
        for phase_index in schedule:
            if remaining <= 0:
                break
            length = min(segment_len, remaining)
            phase = self.spec.phases[phase_index][0]
            pieces.append(
                _generate_segment(phase, length, rng, addr_state, pc_state)
            )
            remaining -= length
        data = np.concatenate(pieces)
        return Trace(data[:n_instructions], self.spec.name)


def generate_trace(
    spec: BehaviorSpec,
    n_instructions: int,
    seed: int = 0,
    shard_length: Optional[int] = None,
) -> Trace:
    """Convenience wrapper: ``TraceGenerator(spec, seed).generate(...)``."""
    return TraceGenerator(spec, seed).generate(n_instructions, shard_length)


def _generate_segment(
    phase: PhaseSpec,
    n: int,
    rng: np.random.Generator,
    addr_state: _AddressState,
    pc_state: dict,
) -> np.ndarray:
    """Generate one phase segment of ``n`` instructions."""
    out = empty_trace(n)

    ops = rng.choice(len(phase.mix_vector()), size=n, p=phase.mix_vector())
    out["op"] = ops.astype(np.int8)

    control = ops == int(OpClass.CONTROL)
    n_control = int(control.sum())
    out["taken"][control] = rng.random(n_control) < phase.taken_rate
    out["miss"][control] = rng.random(n_control) < phase.mispredict_rate

    dep = rng.geometric(1.0 / phase.dep_mean, size=n).astype(np.int32)
    dep[rng.random(n) < phase.indep_rate] = 0
    if phase.recurrence_interval > 0:
        # A loop-carried chain: every m-th instruction depends on the
        # previous chain member, serializing across the whole phase.
        m = phase.recurrence_interval
        dep[m::m] = m
    out["dep"] = dep

    mem_idx = np.flatnonzero(ops == int(OpClass.MEMORY))
    if len(mem_idx):
        out["addr"][mem_idx] = _generate_data_addresses(
            phase, len(mem_idx), rng, addr_state
        )

    out["iaddr"] = _generate_instruction_addresses(
        phase, out["op"], out["taken"], rng, pc_state
    )
    return out


def _generate_data_addresses(
    phase: PhaseSpec,
    n_accesses: int,
    rng: np.random.Generator,
    state: _AddressState,
) -> np.ndarray:
    """LRU-stack data-address model (see module docstring)."""
    addrs = np.empty(n_accesses, dtype=np.int64)
    # Pre-draw all randomness in bulk; the loop only consumes it.
    u_kind = rng.random(n_accesses)
    depths = rng.lognormal(phase.reuse_mu, phase.reuse_sigma, size=n_accesses)
    offsets = rng.integers(0, WORDS_PER_BLOCK, size=n_accesses)
    run_lengths = rng.geometric(1.0 / STREAM_RUN_MEAN, size=n_accesses)

    stack = state.stack
    stream_threshold = phase.stream_rate
    new_threshold = phase.stream_rate + phase.new_block_rate

    for i in range(n_accesses):
        if state.stream_left > 0:
            # Continue a unit-stride run.
            state.stream_left -= 1
            addr = state.last_addr + WORD_BYTES
            block = addr // BLOCK_BYTES
            _touch(stack, block)
        else:
            u = u_kind[i]
            if u < stream_threshold:
                # Start a new streaming run from a fresh block.
                state.stream_left = int(run_lengths[i])
                block = state.new_block()
                stack.insert(0, block)
                addr = block * BLOCK_BYTES
            elif u < new_threshold or not stack:
                block = state.new_block()
                stack.insert(0, block)
                addr = block * BLOCK_BYTES + int(offsets[i]) * WORD_BYTES
            else:
                depth = min(int(depths[i]), len(stack) - 1)
                block = stack.pop(depth)
                stack.insert(0, block)
                addr = block * BLOCK_BYTES + int(offsets[i]) * WORD_BYTES
        if len(stack) > MAX_STACK:
            del stack[MAX_STACK:]
        state.last_addr = addr
        addrs[i] = addr
    return addrs


def _touch(stack: List[int], block: int) -> None:
    """Move ``block`` to the stack front (bounded linear scan)."""
    try:
        stack.remove(block)
    except ValueError:
        pass
    stack.insert(0, block)


def _generate_instruction_addresses(
    phase: PhaseSpec,
    ops: np.ndarray,
    taken: np.ndarray,
    rng: np.random.Generator,
    state: dict,
) -> np.ndarray:
    """Hot-loop instruction-address model.

    The program counter advances 4 bytes per instruction.  At a taken
    branch it either loops back to the start of the current region (the
    common case) or far-jumps to one of :data:`FAR_REGIONS` distant
    regions.  Region size is ``code_blocks`` 64-byte blocks, so small
    ``code_blocks`` yields tight instruction locality.
    """
    n = len(ops)
    iaddr = np.empty(n, dtype=np.int64)
    region_bytes = phase.code_blocks * BLOCK_BYTES
    region_spacing = 1 << 20  # regions are 1 MiB apart: never alias

    branch_positions = np.flatnonzero((ops == int(OpClass.CONTROL)) & taken)
    n_branches = len(branch_positions)
    far = rng.random(n_branches) < phase.far_jump_rate
    far_targets = rng.integers(0, FAR_REGIONS, size=n_branches)
    returns_home = rng.random(n_branches) < 0.8

    pc = state["pc"]
    region = state["region"]
    prev = 0
    for j, pos in enumerate(branch_positions):
        length = pos - prev + 1
        base = region * region_spacing
        offs = (pc + np.arange(length) * INSTRUCTION_BYTES) % region_bytes
        iaddr[prev : pos + 1] = base + offs
        pc = 0  # every taken branch lands at the start of its target region
        if far[j]:
            region = 1 + int(far_targets[j])  # region 0 is the main loop
        elif region != 0 and returns_home[j]:
            region = 0  # return from a far function to the main loop
        prev = pos + 1
    # Tail after the last taken branch.
    if prev < n:
        base = region * region_spacing
        offs = (pc + np.arange(n - prev) * INSTRUCTION_BYTES) % region_bytes
        iaddr[prev:] = base + offs
        pc = int((pc + (n - prev) * INSTRUCTION_BYTES) % region_bytes)
    state["pc"] = pc
    state["region"] = region
    return iaddr
