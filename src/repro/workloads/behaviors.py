"""Behavior specifications for synthetic applications.

A :class:`PhaseSpec` describes one program phase as a small set of
statistical knobs; a :class:`BehaviorSpec` sequences phases into an
application.  The knobs map one-to-one onto mechanisms in the trace
generator:

* ``mix`` drives opcode-class sampling (Table 1 x1, x3..x7),
* ``taken_rate``/``mispredict_rate`` drive branch outcomes (x2),
* ``reuse_mu``/``reuse_sigma``/``new_block_rate``/``stream_rate`` drive the
  LRU-stack data-address model (x8),
* ``code_blocks``/``far_jump_rate`` drive the instruction-address model (x9),
* ``dep_mean``/``indep_rate`` drive producer-consumer distances (x10..x12),
* the control fraction of ``mix`` determines basic-block size (x13).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Order of mix keys; mirrors OpClass integer order.
MIX_KEYS = ("control", "fp_alu", "fp_muldiv", "int_muldiv", "int_alu", "memory")


@dataclasses.dataclass(frozen=True)
class PhaseSpec:
    """Statistical description of one application phase.

    Parameters
    ----------
    mix:
        Mapping from opcode-class name (see :data:`MIX_KEYS`) to its
        probability in the dynamic stream.  Must sum to 1 (±1e-6).
    taken_rate:
        Fraction of control instructions whose branch is taken.
    mispredict_rate:
        Fraction of control instructions a reference branch predictor
        mispredicts.  This is a software property in our substrate.
    reuse_mu, reuse_sigma:
        Parameters of the lognormal LRU-stack-depth distribution for data
        accesses (in 64-byte blocks).  Larger ``mu`` means a larger working
        set and worse temporal locality.
    new_block_rate:
        Probability a data access touches a never-before-seen block
        (compulsory-miss stream / footprint growth).
    stream_rate:
        Probability a data access continues a sequential (unit-stride)
        streaming run.  Controls spatial locality.
    code_blocks:
        Number of 64-byte instruction blocks in the hot loop body.
    far_jump_rate:
        Probability a taken branch leaves the hot loop for a distant
        function (instruction-cache pressure).
    dep_mean:
        Mean distance, in dynamic instructions, between an instruction and
        the producer of its critical operand.  Smaller means longer
        dependence chains and less ILP.
    indep_rate:
        Probability an instruction has no in-window register dependence.
    recurrence_interval:
        When positive, every ``recurrence_interval``-th instruction carries
        a loop-borne dependence on the previous such instruction, forming
        one chain that spans the whole phase — the recurrences of solvers
        and pointer chases that bound ILP regardless of window size.
        0 disables the chain.
    """

    mix: Dict[str, float]
    taken_rate: float = 0.5
    mispredict_rate: float = 0.05
    reuse_mu: float = 3.0
    reuse_sigma: float = 1.2
    new_block_rate: float = 0.02
    stream_rate: float = 0.3
    code_blocks: int = 32
    far_jump_rate: float = 0.02
    dep_mean: float = 6.0
    indep_rate: float = 0.35
    recurrence_interval: int = 0

    def __post_init__(self):
        unknown = set(self.mix) - set(MIX_KEYS)
        if unknown:
            raise ValueError(f"unknown mix keys: {sorted(unknown)}")
        total = sum(self.mix.get(k, 0.0) for k in MIX_KEYS)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"mix probabilities must sum to 1, got {total}")
        for name, lo, hi in [
            ("taken_rate", 0.0, 1.0),
            ("mispredict_rate", 0.0, 1.0),
            ("new_block_rate", 0.0, 1.0),
            ("stream_rate", 0.0, 1.0),
            ("far_jump_rate", 0.0, 1.0),
            ("indep_rate", 0.0, 1.0),
        ]:
            value = getattr(self, name)
            if not lo <= value <= hi:
                raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
        if self.dep_mean < 1.0:
            raise ValueError(f"dep_mean must be >= 1, got {self.dep_mean}")
        if self.code_blocks < 1:
            raise ValueError(f"code_blocks must be >= 1, got {self.code_blocks}")
        if self.recurrence_interval < 0:
            raise ValueError(
                f"recurrence_interval must be >= 0, got {self.recurrence_interval}"
            )

    def mix_vector(self) -> np.ndarray:
        """Return mix probabilities ordered by :class:`OpClass` value."""
        vec = np.array([self.mix.get(k, 0.0) for k in MIX_KEYS], dtype=float)
        return vec / vec.sum()

    def perturbed(self, rng: np.random.Generator, scale: float) -> "PhaseSpec":
        """Return a copy with all knobs jittered multiplicatively by ``scale``.

        Used to derive application *variants* (different inputs, different
        compiler optimization levels) that shift both software
        characteristics and performance, as the paper observes (§4.4).
        """

        def jitter(value, lo=None, hi=None):
            factor = float(np.exp(rng.normal(0.0, scale)))
            out = value * factor
            if lo is not None:
                out = max(lo, out)
            if hi is not None:
                out = min(hi, out)
            return out

        raw_mix = {k: jitter(v) for k, v in self.mix.items() if v > 0}
        total = sum(raw_mix.values())
        mix = {k: v / total for k, v in raw_mix.items()}
        return dataclasses.replace(
            self,
            mix=mix,
            taken_rate=jitter(self.taken_rate, 0.01, 0.99),
            mispredict_rate=jitter(self.mispredict_rate, 0.001, 0.5),
            reuse_mu=jitter(self.reuse_mu, 0.5, 9.0),
            reuse_sigma=jitter(self.reuse_sigma, 0.3, 3.0),
            new_block_rate=jitter(self.new_block_rate, 0.0005, 0.3),
            stream_rate=jitter(self.stream_rate, 0.0, 0.95),
            code_blocks=max(1, int(round(jitter(self.code_blocks)))),
            far_jump_rate=jitter(self.far_jump_rate, 0.0, 0.3),
            dep_mean=jitter(self.dep_mean, 1.5, 40.0),
            indep_rate=jitter(self.indep_rate, 0.02, 0.9),
        )


@dataclasses.dataclass(frozen=True)
class BehaviorSpec:
    """An application: a name plus a weighted sequence of phases.

    Parameters
    ----------
    name:
        Application identifier (e.g. ``"astar"``).
    phases:
        Sequence of ``(PhaseSpec, weight)``.  Weights are relative dynamic
        instruction shares and need not sum to 1.
    phase_run:
        Number of consecutive shard-lengths spent in one phase before
        switching.  Keeping runs longer than a shard ensures shards fall
        inside phases — the paper's requirement that shards be shorter than
        phases (§2.1).
    """

    name: str
    phases: Sequence[Tuple[PhaseSpec, float]]
    phase_run: int = 4

    def __post_init__(self):
        if not self.phases:
            raise ValueError("an application needs at least one phase")
        if any(w <= 0 for _, w in self.phases):
            raise ValueError("phase weights must be positive")
        if self.phase_run < 1:
            raise ValueError("phase_run must be >= 1")

    def phase_weights(self) -> np.ndarray:
        weights = np.array([w for _, w in self.phases], dtype=float)
        return weights / weights.sum()

    def phase_schedule(self, n_segments: int) -> List[int]:
        """Deterministic round-robin phase schedule honoring weights.

        Returns the phase index for each of ``n_segments`` equal segments.
        The schedule interleaves phases (A A B A A B ...) rather than
        concatenating them so that long traces show recurring phase behavior.
        """
        weights = self.phase_weights()
        # Largest-remainder style interleaving: repeatedly pick the phase
        # whose emitted share lags its target share the most.
        emitted = np.zeros(len(weights))
        schedule = []
        for i in range(n_segments):
            deficit = weights * (i + 1) - emitted
            pick = int(np.argmax(deficit))
            schedule.append(pick)
            emitted[pick] += 1.0
        return schedule
