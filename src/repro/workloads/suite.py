"""The seven-application synthetic suite and its variants.

Each application is named after the SPEC2006 benchmark it stands in for
(astar, bwaves, bzip2, gemsFDTD, hmmer, omnetpp, sjeng — the set the paper
cross-compiles for Gem5) and is specified to match that benchmark's
first-order published character:

* **astar** — path-finding: integer/memory heavy, branchy, pointer-chasing
  dependence chains, medium working set.
* **bwaves** — blocked fluid dynamics: the paper's *outlier* (§4.5).  Very
  floating-point heavy, far more taken branches than the others, few integer
  and memory operations, and two strongly contrasting phases (a streaming
  highly parallel phase and a dependence-bound recurrence phase) so its CPI
  distribution is bimodal while the other applications cluster.
* **bzip2** — compression: integer ALU dominant, data-dependent hard-to-
  predict branches, good temporal locality.
* **gemsFDTD** — finite-difference time domain: FP + streaming memory with a
  large, poorly re-used working set.
* **hmmer** — profile HMM search: very regular integer code, predictable
  branches, small hot loop, high ILP.
* **omnetpp** — discrete event simulation: memory bound with poor locality,
  large code footprint, branchy.
* **sjeng** — chess: balanced integer/control behavior; the paper notes it is
  *well* represented by the other applications, so its spec sits near the
  suite centroid.

Variants model the software perturbations of §4.4: ``optimization_variant``
(compiler back-end -O1/-O3) and ``input_variant`` (-v1/-v2/-v3 input sets).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

from repro.workloads.behaviors import BehaviorSpec, PhaseSpec

SPEC_APP_NAMES = (
    "astar",
    "bwaves",
    "bzip2",
    "gemsFDTD",
    "hmmer",
    "omnetpp",
    "sjeng",
)

OPT_LEVELS = ("-O1", "-O3")
INPUT_SETS = ("-v1", "-v2", "-v3")


def _astar() -> BehaviorSpec:
    search = PhaseSpec(
        mix={
            "control": 0.14,
            "int_alu": 0.38,
            "int_muldiv": 0.01,
            "memory": 0.42,
            "fp_alu": 0.04,
            "fp_muldiv": 0.01,
        },
        taken_rate=0.52,
        mispredict_rate=0.10,
        reuse_mu=4.2,
        reuse_sigma=1.6,
        new_block_rate=0.03,
        stream_rate=0.10,
        code_blocks=48,
        far_jump_rate=0.03,
        dep_mean=3.5,  # pointer chasing: short producer-consumer distances
        indep_rate=0.22,
        recurrence_interval=6,  # next node address depends on this node
    )
    expand = PhaseSpec(
        mix={
            "control": 0.11,
            "int_alu": 0.44,
            "int_muldiv": 0.02,
            "memory": 0.36,
            "fp_alu": 0.06,
            "fp_muldiv": 0.01,
        },
        taken_rate=0.46,
        mispredict_rate=0.07,
        reuse_mu=3.2,
        reuse_sigma=1.3,
        new_block_rate=0.015,
        stream_rate=0.20,
        code_blocks=40,
        far_jump_rate=0.02,
        dep_mean=4.5,
        indep_rate=0.30,
    )
    return BehaviorSpec("astar", [(search, 0.6), (expand, 0.4)])


def _bwaves() -> BehaviorSpec:
    # Streaming, highly parallel vector phase: low CPI on wide machines.
    stream = PhaseSpec(
        mix={
            "control": 0.16,
            "fp_alu": 0.40,
            "fp_muldiv": 0.16,
            "int_alu": 0.12,
            "int_muldiv": 0.005,
            "memory": 0.155,
        },
        taken_rate=0.88,  # tight vector loops: far more taken branches
        mispredict_rate=0.015,
        reuse_mu=2.2,
        reuse_sigma=0.9,
        new_block_rate=0.05,
        stream_rate=0.70,
        code_blocks=12,
        far_jump_rate=0.005,
        dep_mean=16.0,  # wide independent operations
        indep_rate=0.60,
    )
    # Recurrence/solver phase: long FP dependence chains.
    solver = PhaseSpec(
        mix={
            "control": 0.14,
            "fp_alu": 0.34,
            "fp_muldiv": 0.24,
            "int_alu": 0.10,
            "int_muldiv": 0.005,
            "memory": 0.175,
        },
        taken_rate=0.82,
        mispredict_rate=0.03,
        reuse_mu=2.8,
        reuse_sigma=1.0,
        new_block_rate=0.03,
        stream_rate=0.45,
        code_blocks=20,
        far_jump_rate=0.01,
        dep_mean=2.2,  # recurrence: dependence-bound
        indep_rate=0.10,
        recurrence_interval=4,  # loop-carried FP recurrence spans the phase
    )
    return BehaviorSpec("bwaves", [(stream, 0.5), (solver, 0.5)])


def _bzip2() -> BehaviorSpec:
    compress = PhaseSpec(
        mix={
            "control": 0.15,
            "int_alu": 0.52,
            "int_muldiv": 0.02,
            "memory": 0.29,
            "fp_alu": 0.015,
            "fp_muldiv": 0.005,
        },
        taken_rate=0.48,
        mispredict_rate=0.13,  # data-dependent branches
        reuse_mu=2.6,
        reuse_sigma=1.1,
        new_block_rate=0.01,
        stream_rate=0.30,
        code_blocks=28,
        far_jump_rate=0.015,
        dep_mean=4.0,
        indep_rate=0.28,
    )
    sort = PhaseSpec(
        mix={
            "control": 0.18,
            "int_alu": 0.46,
            "int_muldiv": 0.01,
            "memory": 0.33,
            "fp_alu": 0.015,
            "fp_muldiv": 0.005,
        },
        taken_rate=0.55,
        mispredict_rate=0.16,
        reuse_mu=3.4,
        reuse_sigma=1.4,
        new_block_rate=0.012,
        stream_rate=0.15,
        code_blocks=24,
        far_jump_rate=0.01,
        dep_mean=3.2,
        indep_rate=0.20,
        recurrence_interval=12,  # comparison-driven sort dependences
    )
    return BehaviorSpec("bzip2", [(compress, 0.65), (sort, 0.35)])


def _gemsfdtd() -> BehaviorSpec:
    update = PhaseSpec(
        mix={
            "control": 0.08,
            "fp_alu": 0.30,
            "fp_muldiv": 0.08,
            "int_alu": 0.17,
            "int_muldiv": 0.01,
            "memory": 0.36,
        },
        taken_rate=0.70,
        mispredict_rate=0.025,
        reuse_mu=5.5,  # large grid: poor temporal re-use
        reuse_sigma=1.5,
        new_block_rate=0.06,
        stream_rate=0.55,
        code_blocks=36,
        far_jump_rate=0.01,
        dep_mean=9.0,
        indep_rate=0.45,
    )
    boundary = PhaseSpec(
        mix={
            "control": 0.12,
            "fp_alu": 0.22,
            "fp_muldiv": 0.06,
            "int_alu": 0.26,
            "int_muldiv": 0.015,
            "memory": 0.325,
        },
        taken_rate=0.55,
        mispredict_rate=0.06,
        reuse_mu=4.0,
        reuse_sigma=1.3,
        new_block_rate=0.03,
        stream_rate=0.30,
        code_blocks=52,
        far_jump_rate=0.03,
        dep_mean=6.0,
        indep_rate=0.35,
    )
    return BehaviorSpec("gemsFDTD", [(update, 0.75), (boundary, 0.25)])


def _hmmer() -> BehaviorSpec:
    viterbi = PhaseSpec(
        mix={
            "control": 0.09,
            "int_alu": 0.56,
            "int_muldiv": 0.025,
            "memory": 0.30,
            "fp_alu": 0.02,
            "fp_muldiv": 0.005,
        },
        taken_rate=0.62,
        mispredict_rate=0.02,  # very regular loops
        reuse_mu=2.0,
        reuse_sigma=0.8,
        new_block_rate=0.008,
        stream_rate=0.40,
        code_blocks=10,
        far_jump_rate=0.004,
        dep_mean=8.0,
        indep_rate=0.50,
    )
    postprocess = PhaseSpec(
        mix={
            "control": 0.13,
            "int_alu": 0.50,
            "int_muldiv": 0.02,
            "memory": 0.31,
            "fp_alu": 0.03,
            "fp_muldiv": 0.01,
        },
        taken_rate=0.50,
        mispredict_rate=0.05,
        reuse_mu=2.6,
        reuse_sigma=1.0,
        new_block_rate=0.01,
        stream_rate=0.25,
        code_blocks=22,
        far_jump_rate=0.01,
        dep_mean=5.5,
        indep_rate=0.35,
    )
    return BehaviorSpec("hmmer", [(viterbi, 0.85), (postprocess, 0.15)])


def _omnetpp() -> BehaviorSpec:
    events = PhaseSpec(
        mix={
            "control": 0.17,
            "int_alu": 0.36,
            "int_muldiv": 0.01,
            "memory": 0.43,
            "fp_alu": 0.025,
            "fp_muldiv": 0.005,
        },
        taken_rate=0.50,
        mispredict_rate=0.09,
        reuse_mu=6.2,  # heap-allocated event objects: poor locality
        reuse_sigma=1.8,
        new_block_rate=0.05,
        stream_rate=0.06,
        code_blocks=90,  # large code footprint
        far_jump_rate=0.08,
        dep_mean=3.8,
        indep_rate=0.25,
        recurrence_interval=7,  # event-list pointer chasing
    )
    stats = PhaseSpec(
        mix={
            "control": 0.14,
            "int_alu": 0.40,
            "int_muldiv": 0.02,
            "memory": 0.37,
            "fp_alu": 0.06,
            "fp_muldiv": 0.01,
        },
        taken_rate=0.45,
        mispredict_rate=0.06,
        reuse_mu=5.0,
        reuse_sigma=1.5,
        new_block_rate=0.03,
        stream_rate=0.12,
        code_blocks=64,
        far_jump_rate=0.05,
        dep_mean=4.5,
        indep_rate=0.30,
    )
    return BehaviorSpec("omnetpp", [(events, 0.7), (stats, 0.3)])


def _sjeng() -> BehaviorSpec:
    # Deliberately near the suite centroid: the paper finds sjeng is well
    # represented by the other six applications (§4.5, Figure 9a).
    search = PhaseSpec(
        mix={
            "control": 0.14,
            "int_alu": 0.44,
            "int_muldiv": 0.015,
            "memory": 0.345,
            "fp_alu": 0.05,
            "fp_muldiv": 0.01,
        },
        taken_rate=0.52,
        mispredict_rate=0.08,
        reuse_mu=3.3,
        reuse_sigma=1.3,
        new_block_rate=0.02,
        stream_rate=0.18,
        code_blocks=36,
        far_jump_rate=0.025,
        dep_mean=4.2,
        indep_rate=0.28,
        recurrence_interval=10,  # alpha-beta search spine
    )
    evaluate = PhaseSpec(
        mix={
            "control": 0.12,
            "int_alu": 0.48,
            "int_muldiv": 0.02,
            "memory": 0.32,
            "fp_alu": 0.05,
            "fp_muldiv": 0.01,
        },
        taken_rate=0.48,
        mispredict_rate=0.06,
        reuse_mu=2.9,
        reuse_sigma=1.1,
        new_block_rate=0.015,
        stream_rate=0.22,
        code_blocks=30,
        far_jump_rate=0.02,
        dep_mean=5.0,
        indep_rate=0.32,
    )
    return BehaviorSpec("sjeng", [(search, 0.55), (evaluate, 0.45)])


_FACTORIES = {
    "astar": _astar,
    "bwaves": _bwaves,
    "bzip2": _bzip2,
    "gemsFDTD": _gemsfdtd,
    "hmmer": _hmmer,
    "omnetpp": _omnetpp,
    "sjeng": _sjeng,
}


def application_spec(name: str) -> BehaviorSpec:
    """Return the behavior specification for one suite application."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None


def spec2006_suite() -> Dict[str, BehaviorSpec]:
    """Return all seven application specifications keyed by name."""
    return {name: application_spec(name) for name in SPEC_APP_NAMES}


def optimization_variant(spec: BehaviorSpec, level: str) -> BehaviorSpec:
    """Derive a compiler-optimization variant of an application.

    ``-O1`` models a less optimized binary: more dynamic instructions reach
    memory (fewer values held in registers), dependence chains are shorter
    (less scheduling), and the hot loop is larger.  ``-O3`` models the
    opposite.  The paper measures such back-end choices moving performance
    by up to 60% (mean 26%) while also shifting the profiled
    microarchitecture-independent characteristics (§4.4).
    """
    if level not in OPT_LEVELS:
        raise ValueError(f"level must be one of {OPT_LEVELS}, got {level!r}")
    rng = np.random.default_rng(_stable_seed(spec.name, level))
    if level == "-O1":
        mem_scale, dep_scale, code_scale = 1.30, 0.75, 1.35
    else:  # -O3
        mem_scale, dep_scale, code_scale = 0.80, 1.35, 0.85

    phases = []
    for phase, weight in spec.phases:
        mix = dict(phase.mix)
        mix["memory"] = min(0.9, mix.get("memory", 0.0) * mem_scale)
        total = sum(mix.values())
        mix = {k: v / total for k, v in mix.items()}
        base = PhaseSpec(
            mix=mix,
            taken_rate=phase.taken_rate,
            mispredict_rate=phase.mispredict_rate,
            reuse_mu=phase.reuse_mu,
            reuse_sigma=phase.reuse_sigma,
            new_block_rate=phase.new_block_rate,
            stream_rate=phase.stream_rate,
            code_blocks=max(1, int(round(phase.code_blocks * code_scale))),
            far_jump_rate=phase.far_jump_rate,
            dep_mean=max(1.5, phase.dep_mean * dep_scale),
            indep_rate=phase.indep_rate,
        )
        phases.append((base.perturbed(rng, 0.08), weight))
    return BehaviorSpec(f"{spec.name}{level}", phases, spec.phase_run)


def _stable_seed(*parts) -> int:
    """Process-independent seed from string parts (built-in ``hash`` is
    salted per interpreter and must never seed reproducible streams)."""
    return zlib.crc32("|".join(str(p) for p in parts).encode())


def random_behavior_spec(rng: np.random.Generator, name: str = None) -> BehaviorSpec:
    """A synthetic benchmark sampled uniformly from the behavior space.

    The paper's §4.5 avenue for future work: "synthetic benchmarks provide
    explicit control on software behavior and enable uniform profiling
    across the software space".  Real applications populate the space
    sparsely and non-uniformly; these specs fill the gaps so that outliers
    like bwaves extrapolate from *covered* territory.  Used by the
    synthetic-coverage ablation (``repro.experiments.ablations``).
    """
    raw = {
        "control": rng.uniform(0.05, 0.2),
        "fp_alu": rng.uniform(0.0, 0.45),
        "fp_muldiv": rng.uniform(0.0, 0.25),
        "int_muldiv": rng.uniform(0.0, 0.05),
        "int_alu": rng.uniform(0.1, 0.6),
        "memory": rng.uniform(0.1, 0.5),
    }
    total = sum(raw.values())
    mix = {k: v / total for k, v in raw.items()}
    phase = PhaseSpec(
        mix=mix,
        taken_rate=float(rng.uniform(0.3, 0.95)),
        mispredict_rate=float(rng.uniform(0.005, 0.2)),
        reuse_mu=float(rng.uniform(1.5, 7.0)),
        reuse_sigma=float(rng.uniform(0.6, 2.0)),
        new_block_rate=float(rng.uniform(0.002, 0.1)),
        stream_rate=float(rng.uniform(0.0, 0.8)),
        code_blocks=int(rng.integers(6, 100)),
        far_jump_rate=float(rng.uniform(0.0, 0.1)),
        dep_mean=float(rng.uniform(1.5, 20.0)),
        indep_rate=float(rng.uniform(0.05, 0.7)),
        recurrence_interval=int(rng.choice([0, 0, 4, 6, 8, 12])),
    )
    label = name or f"synthetic{int(rng.integers(0, 10**6)):06d}"
    return BehaviorSpec(label, [(phase, 1.0)])


def input_variant(spec: BehaviorSpec, input_set: str) -> BehaviorSpec:
    """Derive an input-data variant of an application.

    Different inputs shift phase weights (different fractions of time in
    each kernel) and perturb locality/branch behavior — matching the paper's
    "-v1/-v2/-v3" software variants (§4.4).
    """
    if input_set not in INPUT_SETS:
        raise ValueError(f"input_set must be one of {INPUT_SETS}, got {input_set!r}")
    rng = np.random.default_rng(_stable_seed(spec.name, input_set))
    phases = []
    for phase, weight in spec.phases:
        new_weight = float(weight * np.exp(rng.normal(0.0, 0.4)))
        phases.append((phase.perturbed(rng, 0.15), max(1e-3, new_weight)))
    return BehaviorSpec(f"{spec.name}{input_set}", phases, spec.phase_run)
