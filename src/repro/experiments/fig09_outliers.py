"""Figure 9 — why extrapolation suffers for bwaves.

(a) For each Table 1 characteristic, the mean over a target application
    minus the mean over its n-1 training applications (normalized by the
    training standard deviation).  sjeng's differences are modest; bwaves
    has far more taken branches and floating-point operations and far
    fewer integer and memory operations.

(b, c) CPI distributions on a common reference architecture: the other
    applications' shards cluster tightly, while bwaves is bimodal at
    roughly half their CPI (its streaming phase) and near their mode (its
    recurrence phase).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.experiments.common import GeneralStudy, Scale, cached, current_scale
from repro.profiling import SOFTWARE_VARIABLE_NAMES
from repro.uarch import reference_config


@dataclasses.dataclass
class Fig9Result:
    deltas: Dict[str, np.ndarray]          # app -> normalized mean deltas (13,)
    cpi_others: np.ndarray                 # per-shard CPI, all apps but bwaves
    cpi_bwaves: np.ndarray                 # per-shard CPI, bwaves
    bimodality_gap: float                  # separation of bwaves CPI modes
    sjeng_max_delta: float
    bwaves_max_delta: float


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig9Result:
    scale = scale or current_scale()

    def build():
        study = GeneralStudy(scale, seed)
        apps = study.applications()
        per_app_x = {
            app: np.array([p.x for p in study.profiles(app)]) for app in apps
        }

        deltas: Dict[str, np.ndarray] = {}
        for target in ("sjeng", "bwaves"):
            train = np.concatenate(
                [per_app_x[a] for a in apps if a != target], axis=0
            )
            mean_t = per_app_x[target].mean(axis=0)
            mean_train = train.mean(axis=0)
            std_train = np.maximum(train.std(axis=0), 1e-12)
            deltas[target] = (mean_t - mean_train) / std_train

        config = reference_config()
        cpi: Dict[str, np.ndarray] = {}
        for app in apps:
            cpi[app] = np.array(
                [study.simulator.cpi(s, config) for s in study.shards(app)]
            )
        others = np.concatenate([cpi[a] for a in apps if a != "bwaves"])
        bwaves = cpi["bwaves"]
        return deltas, others, bwaves

    deltas, others, bwaves = cached(f"fig09-v12|{scale.name}|{seed}", build)
    lower = bwaves[bwaves <= np.median(bwaves)]
    upper = bwaves[bwaves > np.median(bwaves)]
    gap = float(upper.mean() / max(lower.mean(), 1e-12))
    return Fig9Result(
        deltas=deltas,
        cpi_others=others,
        cpi_bwaves=bwaves,
        bimodality_gap=gap,
        sjeng_max_delta=float(np.abs(deltas["sjeng"]).max()),
        bwaves_max_delta=float(np.abs(deltas["bwaves"]).max()),
    )


def report(result: Fig9Result) -> str:
    lines = [
        "Figure 9 — bwaves vs. sjeng as extrapolation targets",
        "  (a) normalized mean deltas vs. training applications:",
        f"      {'char':>5s} {'sjeng':>8s} {'bwaves':>8s}",
    ]
    for i, name in enumerate(SOFTWARE_VARIABLE_NAMES):
        lines.append(
            f"      {name:>5s} {result.deltas['sjeng'][i]:8.2f} "
            f"{result.deltas['bwaves'][i]:8.2f}"
        )
    lines += [
        f"  max |delta|: sjeng {result.sjeng_max_delta:.2f}  "
        f"bwaves {result.bwaves_max_delta:.2f} "
        "(paper: sjeng modest, bwaves not represented)",
        "",
        "  (b) CPI of all other applications' shards: "
        f"mean {result.cpi_others.mean():.2f}  std {result.cpi_others.std():.2f}",
        "  (c) CPI of bwaves shards:                 "
        f"mean {result.cpi_bwaves.mean():.2f}  std {result.cpi_bwaves.std():.2f}",
        f"  bwaves mode separation (upper/lower half means): "
        f"{result.bimodality_gap:.2f}x (paper: bimodal at ~0.5 and ~1.0)",
        "",
        "  CPI histograms (o = others, b = bwaves):",
        _dual_hist(result.cpi_others, result.cpi_bwaves),
    ]
    return "\n".join(lines)


def _dual_hist(a: np.ndarray, b: np.ndarray, bins: int = 20, width: int = 40) -> str:
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    edges = np.linspace(lo, hi, bins + 1)
    ca, _ = np.histogram(a, bins=edges)
    cb, _ = np.histogram(b, bins=edges)
    rows = []
    for i in range(bins):
        bar_a = "o" * int(round(width * ca[i] / max(ca.max(), 1)))
        bar_b = "b" * int(round(width * cb[i] / max(cb.max(), 1)))
        rows.append(f"    {edges[i]:6.2f} |{bar_a:<{width}s}|{bar_b}")
    return "\n".join(rows)
