"""Figures 7 & 8 — prediction accuracy in three scenarios.

(a) **Interpolation, steady state** — the integrated HW-SW space is
    sparsely profiled; an automated model predicts independently sampled
    application-architecture pairs.  Paper: median error ~5%, rho > 0.9
    (140 validation pairs; ~360 architectures per application train).

(b) **Extrapolation, software variants and new software** — the system is
    perturbed by compiler-optimization variants (-O1/-O3), input variants
    (-v1/-v2/-v3), or a fundamentally new application (leave-one-out).  The
    model is *updated* (§3.2-§3.3): a handful of the newcomer's profiles
    join the training set with elevated weight and coefficients are refit
    under the steady-state specification.  Paper: medians ~8% (variants,
    150 pairs) and ~6% (new applications, 140 pairs), rho >= 0.9.

(c) **Extrapolation, new hardware + new software** — validation
    architectures are drawn from a design-space corner excluded from all
    training.  Paper: trends still captured, rho >= 0.9.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.core import (
    BoxplotStats,
    InferredModel,
    ProfileDataset,
    absolute_percentage_errors,
    pearson_correlation,
)
from repro.experiments.common import (
    GeneralStudy,
    Scale,
    build_general_dataset,
    cached,
    current_scale,
    empty_general_dataset,
    run_genetic_search,
)
from repro.uarch import sample_configs
from repro.uarch.config import config_from_levels, _LEVEL_COUNTS
from repro.workloads import input_variant, optimization_variant, spec2006_suite

#: Profiles of a newcomer absorbed before refitting (§3.3: 10-20 points).
UPDATE_PROFILES = 15
UPDATE_WEIGHT = 3.0


@dataclasses.dataclass
class ScenarioAccuracy:
    name: str
    errors: BoxplotStats
    correlation: float
    n_pairs: int


@dataclasses.dataclass
class Fig78Result:
    interpolation: ScenarioAccuracy
    variant_extrapolation: ScenarioAccuracy
    new_software: ScenarioAccuracy
    new_hardware_software: ScenarioAccuracy


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig78Result:
    scale = scale or current_scale()

    def build():
        train, val = build_general_dataset(scale, seed)
        search_result = run_genetic_search(train, scale, seed=7)
        spec = search_result.best_chromosome.to_spec(train.variable_names)

        interp = _interpolation(spec, train, val)
        variants = _variant_extrapolation(spec, train, scale, seed)
        new_sw = _new_software(spec, scale, seed)
        new_hwsw = _new_hardware_software(spec, scale, seed)
        return Fig78Result(interp, variants, new_sw, new_hwsw)

    return cached(f"fig0708-v12|{scale.name}|{seed}", build)


# --------------------------------------------------------------------------------------
# Scenario (a): interpolation
# --------------------------------------------------------------------------------------


def _interpolation(spec, train, val) -> ScenarioAccuracy:
    model = InferredModel.fit(spec, train)
    return _accuracy("interpolation", model, val)


# --------------------------------------------------------------------------------------
# Scenario (b1): software variants with model updates
# --------------------------------------------------------------------------------------


def _variant_extrapolation(spec, train, scale, seed) -> ScenarioAccuracy:
    """-O1/-O3 and -v1..-v3 variants of the suite applications."""
    rng = np.random.default_rng(seed + 100)
    suite = spec2006_suite()
    variants = []
    for app, base in suite.items():
        variants.append(optimization_variant(base, "-O1"))
        variants.append(optimization_variant(base, "-O3"))
        variants.append(input_variant(base, f"-v{1 + len(variants) % 3}"))

    per_variant = max(2, scale.validation_pairs // len(variants))
    errors: List[np.ndarray] = []
    predictions_all: List[np.ndarray] = []
    targets_all: List[np.ndarray] = []

    study = GeneralStudy(scale, seed + 101)
    for variant in variants:
        study._shards.pop(variant.name, None)
        study.shards(variant.name, variant)
        update_configs = sample_configs(UPDATE_PROFILES, rng)
        update_records = study.sample_records(variant.name, update_configs, rng)

        combined = ProfileDataset(
            train.x_names, train.y_names, list(train.records) + update_records
        )
        weights = np.concatenate(
            [np.ones(len(train)), np.full(len(update_records), UPDATE_WEIGHT)]
        )
        model = InferredModel.fit(spec, combined, weights=weights)

        val_configs = sample_configs(per_variant, rng)
        val_records = study.sample_records(variant.name, val_configs, rng)
        probe = ProfileDataset(train.x_names, train.y_names, val_records)
        predictions = model.predict(probe)
        targets = probe.targets()
        errors.append(absolute_percentage_errors(predictions, targets))
        predictions_all.append(predictions)
        targets_all.append(targets)

    return ScenarioAccuracy(
        name="software variants",
        errors=BoxplotStats.from_errors(np.concatenate(errors)),
        correlation=pearson_correlation(
            np.concatenate(predictions_all), np.concatenate(targets_all)
        ),
        n_pairs=sum(len(e) for e in errors),
    )


# --------------------------------------------------------------------------------------
# Scenario (b2): fundamentally new software (leave-one-application-out)
# --------------------------------------------------------------------------------------


def _new_software(spec, scale, seed) -> ScenarioAccuracy:
    rng = np.random.default_rng(seed + 200)
    study = GeneralStudy(scale, seed)
    apps = study.applications()
    per_app = max(2, scale.validation_pairs // len(apps))

    errors: List[np.ndarray] = []
    preds_all: List[np.ndarray] = []
    targets_all: List[np.ndarray] = []
    for held_out in apps:
        train = empty_general_dataset()
        for app in apps:
            if app == held_out:
                continue
            configs = sample_configs(scale.configs_per_app, rng)
            train.extend(study.sample_records(app, configs, rng))
        update_records = study.sample_records(
            held_out, sample_configs(UPDATE_PROFILES, rng), rng
        )
        combined = ProfileDataset(
            train.x_names, train.y_names, list(train.records) + update_records
        )
        weights = np.concatenate(
            [np.ones(len(train)), np.full(len(update_records), UPDATE_WEIGHT)]
        )
        model = InferredModel.fit(spec, combined, weights=weights)

        val_records = study.sample_records(
            held_out, sample_configs(per_app, rng), rng
        )
        probe = ProfileDataset(train.x_names, train.y_names, val_records)
        predictions = model.predict(probe)
        errors.append(absolute_percentage_errors(predictions, probe.targets()))
        preds_all.append(predictions)
        targets_all.append(probe.targets())

    return ScenarioAccuracy(
        name="new software",
        errors=BoxplotStats.from_errors(np.concatenate(errors)),
        correlation=pearson_correlation(
            np.concatenate(preds_all), np.concatenate(targets_all)
        ),
        n_pairs=sum(len(e) for e in errors),
    )


# --------------------------------------------------------------------------------------
# Scenario (c): new hardware AND new software
# --------------------------------------------------------------------------------------


def _held_out_configs(n: int, rng: np.random.Generator):
    """Architectures from the excluded corner: maximal width designs."""
    configs = []
    guard = 0
    while len(configs) < n and guard < 100 * n:
        guard += 1
        levels = [int(rng.integers(0, c)) for c in _LEVEL_COUNTS]
        levels[0] = _LEVEL_COUNTS[0] - 1  # widest pipeline: never trained
        configs.append(config_from_levels(levels))
    return configs


def _training_configs(n: int, rng: np.random.Generator):
    """Architectures excluding the held-out corner (width < max)."""
    configs = []
    guard = 0
    while len(configs) < n and guard < 100 * n:
        guard += 1
        levels = [int(rng.integers(0, c)) for c in _LEVEL_COUNTS]
        levels[0] = int(rng.integers(0, _LEVEL_COUNTS[0] - 1))
        configs.append(config_from_levels(levels))
    return configs


def _new_hardware_software(spec, scale, seed) -> ScenarioAccuracy:
    rng = np.random.default_rng(seed + 300)
    study = GeneralStudy(scale, seed)
    apps = study.applications()
    per_app = max(2, scale.validation_pairs // len(apps))

    errors: List[np.ndarray] = []
    preds_all: List[np.ndarray] = []
    targets_all: List[np.ndarray] = []
    for held_out in apps:
        train = empty_general_dataset()
        for app in apps:
            if app == held_out:
                continue
            train.extend(
                study.sample_records(
                    app, _training_configs(scale.configs_per_app, rng), rng
                )
            )
        # The newcomer is profiled on a few architectures *including the new
        # hardware region* — Figure 6(d)'s shaded cells cover the new row
        # and column before prediction p is attempted.
        update_records = study.sample_records(
            held_out,
            _training_configs(UPDATE_PROFILES - UPDATE_PROFILES // 2, rng)
            + _held_out_configs(UPDATE_PROFILES // 2, rng),
            rng,
        )
        combined = ProfileDataset(
            train.x_names, train.y_names, list(train.records) + update_records
        )
        weights = np.concatenate(
            [np.ones(len(train)), np.full(len(update_records), UPDATE_WEIGHT)]
        )
        model = InferredModel.fit(spec, combined, weights=weights)

        val_records = study.sample_records(
            held_out, _held_out_configs(per_app, rng), rng
        )
        probe = ProfileDataset(train.x_names, train.y_names, val_records)
        predictions = model.predict(probe)
        errors.append(absolute_percentage_errors(predictions, probe.targets()))
        preds_all.append(predictions)
        targets_all.append(probe.targets())

    return ScenarioAccuracy(
        name="new hardware+software",
        errors=BoxplotStats.from_errors(np.concatenate(errors)),
        correlation=pearson_correlation(
            np.concatenate(preds_all), np.concatenate(targets_all)
        ),
        n_pairs=sum(len(e) for e in errors),
    )


# --------------------------------------------------------------------------------------


def _accuracy(name: str, model: InferredModel, val: ProfileDataset) -> ScenarioAccuracy:
    predictions = model.predict(val)
    targets = val.targets()
    return ScenarioAccuracy(
        name=name,
        errors=BoxplotStats.from_errors(
            absolute_percentage_errors(predictions, targets)
        ),
        correlation=pearson_correlation(predictions, targets),
        n_pairs=len(val),
    )


def report(result: Fig78Result) -> str:
    lines = ["Figures 7 & 8 — prediction error distributions and correlations"]
    paper = {
        "interpolation": "paper: ~5% median, rho > 0.9",
        "software variants": "paper: ~8% median, rho >= 0.9",
        "new software": "paper: ~6% median, rho >= 0.9",
        "new hardware+software": "paper: trends captured, rho >= 0.9",
    }
    for scenario in (
        result.interpolation,
        result.variant_extrapolation,
        result.new_software,
        result.new_hardware_software,
    ):
        lines.append("  " + scenario.errors.row(scenario.name))
        lines.append(
            f"  {'':<18s} rho = {scenario.correlation:.3f}   ({paper[scenario.name]})"
        )
    return "\n".join(lines)
