"""Figures 12 & 13 — SpMV blocking and cache-architecture trends.

Samples are drawn from the integrated SpMV-cache space for raefsky3 and
average Mflop/s is reported at each parameter value, as in the paper.  To
keep the per-value averages comparable, the sweeps use *common random
numbers*: block-size trends (Figure 12) evaluate every r x c on the same
sampled set of cache architectures, and each cache-parameter trend
(Figure 13) sweeps that parameter while holding the rest of each sampled
configuration fixed.

Paper observations reproduced in shape:

* Figure 12 — performance vs. block rows is non-monotonic (8 rows best;
  6-7 no better than 2); block columns 1, 4 and 8 are equally effective
  (dense substructure in multiples of 4); fill ratios above ~1.25 hurt.
* Figure 13 — larger cache lines raise streaming bandwidth; very high
  associativity keeps never-re-used matrix values in the cache longer
  (the LRU-stack effect), so the associativity curve is flat-to-adverse.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.experiments.common import Scale, cached, current_scale
from repro.parallel import parallel_map
from repro.spmv import (
    BLOCK_SIZES,
    SpMVSpace,
    sample_cache_configs,
    table4_matrix,
)
from repro.spmv.cache import (
    DSIZE_KB_LEVELS,
    DWAYS_LEVELS,
    LINE_BYTES_LEVELS,
    REPL_POLICIES,
)

MATRIX = "raefsky3"
FILL_BINS = ((1.0, 1.05), (1.05, 1.25), (1.25, 2.0), (2.0, np.inf))

#: Per-process memo of evaluation spaces, keyed by matrix name.  Simulation
#: results are pure functions of (matrix, r, c, cache), so each process —
#: the serial driver or a long-lived pool worker — safely accumulates its
#: own; in serial mode this preserves the original single-space
#: memoization across all trend jobs.
_SPACE_MEMO: Dict[str, SpMVSpace] = {}


def _space(matrix_name: str) -> SpMVSpace:
    if matrix_name not in _SPACE_MEMO:
        _SPACE_MEMO[matrix_name] = SpMVSpace(table4_matrix(matrix_name, seed=0))
    return _SPACE_MEMO[matrix_name]


def _trend_job(job):
    """One kernel trace's worth of simulations (picklable, deterministic).

    Jobs are shaped for the batched struct-of-arrays cache engine: each
    pins one block size — one (memory-mapped) kernel trace — and batches
    every cache through :meth:`SpMVSpace.evaluate_batch`.

    ``("grid", matrix, r, c, caches)`` evaluates one block size on every
    base cache for Figure 12 and returns ``(mflops, fill_ratio)`` tuples
    in cache order; ``("sweep", matrix, cache, r, c, field, values)``
    sweeps one cache parameter for Figure 13 and returns ``(value,
    mflops)`` tuples.
    """
    kind = job[0]
    if kind == "grid":
        _, matrix_name, r, c, caches = job
        space = _space(matrix_name)
        results = space.evaluate_batch(r, c, list(caches))
        return [(result.mflops, result.fill_ratio) for result in results]
    _, matrix_name, cache, r, c, field, values = job
    space = _space(matrix_name)
    variants = [dataclasses.replace(cache, **{field: v}) for v in values]
    results = space.evaluate_batch(r, c, variants)
    return [(v, result.mflops) for v, result in zip(values, results)]


@dataclasses.dataclass
class TrendResult:
    by_brow: Dict[int, float]
    by_bcol: Dict[int, float]
    by_fill_bin: Dict[str, float]
    by_line: Dict[int, float]
    by_dsize: Dict[int, float]
    by_dways: Dict[int, float]
    by_drepl: Dict[str, float]
    n_samples: int


def _fill_label(fr: float) -> str:
    for lo, hi in FILL_BINS:
        if lo <= fr < hi:
            return f"[{lo:.2f},{hi if np.isfinite(hi) else 'inf'})"
    raise ValueError(f"fill ratio {fr} below 1")


def run(scale: Optional[Scale] = None, seed: int = 2012) -> TrendResult:
    scale = scale or current_scale()
    # Base cache samples: enough that Figure 12's block averages marginalize
    # over cache diversity.
    n_caches = max(4, scale.spmv_train // 40)

    def build():
        rng = np.random.default_rng(seed + 700)
        bases = sample_cache_configs(n_caches, rng)
        # Blocks for the Figure 13 sweeps: drawn here, like every random
        # choice, before any simulation fans out (the Figure 12 loop draws
        # nothing, so the stream matches the original serial driver).
        blocks = [
            (int(rng.choice(BLOCK_SIZES)), int(rng.choice(BLOCK_SIZES)))
            for _ in bases
        ]

        axes = [
            ("line_bytes", LINE_BYTES_LEVELS),
            ("dsize_kb", DSIZE_KB_LEVELS),
            ("dways", DWAYS_LEVELS),
            ("drepl", REPL_POLICIES),
        ]
        block_grid = [(r, c) for r in BLOCK_SIZES for c in BLOCK_SIZES]
        jobs = [("grid", MATRIX, r, c, bases) for r, c in block_grid]
        for field, values in axes:
            jobs += [
                ("sweep", MATRIX, cache, r, c, field, values)
                for cache, (r, c) in zip(bases, blocks)
            ]
        results = parallel_map(_trend_job, jobs)
        grid_results = dict(zip(block_grid, results[: len(block_grid)]))
        sweep_results = results[len(block_grid):]

        # --- Figure 12: all 64 block sizes on every base cache -----------------
        # The batched jobs are grouped by block size, but the averages are
        # accumulated cache-major — the exact order the original per-cache
        # loop appended in — so every mean is bit-identical.
        evaluations = 0
        brow_sums: Dict[int, list] = {r: [] for r in BLOCK_SIZES}
        bcol_sums: Dict[int, list] = {c: [] for c in BLOCK_SIZES}
        fill_sums: Dict[str, list] = {_fill_label(lo): [] for lo, _ in FILL_BINS}
        for cache_index in range(len(bases)):
            for r, c in block_grid:
                mflops, fill_ratio = grid_results[(r, c)][cache_index]
                evaluations += 1
                brow_sums[r].append(mflops)
                bcol_sums[c].append(mflops)
                fill_sums[_fill_label(fill_ratio)].append(mflops)

        # --- Figure 13: one-parameter sweeps around each base cache -----------
        trends = {}
        for axis_index, (field, values) in enumerate(axes):
            per_axis = sweep_results[
                axis_index * len(bases):(axis_index + 1) * len(bases)
            ]
            sums = {v: [] for v in values}
            for pairs in per_axis:
                for v, mflops in pairs:
                    sums[v].append(mflops)
            trends[field] = {v: float(np.mean(s)) for v, s in sums.items()}
        by_line = trends["line_bytes"]
        by_dsize = trends["dsize_kb"]
        by_dways = trends["dways"]
        by_drepl = trends["drepl"]
        evaluations += len(bases) * (
            len(LINE_BYTES_LEVELS)
            + len(DSIZE_KB_LEVELS)
            + len(DWAYS_LEVELS)
            + len(REPL_POLICIES)
        )

        return TrendResult(
            by_brow={r: float(np.mean(v)) for r, v in brow_sums.items()},
            by_bcol={c: float(np.mean(v)) for c, v in bcol_sums.items()},
            by_fill_bin={
                k: float(np.mean(v)) if v else float("nan")
                for k, v in fill_sums.items()
            },
            by_line=by_line,
            by_dsize=by_dsize,
            by_dways=by_dways,
            by_drepl=by_drepl,
            n_samples=evaluations,
        )

    return cached(f"fig1213-v12|{scale.name}|{seed}|{n_caches}", build)


def check(result: TrendResult) -> None:
    """Fail loudly when the paper's trend shapes are not reproduced.

    The thresholds are structural, not point estimates: the line-size
    trend must rise monotonically (streaming bandwidth), fill ratios
    past 2x must cost performance, and associativity must stay
    flat-to-adverse (the LRU-stack effect) — the three observations the
    figure exists to show.
    """
    line_sizes = sorted(result.by_line)
    trend = [result.by_line[s] for s in line_sizes]
    if any(b <= a for a, b in zip(trend, trend[1:])):
        raise AssertionError(
            "line-size trend is not monotonically increasing: "
            + ", ".join(f"{s}B={v:.1f}" for s, v in zip(line_sizes, trend))
        )

    bins = [v for v in result.by_fill_bin.values() if np.isfinite(v)]
    if len(bins) >= 2 and bins[0] <= bins[-1]:
        raise AssertionError(
            f"fill-ratio penalty missing: tightest bin {bins[0]:.1f} "
            f"Mflop/s <= loosest bin {bins[-1]:.1f}"
        )

    ways = [result.by_dways[w] for w in sorted(result.by_dways)]
    spread = max(ways) / min(ways)
    if spread > 1.25:
        raise AssertionError(
            f"associativity trend not flat-to-adverse: {spread:.2f}x spread "
            f"across ways (paper: high associativity is not helpful)"
        )


def report(result: TrendResult) -> str:
    def table(title, mapping, fmt="{:>8}"):
        lines = [f"  {title}"]
        peak = max(v for v in mapping.values() if np.isfinite(v))
        for key, value in mapping.items():
            bar = "#" * int(round(30 * value / peak)) if np.isfinite(value) else ""
            lines.append(f"    {fmt.format(key)} {value:8.1f}  {bar}")
        return lines

    lines = [
        f"Figures 12 & 13 — average Mflop/s over {result.n_samples} samples "
        f"({MATRIX})",
        "",
        "Figure 12 (software):",
    ]
    lines += table("block rows (paper: 8 best; 6-7 ~ 2):", result.by_brow)
    lines += table("block cols (paper: 1, 4, 8 equally effective):", result.by_bcol)
    lines += table(
        "fill-ratio bin (paper: fR > 1.25 harms):", result.by_fill_bin, "{:>12}"
    )
    lines += ["", "Figure 13 (cache architecture):"]
    lines += table("line size B (paper: larger lines stream better):", result.by_line)
    lines += table("data size KB:", result.by_dsize)
    lines += table("data ways (paper: high assoc. not helpful):", result.by_dways)
    lines += table("replacement:", result.by_drepl, "{:>8}")
    return "\n".join(lines)
