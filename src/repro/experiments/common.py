"""Shared experiment infrastructure: scales, caching, dataset builders.

Every paper experiment runs at one of three scales:

* ``small``  — seconds; used by the test suite;
* ``bench``  — the default for ``pytest benchmarks/``; minutes in total;
* ``full``   — the paper's sample counts (360 architectures/application,
  population 50, 20 generations); select with ``REPRO_SCALE=full``.

Expensive artifacts (shard statistics, sampled profile datasets, genetic
search results, SpMV simulations) are cached under ``.cache/`` keyed by a
hash of all generating parameters, so repeated benchmark runs are fast and
reproducible.  Large arrays inside an artifact live in the
:mod:`repro.store` mmap column store; the pickle on disk holds small
metadata plus column references.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro import store as store_mod
from repro.core import ProfileDataset, ProfileRecord
from repro.parallel import parallel_map
from repro.profiling import SOFTWARE_VARIABLE_NAMES
from repro.profiling.shards import ShardProfile
from repro.store.artifacts import dump_artifact, load_artifact
from repro.uarch import HARDWARE_VARIABLE_NAMES, PipelineConfig, get_backend
from repro.workloads import generate_trace, spec2006_suite

SHARD_LENGTH = 10_000


@dataclasses.dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    name: str
    configs_per_app: int        # architectures profiled per application
    shards_per_app: int         # shards generated per application
    population: int             # GA population size
    generations: int            # GA generations
    validation_pairs: int       # held-out application-architecture pairs
    spmv_train: int             # SpMV training samples per matrix
    spmv_val: int               # SpMV validation samples per matrix
    tuning_caches: int          # candidate caches for architecture tuning


SCALES: Dict[str, Scale] = {
    "small": Scale("small", 40, 8, 10, 3, 40, 60, 20, 12),
    "bench": Scale("bench", 140, 24, 30, 12, 140, 240, 60, 40),
    "full": Scale("full", 360, 45, 50, 20, 140, 400, 100, 80),
}


def current_scale(override: Optional[str] = None) -> Scale:
    """The active scale: explicit override, else $REPRO_SCALE, else bench."""
    name = override or os.environ.get("REPRO_SCALE", "bench")
    if name not in SCALES:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")
    return SCALES[name]


# --------------------------------------------------------------------------------------
# Disk cache
# --------------------------------------------------------------------------------------


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached(key: str, build: Callable[[], object], refresh: bool = False):
    """Fetch-or-build a cached artifact keyed by ``key``.

    Artifacts are written with the store-aware codec
    (:func:`repro.store.dump_artifact`): small metadata stays in the
    pickle, while large arrays are spilled to (or referenced from) the
    mmap column store, so a cache hit maps pages instead of copying
    megabytes through the unpickler.  Old plain-pickle cache files load
    unchanged, and an unreadable artifact is rebuilt, not fatal.

    Every cache miss logs a one-line build-time summary to stderr, so the
    slow stages of a bench run are visible at a glance.
    """
    digest = hashlib.sha256(key.encode()).hexdigest()[:24]
    path = cache_dir() / f"{digest}.pkl"
    if path.exists() and not refresh:
        try:
            value = load_artifact(path)
        except Exception:
            # Torn pickle or a missing/quarantined store column behind a
            # reference: treat as a miss and rebuild below.
            obs.counter("cache.load_failures").inc()
        else:
            obs.counter("cache.hits").inc()
            obs.counter("cache.hit_bytes").inc(path.stat().st_size)
            return value
    obs.counter("cache.misses").inc()
    start = time.perf_counter()
    value = build()
    elapsed = time.perf_counter() - start
    obs.histogram("cache.build_seconds", obs.SECONDS_BUCKETS).observe(elapsed)
    print(
        f"[repro.cache] built {key} in {elapsed:.1f}s ({digest}.pkl)",
        file=sys.stderr,
    )
    dump_artifact(value, path)
    obs.counter("cache.miss_bytes").inc(path.stat().st_size)
    return value


# --------------------------------------------------------------------------------------
# General-study corpus: traces, shard profiles, simulator
# --------------------------------------------------------------------------------------


@dataclasses.dataclass
class ApplicationCorpus:
    """One application's shards, their Table 1 profiles, and shard stats."""

    name: str
    profiles: List[ShardProfile]
    shard_keys: List[str]


class GeneralStudy:
    """Lazily built corpus of traces + profiles for the SPEC-like suite.

    The :class:`Simulator`'s per-shard statistics are the expensive part;
    they are built once per (application, shards, seed) and pickled.

    ``backend`` selects the timing model (``"cpu"`` or ``"gpu"``) from
    :mod:`repro.uarch.backends`; traces, shard statistics, and Table 1
    profiles are backend-independent and shared.
    """

    def __init__(self, scale: Scale, seed: int = 2012, backend: str = "cpu"):
        self.scale = scale
        self.seed = seed
        self.backend = get_backend(backend)
        self.simulator = self.backend.make_simulator()
        self._shards: Dict[str, list] = {}
        self._profiles: Dict[str, List[ShardProfile]] = {}

    # -- trace/profile access --------------------------------------------------------

    def applications(self) -> Tuple[str, ...]:
        return tuple(spec2006_suite())

    def shards(self, application: str, spec=None):
        """Shard traces of one application (generated deterministically)."""
        key = application
        if key not in self._shards:
            spec = spec or spec2006_suite()[application]
            n = self.scale.shards_per_app * SHARD_LENGTH
            trace = self._trace(application, spec, n)
            self._shards[key] = trace.shards(SHARD_LENGTH)
        return self._shards[key]

    def _trace(self, application: str, spec, n: int):
        """Generate — or memory-map — one application's full trace.

        The trace is a deterministic function of (spec, length, seed,
        shard length), so when the :mod:`repro.store` is enabled it is
        published once as a columnar ``.npy`` and mapped on every later
        request: dataset-builder workers (and repeated runs) share the
        same pages instead of each regenerating the stream.
        """
        if not store_mod.enabled():
            return generate_trace(spec, n, seed=self.seed, shard_length=SHARD_LENGTH)
        store = store_mod.Store()
        column = f"traces/{spec.name}/s{self.seed}-n{n}-l{SHARD_LENGTH}"
        try:
            data = store.get(column)
        except store_mod.StoreError:
            trace = generate_trace(spec, n, seed=self.seed, shard_length=SHARD_LENGTH)
            store.put(column, trace.data)
            try:
                data = store.get(column)
            except store_mod.StoreError:
                return trace  # read-only store dir etc.: fall back in-memory
        from repro.isa.trace import Trace

        return Trace(data, spec.name)

    def profiles(self, application: str, spec=None) -> List[ShardProfile]:
        if application not in self._profiles:
            shards = self.shards(application, spec)
            self._profiles[application] = [
                ShardProfile(application, i, p.x)
                for i, p in enumerate(
                    profile_application_shards(shards, application)
                )
            ]
        return self._profiles[application]

    def warm_stats(self, application: str) -> None:
        """Precompute simulator statistics for an application's shards."""
        self.simulator.stats_for_many(self.shards(application))

    # -- profile-record construction ------------------------------------------------

    def record(
        self, application: str, shard_index: int, config: PipelineConfig
    ) -> ProfileRecord:
        shards = self.shards(application)
        profiles = self.profiles(application)
        z = self.simulator.cpi(shards[shard_index], config)
        return ProfileRecord(
            application,
            profiles[shard_index].x,
            config.as_vector(),
            z,
            tag=f"{profiles[shard_index].key}/{config.key}",
        )

    def sample_records(
        self,
        application: str,
        configs: Sequence[PipelineConfig],
        rng: np.random.Generator,
    ) -> List[ProfileRecord]:
        """One record per config, each on a random shard of the application."""
        n_shards = len(self.shards(application))
        return [
            self.record(application, int(rng.integers(0, n_shards)), config)
            for config in configs
        ]


def profile_application_shards(shards, application: str):
    """Profile already-split shards (keeps shard indices aligned)."""
    from repro.profiling import profile_shard

    return [
        ShardProfile(application, i, profile_shard(shard))
        for i, shard in enumerate(shards)
    ]


def empty_general_dataset() -> ProfileDataset:
    return ProfileDataset(SOFTWARE_VARIABLE_NAMES, HARDWARE_VARIABLE_NAMES)


def _build_app_records(
    scale: Scale,
    seed: int,
    application: str,
    configs: Sequence[PipelineConfig],
    shard_indices: Sequence[int],
    backend: str = "cpu",
) -> List[ProfileRecord]:
    """Profile one application on pre-drawn (config, shard) pairs.

    Top-level and fully determined by its arguments, so it can run in a
    worker process: the trace generation and simulator statistics it
    rebuilds are deterministic functions of (scale, seed, application).
    """
    study = GeneralStudy(scale, seed, backend=backend)
    with obs.span("dataset.build_app"):
        shards = study.shards(application)
        profiles = study.profiles(application)
        # Group the pairs by shard so each shard's statistics feed one
        # batched CPI pass (struct-of-arrays miss model across configs);
        # records still come back in draw order, bit-identical to the
        # per-pair loop.
        by_shard: Dict[int, List[int]] = {}
        for j, shard_index in enumerate(shard_indices):
            by_shard.setdefault(int(shard_index), []).append(j)
        stats_list = study.simulator.stats_for_many(
            [shards[i] for i in sorted(by_shard)]
        )
        z = np.empty(len(configs))
        for shard_index, stats in zip(sorted(by_shard), stats_list):
            positions = by_shard[shard_index]
            cpis = study.simulator.cpi_batch_from_stats(
                stats, [configs[j] for j in positions]
            )
            z[positions] = cpis
        records = [
            ProfileRecord(
                application,
                profiles[shard_index].x,
                config.as_vector(),
                float(z[j]),
                tag=f"{profiles[shard_index].key}/{config.key}",
            )
            for j, (config, shard_index) in enumerate(zip(configs, shard_indices))
        ]
    obs.counter("dataset.records_built").inc(len(records))
    return records


def build_general_dataset(
    scale: Scale,
    seed: int = 2012,
    applications: Optional[Sequence[str]] = None,
    backend: str = "cpu",
) -> Tuple[ProfileDataset, ProfileDataset]:
    """(training, validation) datasets for the general study.

    Training: per application, ``scale.configs_per_app`` random
    architectures, each with a random shard.  Validation: an independent
    random sample of ``scale.validation_pairs`` application-architecture
    pairs.  Both are cached.

    All architecture and shard draws happen serially up front (in the
    exact order the original serial builder made them); the expensive part
    — profiling and simulating each application's shards — then fans out
    one job per application via :mod:`repro.parallel`, so the datasets are
    identical at any ``REPRO_WORKERS`` setting.

    ``backend`` selects the timing model the records' CPIs come from and
    the design space the architectures are drawn over; software profiles
    and shard statistics are shared across backends.
    """
    apps = tuple(applications or spec2006_suite())
    chosen = get_backend(backend)

    def build():
        rng = np.random.default_rng(seed)
        jobs: List[Tuple] = []
        for app in apps:
            configs = chosen.sample_configs(scale.configs_per_app, rng)
            shard_indices = [
                int(rng.integers(0, scale.shards_per_app)) for _ in configs
            ]
            jobs.append((scale, seed, app, configs, shard_indices, backend))
        per_app_val = max(1, scale.validation_pairs // len(apps))
        for app in apps:
            configs = chosen.sample_configs(per_app_val, rng)
            shard_indices = [
                int(rng.integers(0, scale.shards_per_app)) for _ in configs
            ]
            jobs.append((scale, seed, app, configs, shard_indices, backend))

        record_lists = parallel_map(
            _build_app_records_job, jobs, collect_metrics=True
        )
        train = empty_general_dataset()
        val = empty_general_dataset()
        for dataset, records in zip(
            [train] * len(apps) + [val] * len(apps), record_lists
        ):
            for record in records:
                dataset.add(record)
        return train, val

    # The CPU key is unchanged from earlier revisions so existing caches
    # stay warm; other backends get their own keyspace.
    key = f"general-dataset-v12|{scale.name}|{seed}|{','.join(apps)}"
    if backend != "cpu":
        key += f"|backend={backend}"
    return cached(key, build)


def _build_app_records_job(job) -> List[ProfileRecord]:
    """Unpack one :func:`build_general_dataset` job tuple (picklable shim)."""
    return _build_app_records(*job)


def run_genetic_search(
    dataset: ProfileDataset,
    scale: Scale,
    seed: int = 7,
    generations: Optional[int] = None,
    tag: str = "main",
    initial_population: Optional[list] = None,
):
    """Run (or recall) the genetic search on a dataset.

    ``initial_population`` (a list of :class:`~repro.core.Chromosome`)
    warm-starts the search — the hook the cross-backend transfer study
    uses to seed backend B's search with backend A's population.  Cache
    keys of warm-started runs carry a digest of the seeding chromosomes.
    """
    from repro.core import GeneticSearch

    gens = generations if generations is not None else scale.generations

    def build():
        from repro.core import chromosome_from_spec, manual_general_spec

        search = GeneticSearch(population_size=scale.population, seed=seed)
        initial = None
        if initial_population is not None:
            initial = list(initial_population)
        else:
            try:
                initial = [
                    chromosome_from_spec(manual_general_spec(), dataset.variable_names)
                ]
            except ValueError:
                pass  # non-general variable set: start fully random
        return search.run(dataset, gens, initial_population=initial)

    key = (
        f"ga-v13|{scale.name}|{seed}|{gens}|{len(dataset)}|{tag}|"
        f"{hashlib.sha256(dataset.targets().tobytes()).hexdigest()[:16]}"
    )
    if initial_population is not None:
        warm_digest = hashlib.sha256(
            repr(
                [(c.genes, sorted(c.interactions)) for c in initial_population]
            ).encode()
        ).hexdigest()[:16]
        key += f"|warm={warm_digest}"
    return cached(key, build)
