"""Per-table/figure experiment drivers.

Each module exposes ``run(scale=None, seed=...)`` returning a result
dataclass and ``report(result)`` formatting the rows/series the paper
reports.  ``benchmarks/`` wraps each driver in a pytest-benchmark target;
results are cached under ``.cache/`` so repeated runs are cheap.

=====================  ============================================
Module                 Paper artifact
=====================  ============================================
``fig03_variance``     Figure 3 — long-tailed locality, x**(1/5)
``fig04_interactions`` Figure 4 — interaction frequency heatmap
``fig05_convergence``  Figure 5 — GA convergence
``table3_transforms``  Table 3 — transformations after 20 generations
``sec42_baselines``    §4.2 — genetic vs manual (and stepwise)
``fig07_08_accuracy``  Figures 7 & 8 — interpolation/extrapolation
``fig09_outliers``     Figure 9 — bwaves as a behavioral outlier
``fig10_shards``       Figure 10 — shard-level extrapolation
``sec43_cost``         §4.3 — reduced profiling costs
``fig12_13_trends``    Figures 12 & 13 — SpMV parameter trends
``fig14_spmv``         Figure 14 — SpMV model accuracy (perf & power)
``fig15_topology``     Figure 15 — profiled vs predicted topology
``fig16_tuning``       Figure 16 — coordinated optimization
``ablations``          design-choice ablations (extension)
=====================  ============================================
"""
