"""Figure 14 — SpMV performance and power prediction accuracy.

For each Table 4 matrix: sample the integrated (block size x cache) space,
fit the compact domain-specific model on the training samples, and validate
on an independent sample.  The paper reports median errors of 4-6% for both
performance (Mflop/s) and power (our energy proxy: nJ/Flop) across all 11
matrices.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core import BoxplotStats, absolute_percentage_errors, pearson_correlation
from repro.experiments.common import Scale, cached, current_scale
from repro.parallel import parallel_map
from repro.spmv import MATRIX_NAMES, SpMVSpace, fit_spmv_model, table4_matrix


@dataclasses.dataclass
class MatrixAccuracy:
    performance: BoxplotStats
    power: BoxplotStats
    performance_rho: float
    power_rho: float


@dataclasses.dataclass
class Fig14Result:
    per_matrix: Dict[str, MatrixAccuracy]
    median_of_medians_perf: float
    median_of_medians_power: float


def _matrix_accuracy(job) -> MatrixAccuracy:
    """Sample, fit and validate one matrix (a picklable per-matrix job).

    Each matrix gets its own deterministically derived generators, so the
    result is independent of how the matrices are spread over workers.
    """
    index, name, seed, scale = job
    rng = np.random.default_rng(seed + 800 + index)
    space = SpMVSpace(table4_matrix(name, seed=0))
    train_perf = space.sample_dataset(scale.spmv_train, rng, "mflops")
    val_perf = space.sample_dataset(scale.spmv_val, rng, "mflops")
    model_perf = fit_spmv_model(train_perf)
    pred_perf = model_perf.predict(val_perf)

    rng_p = np.random.default_rng(seed + 900 + index)
    train_pow = space.sample_dataset(scale.spmv_train, rng_p, "nj_per_flop")
    val_pow = space.sample_dataset(scale.spmv_val, rng_p, "nj_per_flop")
    model_pow = fit_spmv_model(train_pow)
    pred_pow = model_pow.predict(val_pow)

    return MatrixAccuracy(
        performance=BoxplotStats.from_errors(
            absolute_percentage_errors(pred_perf, val_perf.targets())
        ),
        power=BoxplotStats.from_errors(
            absolute_percentage_errors(pred_pow, val_pow.targets())
        ),
        performance_rho=pearson_correlation(pred_perf, val_perf.targets()),
        power_rho=pearson_correlation(pred_pow, val_pow.targets()),
    )


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig14Result:
    scale = scale or current_scale()

    def build():
        jobs = [
            (index, name, seed, scale)
            for index, name in enumerate(MATRIX_NAMES)
        ]
        accuracies = parallel_map(_matrix_accuracy, jobs)
        per_matrix = dict(zip(MATRIX_NAMES, accuracies))
        perf_medians = [m.performance.median for m in per_matrix.values()]
        power_medians = [m.power.median for m in per_matrix.values()]
        return Fig14Result(
            per_matrix=per_matrix,
            median_of_medians_perf=float(np.median(perf_medians)),
            median_of_medians_power=float(np.median(power_medians)),
        )

    return cached(f"fig14-v12|{scale.name}|{seed}", build)


def check(result: Fig14Result) -> None:
    """Fail loudly when model accuracy regresses past the paper's band.

    The paper reports 4-6% median errors; the gates leave headroom for
    the reduced sample counts of the small/bench scales but still catch
    a broken fit (median-of-medians drifting past ~2x the paper, or any
    matrix losing rank correlation with the simulated space).
    """
    if result.median_of_medians_perf > 0.10:
        raise AssertionError(
            "performance median-of-medians "
            f"{result.median_of_medians_perf:.1%} exceeds 10% "
            "(paper: 4-6%)"
        )
    if result.median_of_medians_power > 0.12:
        raise AssertionError(
            "power median-of-medians "
            f"{result.median_of_medians_power:.1%} exceeds 12% "
            "(paper: 4-6%)"
        )
    for name, acc in result.per_matrix.items():
        if acc.performance.median > 0.20:
            raise AssertionError(
                f"{name}: performance median error "
                f"{acc.performance.median:.1%} exceeds 20%"
            )
        if min(acc.performance_rho, acc.power_rho) < 0.75:
            raise AssertionError(
                f"{name}: prediction correlation collapsed "
                f"(perf rho {acc.performance_rho:.3f}, "
                f"power rho {acc.power_rho:.3f})"
            )


def report(result: Fig14Result) -> str:
    lines = [
        "Figure 14 — SpMV model accuracy per matrix "
        "(paper: 4-6% median across 11 matrices)",
        f"  {'matrix':<10s} {'perf median':>11s} {'perf rho':>9s} "
        f"{'power median':>12s} {'power rho':>10s}",
    ]
    for name, acc in result.per_matrix.items():
        lines.append(
            f"  {name:<10s} {acc.performance.median:>11.1%} "
            f"{acc.performance_rho:>9.3f} {acc.power.median:>12.1%} "
            f"{acc.power_rho:>10.3f}"
        )
    lines.append(
        f"  median of per-matrix medians: performance "
        f"{result.median_of_medians_perf:.1%}, power "
        f"{result.median_of_medians_power:.1%}"
    )
    return "\n".join(lines)
