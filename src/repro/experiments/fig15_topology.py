"""Figure 15 — profiled vs. predicted performance topology (nasasrb).

The 8x8 block-size grid of Mflop/s on a fixed cache, measured and as
predicted by the inferred model.  The paper's claims: the model finds the
same high-performance block sizes (3x3, 3x6, 6x3, 6x6 for nasasrb) and
captures the discontinuities — many block sizes adjacent to 6x6 are worse
than not blocking at all.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.core import pearson_correlation
from repro.experiments.common import Scale, cached, current_scale
from repro.spmv import (
    BLOCK_SIZES,
    SpMVSpace,
    default_cache,
    fit_spmv_model,
    predicted_topology,
    table4_matrix,
)

MATRIX = "nasasrb"


@dataclasses.dataclass
class Fig15Result:
    profiled: np.ndarray            # (8, 8) true Mflop/s
    predicted: np.ndarray           # (8, 8) model Mflop/s
    correlation: float
    true_best: Tuple[int, int]
    predicted_best: Tuple[int, int]
    top_set_overlap: int            # |top-4 true  ∩  top-4 predicted|
    discontinuity_captured: bool    # model agrees some 6x6 neighbors < 1x1


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig15Result:
    scale = scale or current_scale()

    def build():
        rng = np.random.default_rng(seed + 1000)
        space = SpMVSpace(table4_matrix(MATRIX, seed=0))
        cache = default_cache()
        train = space.sample_dataset(scale.spmv_train, rng, "mflops")
        model = fit_spmv_model(train)
        profiled = space.topology(cache)
        predicted = predicted_topology(model, space, cache)
        return profiled, predicted

    profiled, predicted = cached(f"fig15-v12|{scale.name}|{seed}", build)

    def best(grid) -> Tuple[int, int]:
        i, j = np.unravel_index(np.argmax(grid), grid.shape)
        return (BLOCK_SIZES[i], BLOCK_SIZES[j])

    def top_set(grid, k=4):
        flat = np.argsort(grid.ravel())[::-1][:k]
        return {tuple(np.unravel_index(i, grid.shape)) for i in flat}

    base_true = profiled[0, 0]
    base_pred = predicted[0, 0]
    # Cells adjacent to 6x6 (indices 4..6 around index 5) that profile worse
    # than 1x1 — does the model agree on at least one of them?
    agree = False
    for i in (4, 5, 6):
        for j in (4, 5, 6):
            if (i, j) == (5, 5):
                continue
            if profiled[i, j] < base_true and predicted[i, j] < base_pred:
                agree = True
    return Fig15Result(
        profiled=profiled,
        predicted=predicted,
        correlation=pearson_correlation(profiled.ravel(), predicted.ravel()),
        true_best=best(profiled),
        predicted_best=best(predicted),
        top_set_overlap=len(top_set(profiled) & top_set(predicted)),
        discontinuity_captured=agree,
    )


def report(result: Fig15Result) -> str:
    lines = [
        f"Figure 15 — {MATRIX} performance topology (speedup over 1x1 shown)",
        "  (a) profiled:",
        _grid(result.profiled),
        "  (b) predicted:",
        _grid(result.predicted),
        f"  grid correlation: {result.correlation:.3f}",
        f"  best block size: true {result.true_best}, "
        f"predicted {result.predicted_best}",
        f"  top-4 cell overlap: {result.top_set_overlap}/4 "
        "(paper: same block sizes 3x3, 3x6, 6x3, 6x6 found)",
        f"  discontinuities captured (6x6 neighbors < 1x1): "
        f"{result.discontinuity_captured}",
    ]
    return "\n".join(lines)


def _grid(grid: np.ndarray) -> str:
    base = grid[0, 0]
    rows = ["        c=" + "".join(f"{c:>7d}" for c in BLOCK_SIZES)]
    for i, r in enumerate(BLOCK_SIZES):
        cells = "".join(f"{grid[i, j] / base:7.2f}" for j in range(len(BLOCK_SIZES)))
        rows.append(f"    r={r:2d} {cells}")
    return "\n".join(rows)
