"""Figure 16 — coordinated hardware-software optimization.

For every Table 4 matrix, compare four operating points:

* baseline — unblocked code (1x1) on the untuned default cache;
* application tuning — best block size, default cache;
* architecture tuning — 1x1 code, best cache;
* coordinated tuning — block size and cache chosen together.

All selections are model-guided (rank with the inferred model, verify the
top candidates with true simulation).  The paper's headline numbers:
application tuning ~1.6x, architecture tuning ~2.7x, coordinated ~5.0x
performance; application tuning cuts energy from ~17 to ~11 nJ/Flop,
architecture tuning *raises* it to ~25, and coordinated tuning nets a ~10%
energy reduction alongside the 5x speedup.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.common import Scale, cached, current_scale
from repro.spmv import (
    MATRIX_NAMES,
    SpMVSpace,
    TuningResult,
    TuningSearch,
    fit_spmv_model,
    table4_matrix,
    tuning_cache_candidates,
)


@dataclasses.dataclass
class MatrixTuning:
    baseline: TuningResult
    application: TuningResult
    architecture: TuningResult
    coordinated: TuningResult


@dataclasses.dataclass
class Fig16Result:
    per_matrix: Dict[str, MatrixTuning]
    gmean_app_speedup: float
    gmean_arch_speedup: float
    gmean_coord_speedup: float
    mean_baseline_nj: float
    mean_app_nj: float
    mean_arch_nj: float
    mean_coord_nj: float


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig16Result:
    scale = scale or current_scale()

    def build():
        per_matrix: Dict[str, MatrixTuning] = {}
        for index, name in enumerate(MATRIX_NAMES):
            rng = np.random.default_rng(seed + 1100 + index)
            space = SpMVSpace(table4_matrix(name, seed=0))
            train = space.sample_dataset(scale.spmv_train, rng, "mflops")
            model = fit_spmv_model(train)
            search = TuningSearch(space, model, verify_top=5)
            caches = tuning_cache_candidates(scale.tuning_caches, rng)
            per_matrix[name] = MatrixTuning(
                baseline=search.baseline(),
                application=search.application_tuning(),
                architecture=search.architecture_tuning(caches),
                coordinated=search.coordinated_tuning(caches),
            )
        return per_matrix

    per_matrix = cached(f"fig16-v12|{scale.name}|{seed}", build)

    def gmean(values: List[float]) -> float:
        return float(np.exp(np.mean(np.log(values))))

    app = [t.application.speedup for t in per_matrix.values()]
    arch = [t.architecture.speedup for t in per_matrix.values()]
    coord = [t.coordinated.speedup for t in per_matrix.values()]
    return Fig16Result(
        per_matrix=per_matrix,
        gmean_app_speedup=gmean(app),
        gmean_arch_speedup=gmean(arch),
        gmean_coord_speedup=gmean(coord),
        mean_baseline_nj=float(
            np.mean([t.baseline.nj_per_flop for t in per_matrix.values()])
        ),
        mean_app_nj=float(
            np.mean([t.application.nj_per_flop for t in per_matrix.values()])
        ),
        mean_arch_nj=float(
            np.mean([t.architecture.nj_per_flop for t in per_matrix.values()])
        ),
        mean_coord_nj=float(
            np.mean([t.coordinated.nj_per_flop for t in per_matrix.values()])
        ),
    )


def report(result: Fig16Result) -> str:
    lines = [
        "Figure 16 — performance and energy under three tuning strategies",
        f"  {'matrix':<10s} {'app x':>6s} {'arch x':>7s} {'coord x':>8s}   "
        f"{'base nJ/F':>9s} {'app nJ/F':>8s} {'arch nJ/F':>9s} {'coord nJ/F':>10s}",
    ]
    for name, tuning in result.per_matrix.items():
        lines.append(
            f"  {name:<10s} {tuning.application.speedup:>6.2f} "
            f"{tuning.architecture.speedup:>7.2f} "
            f"{tuning.coordinated.speedup:>8.2f}   "
            f"{tuning.baseline.nj_per_flop:>9.1f} "
            f"{tuning.application.nj_per_flop:>8.1f} "
            f"{tuning.architecture.nj_per_flop:>9.1f} "
            f"{tuning.coordinated.nj_per_flop:>10.1f}"
        )
    lines += [
        f"  geometric-mean speedups: application {result.gmean_app_speedup:.2f}x, "
        f"architecture {result.gmean_arch_speedup:.2f}x, "
        f"coordinated {result.gmean_coord_speedup:.2f}x "
        "(paper: 1.6x / 2.7x / 5.0x)",
        f"  mean energy: baseline {result.mean_baseline_nj:.1f} -> application "
        f"{result.mean_app_nj:.1f} (paper 17 -> 11), architecture "
        f"{result.mean_arch_nj:.1f} (paper ~25), coordinated "
        f"{result.mean_coord_nj:.1f} (paper ~0.9x baseline)",
    ]
    return "\n".join(lines)
