"""§4.2 — automated modeling vs. manual specification (and stepwise).

The paper reports that genetic-search models beat a hand-tuned model by
about 10% (relative), and that the hand-tuned model took a research
assistant ~10 months.  This driver fits three specifications on identical
training data and scores them on identical validation data:

* the genetic search's best specification,
* the hand-specified architect's model (:mod:`repro.core.manual`),
* a forward-stepwise-selected model (§2.4's one-term-at-a-time contrast).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core import InferredModel, manual_general_spec, stepwise_search
from repro.experiments.common import (
    Scale,
    build_general_dataset,
    cached,
    current_scale,
    run_genetic_search,
)


@dataclasses.dataclass
class BaselineComparison:
    genetic_error: float
    genetic_rho: float
    manual_error: float
    manual_rho: float
    stepwise_error: float
    stepwise_rho: float
    genetic_vs_manual: float      # relative improvement of GA over manual


def run(scale: Optional[Scale] = None, seed: int = 2012) -> BaselineComparison:
    scale = scale or current_scale()

    def build():
        train, val = build_general_dataset(scale, seed)
        search_result = run_genetic_search(train, scale, seed=7)
        spec = search_result.best_chromosome.to_spec(train.variable_names)
        genetic = InferredModel.fit(spec, train).score(val)

        manual = InferredModel.fit(manual_general_spec(), train).score(val)

        rng = np.random.default_rng(seed + 500)
        step_spec, _ = stepwise_search(train, rng, max_terms=18)
        stepwise = InferredModel.fit(step_spec, train).score(val)

        return BaselineComparison(
            genetic_error=genetic["median_error"],
            genetic_rho=genetic["correlation"],
            manual_error=manual["median_error"],
            manual_rho=manual["correlation"],
            stepwise_error=stepwise["median_error"],
            stepwise_rho=stepwise["correlation"],
            genetic_vs_manual=1.0 - genetic["median_error"] / max(manual["median_error"], 1e-12),
        )

    return cached(f"sec42-v12|{scale.name}|{seed}", build)


def report(result: BaselineComparison) -> str:
    return "\n".join(
        [
            "Section 4.2 — genetic search vs. manual vs. stepwise",
            f"  genetic:  median error {result.genetic_error:6.1%}  rho {result.genetic_rho:.3f}",
            f"  manual:   median error {result.manual_error:6.1%}  rho {result.manual_rho:.3f}",
            f"  stepwise: median error {result.stepwise_error:6.1%}  rho {result.stepwise_rho:.3f}",
            f"  genetic improves on manual by {result.genetic_vs_manual:.0%} "
            "(paper: genetic-search errors ~10% lower than hand-tuning)",
        ]
    )
