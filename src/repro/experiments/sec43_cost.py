"""§4.3 — reduced profiling costs from shared software behavior.

Prior approaches train one architectural model *per application*, needing
400-800 architectural profiles each.  The integrated model shares profiles
across applications: if s1 and s2 behave similarly, each benefits from the
other's architectural samples.  The paper reports 2-4x fewer profiles per
application for equal accuracy, and 20-40x when extrapolating a new
application from existing profiles.

The driver sweeps profiles-per-application and compares, at each budget:

* the integrated HW-SW model trained on all applications' samples, vs.
* per-application hardware-only models trained on that application's
  samples alone,

then locates the budget at which each approach reaches a target accuracy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.core import (
    InferredModel,
    ModelSpec,
    ProfileDataset,
    TransformKind,
    median_error,
)
from repro.experiments.common import (
    GeneralStudy,
    Scale,
    build_general_dataset,
    cached,
    current_scale,
    empty_general_dataset,
    run_genetic_search,
)
from repro.uarch import HARDWARE_VARIABLE_NAMES, sample_configs

#: Budgets swept (architectural profiles per application).
BUDGETS = (10, 20, 40, 80, 160)

TARGET_ERROR = 0.12


def _hardware_only_spec(all_names: Tuple[str, ...]) -> ModelSpec:
    """A per-application model: hardware parameters only (prior work)."""
    transforms = {name: TransformKind.EXCLUDED for name in all_names}
    for name in HARDWARE_VARIABLE_NAMES:
        transforms[name] = TransformKind.QUADRATIC
    transforms["y2"] = TransformKind.SPLINE
    transforms["y5"] = TransformKind.SPLINE
    transforms["y7"] = TransformKind.SPLINE
    interactions = frozenset({("y1", "y2"), ("y5", "y7"), ("y4", "y8")})
    return ModelSpec(transforms=transforms, interactions=interactions)


@dataclasses.dataclass
class CostSweepResult:
    budgets: Tuple[int, ...]
    integrated_errors: List[float]        # median error at each budget
    per_app_errors: List[float]
    integrated_budget_at_target: Optional[int]
    per_app_budget_at_target: Optional[int]
    cost_reduction: Optional[float]


def run(scale: Optional[Scale] = None, seed: int = 2012) -> CostSweepResult:
    scale = scale or current_scale()

    def build():
        train_full, val = build_general_dataset(scale, seed)
        search_result = run_genetic_search(train_full, scale, seed=7)
        spec = search_result.best_chromosome.to_spec(train_full.variable_names)

        study = GeneralStudy(scale, seed)
        rng = np.random.default_rng(seed + 600)
        apps = study.applications()
        val_by_app = val.by_application()

        integrated_errors: List[float] = []
        per_app_errors: List[float] = []
        budgets = tuple(b for b in BUDGETS if b <= scale.configs_per_app * 2)
        hw_spec = _hardware_only_spec(train_full.variable_names)

        for budget in budgets:
            # Integrated: budget profiles per app, one shared model.
            train = empty_general_dataset()
            for app in apps:
                configs = sample_configs(budget, rng)
                train.extend(study.sample_records(app, configs, rng))
            model = InferredModel.fit(spec, train)
            integrated_errors.append(
                median_error(model.predict(val), val.targets())
            )

            # Per-application hardware-only models.
            errors: List[float] = []
            for app in apps:
                configs = sample_configs(budget, rng)
                own = ProfileDataset(
                    train.x_names,
                    train.y_names,
                    study.sample_records(app, configs, rng),
                )
                app_val = val_by_app.get(app)
                if app_val is None or len(app_val) == 0:
                    continue
                try:
                    hw_model = InferredModel.fit(hw_spec, own)
                    errors.append(
                        median_error(hw_model.predict(app_val), app_val.targets())
                    )
                except (ValueError, np.linalg.LinAlgError):
                    errors.append(1.0)
            per_app_errors.append(float(np.mean(errors)))

        integrated_at = _budget_at_target(budgets, integrated_errors)
        per_app_at = _budget_at_target(budgets, per_app_errors)
        reduction = (
            per_app_at / integrated_at
            if integrated_at and per_app_at
            else None
        )
        return CostSweepResult(
            budgets=budgets,
            integrated_errors=integrated_errors,
            per_app_errors=per_app_errors,
            integrated_budget_at_target=integrated_at,
            per_app_budget_at_target=per_app_at,
            cost_reduction=reduction,
        )

    return cached(f"sec43-v12|{scale.name}|{seed}", build)


def _budget_at_target(budgets, errors) -> Optional[int]:
    for budget, error in zip(budgets, errors):
        if error <= TARGET_ERROR:
            return budget
    return None


def report(result: CostSweepResult) -> str:
    lines = [
        "Section 4.3 — profiles/application needed: integrated vs. per-app models",
        f"  {'profiles/app':>12s}  {'integrated':>10s}  {'per-app HW-only':>15s}",
    ]
    for budget, ie, pe in zip(
        result.budgets, result.integrated_errors, result.per_app_errors
    ):
        lines.append(f"  {budget:12d}  {ie:10.1%}  {pe:15.1%}")
    if result.cost_reduction:
        lines.append(
            f"  budget to reach {TARGET_ERROR:.0%} median error: integrated "
            f"{result.integrated_budget_at_target}, per-app "
            f"{result.per_app_budget_at_target} -> {result.cost_reduction:.1f}x "
            "fewer profiles (paper: 2-4x)"
        )
    else:
        lines.append(
            f"  (one approach never reached {TARGET_ERROR:.0%} at swept budgets: "
            f"integrated@target={result.integrated_budget_at_target}, "
            f"per-app@target={result.per_app_budget_at_target})"
        )
    return "\n".join(lines)
