"""Ablation studies for the design choices DESIGN.md calls out.

Four ablations, each isolating one ingredient of the methodology:

1. **Sharding vs. monolithic profiles** (§2.1) — replace every shard's
   Table 1 vector with its application's *average* vector (a monolithic
   application profile) at both train and prediction time.  The paper
   argues monolithic profiles "obscure intra-application diversity" and
   weaken sharing.
2. **Variance stabilization** (§3.1, Figure 3) — disable the automatic
   power-ladder transform, feeding raw long-tailed characteristics to the
   regression.
3. **Response scale** — fit the same specification on the identity scale
   instead of the log scale (the response-side analogue of predictor
   stabilization).
4. **Synthetic-coverage augmentation** (§4.5 future work) — when
   extrapolating the outlier application bwaves with *no* bwaves profiles,
   augment training with uniformly sampled synthetic benchmarks
   (:func:`repro.workloads.random_behavior_spec`) so the software space is
   covered, and measure how far the outlier's error falls.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core import (
    InferredModel,
    ProfileDataset,
    ProfileRecord,
    median_error,
)
from repro.experiments.common import (
    GeneralStudy,
    Scale,
    build_general_dataset,
    cached,
    current_scale,
    empty_general_dataset,
    run_genetic_search,
)
from repro.uarch import sample_configs
from repro.workloads import random_behavior_spec

#: Synthetic benchmarks added in the coverage ablation.
N_SYNTHETIC = 10


@dataclasses.dataclass
class AblationResult:
    baseline_error: float               # full methodology, interpolation
    monolithic_error: float             # ablation 1
    unstabilized_error: float           # ablation 2
    identity_response_error: float      # ablation 3
    outlier_error_plain: float          # bwaves extrapolation, no coverage
    outlier_error_augmented: float      # with synthetic coverage


def run(scale: Optional[Scale] = None, seed: int = 2012) -> AblationResult:
    scale = scale or current_scale()

    def build():
        train, val = build_general_dataset(scale, seed)
        search_result = run_genetic_search(train, scale, seed=7)
        spec = search_result.best_chromosome.to_spec(train.variable_names)

        baseline = InferredModel.fit(spec, train).score(val)["median_error"]

        # --- ablation 1: monolithic application profiles -------------------
        mono_train = _monolithic(train)
        mono_val = _monolithic(val, reference=train)
        monolithic = InferredModel.fit(spec, mono_train).score(mono_val)[
            "median_error"
        ]

        # --- ablation 2: no variance stabilization --------------------------
        unstabilized = InferredModel.fit(
            spec, train, auto_stabilize=False
        ).score(val)["median_error"]

        # --- ablation 3: identity response scale -----------------------------
        identity = InferredModel.fit(spec, train, response="identity").score(
            val
        )["median_error"]

        # --- ablation 4: synthetic coverage for the outlier ------------------
        plain, augmented = _outlier_coverage(spec, scale, seed)
        return AblationResult(
            baseline_error=baseline,
            monolithic_error=monolithic,
            unstabilized_error=unstabilized,
            identity_response_error=identity,
            outlier_error_plain=plain,
            outlier_error_augmented=augmented,
        )

    return cached(f"ablations-v12|{scale.name}|{seed}", build)


def _monolithic(
    dataset: ProfileDataset, reference: Optional[ProfileDataset] = None
) -> ProfileDataset:
    """Replace each record's x with its application's mean x.

    ``reference`` supplies the application means (training-time profiles);
    applications absent from the reference fall back to their own mean.
    """
    source = reference or dataset
    means: Dict[str, np.ndarray] = {}
    for app, group in source.by_application().items():
        means[app] = np.mean([r.x for r in group.records], axis=0)
    for app, group in dataset.by_application().items():
        means.setdefault(app, np.mean([r.x for r in group.records], axis=0))

    out = ProfileDataset(dataset.x_names, dataset.y_names)
    for record in dataset.records:
        out.add(
            ProfileRecord(
                record.application,
                means[record.application],
                record.y,
                record.z,
                tag=record.tag,
            )
        )
    return out


def _outlier_coverage(spec, scale: Scale, seed: int):
    """bwaves leave-one-out error, with and without synthetic coverage."""
    study = GeneralStudy(scale, seed)
    rng = np.random.default_rng(seed + 1300)
    apps = [a for a in study.applications() if a != "bwaves"]

    train = empty_general_dataset()
    for app in apps:
        configs = sample_configs(scale.configs_per_app, rng)
        train.extend(study.sample_records(app, configs, rng))

    per_synthetic = max(4, scale.configs_per_app // 4)
    synthetic = empty_general_dataset()
    for k in range(N_SYNTHETIC):
        bench = random_behavior_spec(
            np.random.default_rng(seed + 1400 + k), name=f"synthetic{k:02d}"
        )
        study._shards.pop(bench.name, None)
        study.shards(bench.name, bench)
        configs = sample_configs(per_synthetic, rng)
        synthetic.extend(study.sample_records(bench.name, configs, rng))

    n_val = max(10, scale.validation_pairs // 2)
    val_records = study.sample_records("bwaves", sample_configs(n_val, rng), rng)
    probe = ProfileDataset(train.x_names, train.y_names, val_records)

    plain_model = InferredModel.fit(spec, train)
    plain = median_error(plain_model.predict(probe), probe.targets())

    # "If synthetic benchmarks were used, they would need to be coordinated
    # with real application profiles" (§4.5): simply refitting the old
    # specification on wildly more diverse data is not coordination — the
    # heuristic re-specifies the model for the augmented space.
    augmented_train = ProfileDataset.merge([train, synthetic])
    augmented_search = run_genetic_search(
        augmented_train,
        scale,
        seed=seed + 9,
        generations=max(2, scale.generations // 2),
        tag="ablation-augmented",
    )
    augmented_spec = augmented_search.best_chromosome.to_spec(
        augmented_train.variable_names
    )
    augmented_model = InferredModel.fit(augmented_spec, augmented_train)
    augmented = median_error(augmented_model.predict(probe), probe.targets())
    return float(plain), float(augmented)


def report(result: AblationResult) -> str:
    def row(label, value, baseline):
        delta = value / baseline if baseline else float("nan")
        return f"  {label:<44s} {value:7.1%}   ({delta:4.1f}x baseline)"

    base = result.baseline_error
    lines = [
        "Ablations — what each design ingredient buys",
        row("full methodology (interpolation)", base, base),
        row("1. monolithic application profiles (§2.1)", result.monolithic_error, base),
        row("2. no variance stabilization (§3.1)", result.unstabilized_error, base),
        row("3. identity response scale", result.identity_response_error, base),
        "",
        "  outlier extrapolation (bwaves, no bwaves profiles):",
        f"  {'real applications only':<44s} {result.outlier_error_plain:7.1%}",
        f"  {'+ 10 synthetic coverage benchmarks (§4.5)':<44s} "
        f"{result.outlier_error_augmented:7.1%}",
    ]
    return "\n".join(lines)
