"""Streaming re-specification demo — the dynamic-sparsity SpMV scenario.

Two runs over the same bootstrapped model:

* **drifting** — a :class:`repro.stream.DriftingSpMVSource` applies a
  RigL-style drop/regrow schedule each step, eroding the dense block
  substructure the incumbent specification exploits.  The drift detector
  must trip and the warm-started GA re-specification must recover the
  windowed error.
* **stationary** — the identical pipeline over an unchanging matrix.
  The detector must NOT trip; every batch settles with a cheap
  coefficient refresh.

Batches are chosen half by committee disagreement (active sampling) and
half at random, and the report compares the disagreement mass of the
active picks against the random ones.

Run with ``python -m repro.experiments stream``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.dataset import ProfileDataset
from repro.core.genetic import GeneticSearch
from repro.experiments.common import Scale
from repro.spmv.cache import SPMV_HARDWARE_NAMES
from repro.spmv.matrices import fem_matrix, scattered_matrix
from repro.spmv.space import SPMV_SOFTWARE_NAMES
from repro.stream import (
    DriftConfig,
    DriftingSpMVSource,
    SpMVStreamSource,
    StreamingRespecifier,
)

#: Hysteresis policy tuned on this workload: drifting batches score
#: 2-3x baseline within two steps, stationary noise stays under ~1.7x
#: (tests/test_stream.py asserts the separation).
STREAM_DRIFT_CONFIG = DriftConfig(
    window=48, min_fill=16, trip_ratio=2.0, clear_ratio=1.3, patience=2
)

#: Records in the baseline-calibration batch (see ``set_baseline``).
CALIBRATION_RECORDS = 32


def _scenario_sizes(scale: Scale) -> Dict[str, int]:
    return {
        "small": dict(steps=6, batch=16, boot=40, pop=16, gens=3),
        "bench": dict(steps=10, batch=24, boot=60, pop=20, gens=5),
        "full": dict(steps=16, batch=32, boot=80, pop=30, gens=8),
    }[scale.name]


def _bootstrap_dataset(sizes: Dict[str, int], rng: np.random.Generator):
    """Multi-application seed data: two auxiliary matrices + the stream app.

    The GA's leave-one-application-out fitness needs several applications;
    the auxiliaries play the paper's "benchmark suite" role (§3.2).
    """
    dataset = ProfileDataset(SPMV_SOFTWARE_NAMES, SPMV_HARDWARE_NAMES)
    for matrix in (
        fem_matrix(30, 3, 4, 8, 11, "aux-fem"),
        scattered_matrix(80, 260, 12, "aux-scattered"),
    ):
        source = SpMVStreamSource(matrix, seed=3, n_caches=8)
        dataset.extend(source.sample(sizes["boot"], rng).records)
    return dataset


def _stream_matrix():
    return fem_matrix(40, 3, 4, 8, 13, "streamed")


def _run_scenario(
    source, sizes: Dict[str, int], base: ProfileDataset, seed: int
) -> Dict[str, object]:
    dataset = ProfileDataset(base.x_names, base.y_names)
    dataset.extend(base.records)
    search = GeneticSearch(population_size=sizes["pop"], seed=2)
    respec = StreamingRespecifier(dataset, search, STREAM_DRIFT_CONFIG)
    respec.bootstrap(generations=sizes["gens"])

    # Calibrate the drift baseline on an actual prequential batch: GA
    # fitness is leave-one-app-out error, pessimistic relative to the
    # deployed full-data fit, so it would land the trip threshold in the
    # wrong units.
    calibration = source.sample(CALIBRATION_RECORDS, np.random.default_rng(99))
    errors = respec._prequential_errors(calibration)
    respec.set_baseline(float(np.median(errors)))

    rng = np.random.default_rng(seed)
    half = sizes["batch"] // 2
    scores: List[float] = []
    errors_per_step: List[float] = []
    actions: List[str] = []
    active_gain = []
    for _ in range(sizes["steps"]):
        source.step()
        rows = source.rows()
        # Half the batch by committee disagreement, half at random — the
        # active picks chase the least-constrained corners of the space
        # while the random half keeps coverage honest.
        active = respec.select_next(rows, half)
        pool = np.setdiff1d(np.arange(len(rows)), active)
        random_pick = rng.choice(pool, size=sizes["batch"] - half, replace=False)
        if respec.sampler is not None:
            all_scores = respec.sampler.scores(rows)
            mean_random = float(np.mean(all_scores))
            if mean_random > 0:
                active_gain.append(float(np.mean(all_scores[active])) / mean_random)
        batch = source.batch(np.concatenate([active, random_pick]))
        outcome = respec.ingest(batch)
        scores.append(outcome.drift_score)
        errors_per_step.append(outcome.batch_error)
        actions.append(outcome.action)
    return {
        "steps": sizes["steps"],
        "trips": respec.respecs,
        "refreshes": respec.refreshes,
        "actions": actions,
        "drift_scores": scores,
        "batch_errors": errors_per_step,
        "max_score": max(scores),
        "active_disagreement_gain": (
            float(np.mean(active_gain)) if active_gain else 1.0
        ),
        "stats": respec.stats_dict(),
    }


def run(scale: Scale) -> Dict[str, object]:
    sizes = _scenario_sizes(scale)
    base = _bootstrap_dataset(sizes, np.random.default_rng(7))
    drifting = _run_scenario(
        DriftingSpMVSource(_stream_matrix(), seed=5, n_caches=8, drop_fraction=0.35),
        sizes,
        base,
        seed=101,
    )
    stationary = _run_scenario(
        SpMVStreamSource(_stream_matrix(), seed=5, n_caches=8),
        sizes,
        base,
        seed=101,
    )
    return {"scale": scale.name, "drifting": drifting, "stationary": stationary}


def report(result: Dict[str, object]) -> str:
    lines = ["Streaming re-specification on the drifting-sparsity SpMV stream", ""]
    for name in ("drifting", "stationary"):
        r = result[name]
        lines.append(
            f"  {name:<11s} steps={r['steps']} respecs={r['trips']} "
            f"refreshes={r['refreshes']} max_drift_score={r['max_score']:.2f}"
        )
        lines.append(
            "    scores: "
            + " ".join(f"{s:.2f}" for s in r["drift_scores"])
        )
        lines.append(
            "    errors: "
            + " ".join(f"{e:.3f}" for e in r["batch_errors"])
        )
    drift, stat = result["drifting"], result["stationary"]
    verdict = (
        "OK: drift tripped re-specification, stationary stayed on refreshes"
        if drift["trips"] >= 1 and stat["trips"] == 0
        else "WARNING: drift gate did not separate the scenarios"
    )
    lines += [
        "",
        f"  active sampling: selected batches carry "
        f"{drift['active_disagreement_gain']:.2f}x the mean committee "
        "disagreement of random candidates",
        f"  {verdict}",
    ]
    return "\n".join(lines)


def check(result: Dict[str, object]) -> None:
    """Fail loudly when the drift gate did not separate the scenarios.

    The demo's whole claim is the separation; a regressed detector must
    not exit 0 (the runner turns this into a non-zero exit).
    """
    drift, stat = result["drifting"], result["stationary"]
    if drift["trips"] < 1:
        raise AssertionError(
            "drifting stream never tripped a re-specification "
            f"(max drift score {drift['max_score']:.2f})"
        )
    if stat["trips"] != 0:
        raise AssertionError(
            f"stationary control tripped {stat['trips']} re-specification(s) "
            f"(max drift score {stat['max_score']:.2f})"
        )
