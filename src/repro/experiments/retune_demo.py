"""Online coordinated re-tuning demo — acting on the re-specified model.

The other half of the dynamic-spaces story (DESIGN.md §12): the stream
demo shows drift *detection* and model re-specification; this demo shows
the system *acting* on the refreshed model.  Two runs over the same
bootstrapped pipeline, each deploying an initial coordinated
(r, c, cache) tuning chosen by exhaustive true search on the pristine
matrix:

* **drifting** — the RigL-style drop/regrow schedule erodes the dense
  block substructure the initial blocking exploits.  Drift trips, the GA
  re-specifies, and the post-respec :class:`repro.stream.OnlineRetuner`
  re-runs the model-guided coordinated search: the deployed tuning must
  *migrate* (typically toward smaller blocks as the fill ratio of the
  old blocking explodes), and only via a true-measurement-verified
  candidate whose gain amortizes the reblocking + cache-reconfiguration
  switch-over cost.
* **stationary** — the identical pipeline over an unchanging matrix,
  re-tuning every K refreshes.  The exhaustively-chosen initial tuning
  is already optimal, so every periodic re-tune must *hold* (hysteresis
  and cost accounting reject near-tie candidates).

Run with ``python -m repro.experiments retune``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.dataset import ProfileDataset
from repro.core.genetic import GeneticSearch
from repro.experiments.common import Scale
from repro.experiments.stream_demo import (
    CALIBRATION_RECORDS,
    STREAM_DRIFT_CONFIG,
    _bootstrap_dataset,
    _stream_matrix,
)
from repro.stream import (
    DriftingSpMVSource,
    OnlineRetuner,
    SpMVStreamSource,
    StreamingRespecifier,
)


def _scenario_sizes(scale: Scale) -> Dict[str, int]:
    return {
        "small": dict(steps=6, batch=16, boot=40, pop=16, gens=3, retune_every=3),
        "bench": dict(steps=10, batch=24, boot=60, pop=20, gens=5, retune_every=4),
        "full": dict(steps=16, batch=32, boot=80, pop=30, gens=8, retune_every=5),
    }[scale.name]


def _run_scenario(
    source, sizes: Dict[str, int], base: ProfileDataset, seed: int
) -> Dict[str, object]:
    dataset = ProfileDataset(base.x_names, base.y_names)
    dataset.extend(base.records)
    search = GeneticSearch(population_size=sizes["pop"], seed=2)
    respec = StreamingRespecifier(dataset, search, STREAM_DRIFT_CONFIG)
    respec.bootstrap(generations=sizes["gens"])
    calibration = source.sample(CALIBRATION_RECORDS, np.random.default_rng(99))
    respec.set_baseline(
        float(np.median(respec._prequential_errors(calibration)))
    )

    # The deployed tuning: exhaustive true search over the pristine
    # matrix's candidate pool (offline bootstrap tuning), then online
    # maintenance — after every re-specification and every K refreshes.
    retuner = OnlineRetuner(
        lambda: source.space,
        source.caches,
        block_sizes=source.block_sizes,
        retune_every_refreshes=sizes["retune_every"],
    )
    initial = retuner.bootstrap()
    retuner.attach(respec)

    rng = np.random.default_rng(seed)
    half = sizes["batch"] // 2
    for _ in range(sizes["steps"]):
        source.step()
        rows = source.rows()
        active = respec.select_next(rows, half)
        pool = np.setdiff1d(np.arange(len(rows)), active)
        random_pick = rng.choice(pool, size=sizes["batch"] - half, replace=False)
        batch = source.batch(np.concatenate([active, random_pick]))
        respec.ingest(batch)

    return {
        "steps": sizes["steps"],
        "trips": respec.respecs,
        "refreshes": respec.refreshes,
        "initial": initial.key,
        "initial_mflops": initial.mflops,
        "final": retuner.current.key,
        "final_mflops": retuner.current.mflops,
        "retunes": retuner.retunes,
        "switches": retuner.switches,
        "holds": retuner.holds,
        "failures": retuner.failures,
        "decisions": [d.to_dict() for d in retuner.decisions],
        "stats": respec.stats_dict(),
    }


def run(scale: Scale) -> Dict[str, object]:
    sizes = _scenario_sizes(scale)
    base = _bootstrap_dataset(
        dict(boot=sizes["boot"]), np.random.default_rng(7)
    )
    drifting = _run_scenario(
        DriftingSpMVSource(_stream_matrix(), seed=5, n_caches=8, drop_fraction=0.35),
        sizes,
        base,
        seed=101,
    )
    stationary = _run_scenario(
        SpMVStreamSource(_stream_matrix(), seed=5, n_caches=8),
        sizes,
        base,
        seed=101,
    )
    return {"scale": scale.name, "drifting": drifting, "stationary": stationary}


def report(result: Dict[str, object]) -> str:
    lines = [
        "Drift-triggered coordinated HW-SW re-tuning "
        "(detect -> re-specify -> re-tune -> verified switch)",
        "",
    ]
    for name in ("drifting", "stationary"):
        r = result[name]
        lines.append(
            f"  {name:<11s} respecs={r['trips']} retunes={r['retunes']} "
            f"switches={r['switches']} holds={r['holds']} "
            f"failures={r['failures']}"
        )
        lines.append(
            f"    deployed: {r['initial']} ({r['initial_mflops']:.1f} Mflop/s)"
            f" -> {r['final']} ({r['final_mflops']:.1f} Mflop/s)"
        )
        for d in r["decisions"]:
            lines.append(
                f"    [{d['trigger']:<7s}] {d['action']:<6s} "
                f"{d['incumbent'] or '-'} -> {d['candidate'] or '-'}  "
                f"net={d['net_gain_seconds']:+.2e}s  {d['reason']}"
            )
    drift, stat = result["drifting"], result["stationary"]
    migrated = drift["switches"] >= 1 and drift["final"] != drift["initial"]
    held = stat["switches"] == 0 and stat["final"] == stat["initial"]
    verdict = (
        "OK: drifting tuning migrated on re-specification, stationary held"
        if migrated and held and drift["trips"] >= 1
        else "WARNING: re-tuning did not separate the scenarios"
    )
    lines += ["", f"  {verdict}"]
    return "\n".join(lines)


def check(result: Dict[str, object]) -> None:
    """Fail loudly when the demo does not demonstrate the claim."""
    drift, stat = result["drifting"], result["stationary"]
    if drift["trips"] < 1:
        raise AssertionError("drifting stream never tripped a re-specification")
    if drift["switches"] < 1 or drift["final"] == drift["initial"]:
        raise AssertionError(
            "drifting stream's coordinated tuning did not migrate "
            f"({drift['initial']} -> {drift['final']})"
        )
    if not any(
        d["action"] == "switch" and d["trigger"] == "respec"
        for d in drift["decisions"]
    ):
        raise AssertionError("no switch happened at a re-specification")
    for name in ("drifting", "stationary"):
        for d in result[name]["decisions"]:
            if d["action"] != "switch":
                continue
            if not d["verified"]:
                raise AssertionError(f"unverified switch adopted: {d}")
            if d["net_gain_seconds"] <= 0.0:
                raise AssertionError(
                    f"switch adopted below amortized switch-over cost: {d}"
                )
    if stat["switches"] != 0 or stat["final"] != stat["initial"]:
        raise AssertionError(
            "stationary control did not hold its initial tuning "
            f"({stat['initial']} -> {stat['final']})"
        )
    if stat["retunes"] < 1:
        raise AssertionError(
            "stationary control never re-tuned (hold verdicts untested)"
        )
