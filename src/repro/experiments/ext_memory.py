"""Extension — memory-behavior characteristics for memory-bound software.

The paper's §4.1/§7 future work, implemented and measured: augment the
Table 1 vector with four portable memory-behavior measures (x14..x17, see
:mod:`repro.profiling.extended`) and re-run the leave-one-application-out
extrapolation that Figure 10 showed to be hardest for the memory-bound
applications (omnetpp and gemsFDTD in this substrate).

Protocol: identical genetic-search budget on the 13-variable and the
17-variable spaces; identical training/validation samples; compare overall
and memory-bound-application median errors.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core import (
    InferredModel,
    ProfileDataset,
    ProfileRecord,
    absolute_percentage_errors,
)
from repro.experiments.common import (
    GeneralStudy,
    Scale,
    cached,
    current_scale,
    run_genetic_search,
)
from repro.profiling.extended import EXTENDED_VARIABLE_NAMES, profile_shard_extended
from repro.uarch import HARDWARE_VARIABLE_NAMES, sample_configs

MEMORY_BOUND = ("omnetpp", "gemsFDTD")


@dataclasses.dataclass
class ExtMemoryResult:
    base_overall: float                   # median error, 13 characteristics
    extended_overall: float               # median error, 17 characteristics
    base_memory_bound: Dict[str, float]   # per memory-bound app medians
    extended_memory_bound: Dict[str, float]


def run(scale: Optional[Scale] = None, seed: int = 2012) -> ExtMemoryResult:
    scale = scale or current_scale()

    def build():
        study = GeneralStudy(scale, seed)
        apps = study.applications()

        # Extended profiles once per shard; the 13-var view is a prefix.
        extended_x = {
            app: [profile_shard_extended(s) for s in study.shards(app)]
            for app in apps
        }

        def datasets(names, width):
            """(train-by-heldout, val-by-heldout) record lists."""
            rng_local = np.random.default_rng(seed + 1600)
            train: Dict[str, list] = {app: [] for app in apps}
            val: Dict[str, list] = {}
            for held_out in apps:
                records = []
                for app in apps:
                    if app == held_out:
                        continue
                    for config in sample_configs(scale.configs_per_app, rng_local):
                        i = int(rng_local.integers(0, len(extended_x[app])))
                        z = study.simulator.cpi(study.shards(app)[i], config)
                        records.append(
                            ProfileRecord(
                                app, extended_x[app][i][:width],
                                config.as_vector(), z,
                            )
                        )
                train[held_out] = records
                probes = []
                n_val = max(6, scale.validation_pairs // len(apps))
                for config in sample_configs(n_val, rng_local):
                    i = int(rng_local.integers(0, len(extended_x[held_out])))
                    z = study.simulator.cpi(study.shards(held_out)[i], config)
                    probes.append(
                        ProfileRecord(
                            held_out, extended_x[held_out][i][:width],
                            config.as_vector(), z,
                        )
                    )
                val[held_out] = probes
            return train, val

        def evaluate(names, width, tag):
            train, val = datasets(names, width)
            # One shared specification, searched on an all-application pool
            # (the steady-state model of §3.2); each leave-one-out round
            # then refits its coefficients without the held-out app.
            rng_pool = np.random.default_rng(seed + 1700)
            pooled = ProfileDataset(names, HARDWARE_VARIABLE_NAMES)
            for app in apps:
                for config in sample_configs(scale.configs_per_app, rng_pool):
                    i = int(rng_pool.integers(0, len(extended_x[app])))
                    z = study.simulator.cpi(study.shards(app)[i], config)
                    pooled.add(
                        ProfileRecord(
                            app, extended_x[app][i][:width],
                            config.as_vector(), z,
                        )
                    )
            search = run_genetic_search(
                pooled, scale, seed=seed + 17, tag=f"ext-memory-{tag}"
            )
            spec = search.best_chromosome.to_spec(pooled.variable_names)

            per_app: Dict[str, float] = {}
            all_errors = []
            for held_out in apps:
                fit_ds = ProfileDataset(
                    names, HARDWARE_VARIABLE_NAMES, train[held_out]
                )
                probe = ProfileDataset(
                    names, HARDWARE_VARIABLE_NAMES, val[held_out]
                )
                model = InferredModel.fit(spec, fit_ds)
                errors = absolute_percentage_errors(
                    model.predict(probe), probe.targets()
                )
                per_app[held_out] = float(np.median(errors))
                all_errors.append(errors)
            overall = float(np.median(np.concatenate(all_errors)))
            return overall, per_app

        base_names = EXTENDED_VARIABLE_NAMES[:13]
        base_overall, base_per_app = evaluate(base_names, 13, "base")
        ext_overall, ext_per_app = evaluate(EXTENDED_VARIABLE_NAMES, 17, "ext")

        return ExtMemoryResult(
            base_overall=base_overall,
            extended_overall=ext_overall,
            base_memory_bound={a: base_per_app[a] for a in MEMORY_BOUND},
            extended_memory_bound={a: ext_per_app[a] for a in MEMORY_BOUND},
        )

    return cached(f"extmem-v12|{scale.name}|{seed}", build)


def report(result: ExtMemoryResult) -> str:
    lines = [
        "Extension — memory-behavior characteristics (x14..x17, §4.1/§7)",
        "  leave-one-application-out extrapolation, identical GA budget:",
        f"  {'':<24s} {'13 chars':>9s} {'17 chars':>9s}",
        f"  {'overall median':<24s} {result.base_overall:>9.1%} "
        f"{result.extended_overall:>9.1%}",
    ]
    for app in MEMORY_BOUND:
        lines.append(
            f"  {app + ' (memory-bound)':<24s} "
            f"{result.base_memory_bound[app]:>9.1%} "
            f"{result.extended_memory_bound[app]:>9.1%}"
        )
    return "\n".join(lines)
