"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig05 [--scale small|bench|full]
    python -m repro.experiments all  [--scale small|bench|full]
    python -m repro.experiments serve [--port 7654] [--registry DIR] [--shards N]

Each experiment prints the rows/series of the corresponding paper table or
figure and writes the same report to ``reports/<id>.txt`` (an ignored
output directory; override with ``--report-dir`` or ``$REPRO_REPORT_DIR``).
Results are cached under ``.cache/``, so re-running is cheap.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time
from pathlib import Path

from repro import obs
from repro.experiments.common import SCALES, current_scale

#: Experiment id -> (module name, description).
EXPERIMENTS = {
    "fig03": ("fig03_variance", "Figure 3 — variance stabilization"),
    "fig04": ("fig04_interactions", "Figure 4 — interaction frequencies"),
    "fig05": ("fig05_convergence", "Figure 5 — genetic convergence"),
    "table3": ("table3_transforms", "Table 3 — selected transformations"),
    "sec42": ("sec42_baselines", "Section 4.2 — genetic vs manual/stepwise"),
    "fig07-08": ("fig07_08_accuracy", "Figures 7-8 — accuracy in all scenarios"),
    "fig09": ("fig09_outliers", "Figure 9 — the bwaves outlier"),
    "fig10": ("fig10_shards", "Figure 10 — shard-level extrapolation"),
    "sec43": ("sec43_cost", "Section 4.3 — profiling cost reduction"),
    "fig12-13": ("fig12_13_trends", "Figures 12-13 — SpMV trends"),
    "fig14": ("fig14_spmv", "Figure 14 — SpMV model accuracy"),
    "fig15": ("fig15_topology", "Figure 15 — performance topology"),
    "fig16": ("fig16_tuning", "Figure 16 — coordinated tuning"),
    "stream": ("stream_demo", "Streaming re-spec — drift detection on a drifting-sparsity SpMV stream"),
    "retune": ("retune_demo", "Online re-tuning — drift-triggered coordinated (r, c, cache) migration"),
    "ablations": ("ablations", "Ablations — sharding, stabilization, response scale, synthetic coverage"),
    "ext-memory": ("ext_memory", "Extension — memory-behavior characteristics x14..x17"),
    "val-timing": ("val_timing", "Validation — interval model vs cycle-level simulation"),
    "transfer": ("transfer_demo", "Transfer — cross-backend warm-started search + shared representation"),
}


class ExperimentCheckError(AssertionError):
    """An experiment ran but failed its own acceptance check."""


def run_experiment(key: str, scale, svg_dir=None) -> str:
    """Run one experiment under phase spans (run / report / render).

    The spans land in the process metrics registry as per-figure phase
    timings (``span.experiment.<key>.<phase>.*``), which ``main`` exports
    as JSONL next to the text reports.

    Modules may define a ``check(result)`` hook raising ``AssertionError``
    when the run fails its own acceptance criterion (e.g. the stream demo's
    drift gate never tripping); the failure is re-raised as
    :class:`ExperimentCheckError` so ``main`` can exit non-zero instead of
    letting a regressed demo pass silently.
    """
    module_name, _ = EXPERIMENTS[key]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    with obs.span(f"experiment.{key}"):
        with obs.span(f"experiment.{key}.run"):
            result = module.run(scale)
        with obs.span(f"experiment.{key}.report"):
            report = module.report(result)
        checker = getattr(module, "check", None)
        if checker is not None:
            try:
                checker(result)
            except AssertionError as exc:
                error = ExperimentCheckError(f"{key}: {exc}")
                error.report = report  # let main print the evidence
                raise error from exc
        if svg_dir is not None:
            from repro.viz import render

            with obs.span(f"experiment.{key}.render"):
                written = render(key, result, svg_dir)
            if written:
                report += "\n  [svg] " + ", ".join(str(p) for p in written)
    return report


def _backend_names():
    """Registered timing-backend names (lazy: avoids import at CLI parse)."""
    from repro.uarch.backends import BACKEND_NAMES

    return BACKEND_NAMES


def _check_bootstrap(serving, backend: str) -> None:
    """Acceptance check for the serve bootstrap (AssertionError on miss).

    A service that trained a useless model or lost its backend tag must
    not come up quietly and answer traffic — the runner turns this into
    a ``FAILED check`` exit before the listener starts.
    """
    error = serving.manager.steady_state_error
    assert error <= 0.25, (
        f"bootstrap model unusable: steady-state median error {error:.1%} "
        "exceeds 25% on the demo dataset"
    )
    assert serving.slot.version >= 1, "no model version published to the slot"
    stats = serving.stats_dict()
    assert stats["backend"] == backend, (
        f"backend tag lost in bootstrap: stats say {stats['backend']!r}, "
        f"expected {backend!r}"
    )


def serve_main(argv) -> int:
    """The ``serve`` subcommand: train a model and run the prediction server.

    Boot-straps a demo service (synthetic dataset, short genetic search),
    publishes the model to the registry, and serves until interrupted or a
    client sends ``shutdown``.  Point real traffic at it with
    :class:`repro.serve.ServeClient` or ``python -m repro.serve.client``.
    """
    import asyncio

    from repro.serve import BatchConfig, build_service, demo_dataset

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Serve an inferred model over TCP with micro-batching.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654)
    parser.add_argument(
        "--registry",
        default=".cache/registry",
        help="model registry directory (default: .cache/registry)",
    )
    parser.add_argument("--space", default="demo")
    parser.add_argument("--application", default="suite")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--generations", type=int, default=3, help="bootstrap GA generations"
    )
    parser.add_argument(
        "--population-size", type=int, default=10, help="bootstrap GA population"
    )
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument(
        "--max-latency-ms", type=float, default=2.0, help="batching tick length"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve from this many worker processes behind one port "
        "(1 = classic single-process server)",
    )
    parser.add_argument(
        "--reuse-port",
        choices=["auto", "on", "off"],
        default="auto",
        help="multi-shard accept strategy: kernel SO_REUSEPORT balancing "
        "('on'), the round-robin router fallback ('off'), or probe the "
        "platform ('auto', the default)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="attach the streaming re-specifier (enables the "
        "observe_stream op: per-batch Gram refresh, drift-triggered "
        "background re-specification; the batch observe op answers 409 "
        "while attached)",
    )
    parser.add_argument(
        "--stream-publish-every",
        type=int,
        default=8,
        metavar="N",
        help="publish only every Nth coefficient refresh to the registry "
        "(each publish is a durable fsync + a new version; "
        "re-specifications always publish immediately)",
    )
    parser.add_argument(
        "--backend",
        choices=_backend_names(),
        default="cpu",
        help="timing backend tag for the served model: stamped into "
        "registry metadata, stats payloads, and prometheus labels",
    )
    parser.add_argument(
        "--metrics-dump",
        action="store_true",
        help="instead of starting a server, fetch the metrics of the one "
        "already listening on --host/--port and print a Prometheus-style "
        "text dump",
    )
    args = parser.parse_args(argv)

    if args.metrics_dump:
        from repro.serve import ServeClient

        with ServeClient(args.host, args.port) as client:
            sys.stdout.write(client.metrics_prometheus())
        return 0

    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.stream_publish_every < 1:
        parser.error("--stream-publish-every must be >= 1")
    if args.shards > 1:
        return _serve_sharded(args)

    print("bootstrapping demo model (genetic search)...", flush=True)
    server, serving, _ = build_service(
        demo_dataset(seed=args.seed),
        args.registry,
        space=args.space,
        application=args.application,
        host=args.host,
        port=args.port,
        generations=args.generations,
        population_size=args.population_size,
        seed=args.seed,
        batch_config=BatchConfig(
            max_batch=args.max_batch,
            max_latency_s=args.max_latency_ms / 1000.0,
        ),
        backend=args.backend,
    )
    try:
        _check_bootstrap(serving, args.backend)
    except AssertionError as failure:
        print(f"FAILED check: {failure}", file=sys.stderr)
        serving.close()
        return 1
    if args.stream:
        from repro.serve.bootstrap import attach_streaming

        attach_streaming(serving, publish_every=args.stream_publish_every)
        print(
            "streaming re-specifier attached (observe_stream; "
            f"publishing every {args.stream_publish_every} refreshes)",
            flush=True,
        )

    async def run() -> None:
        await server.start()
        print(
            f"serving {args.space}/{args.application} "
            f"v{server.slot.version} on {args.host}:{server.port}",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            serving.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _serve_sharded(args) -> int:
    """``serve --shards N``: the multi-process fleet, draining on SIGTERM.

    The supervisor runs until SIGTERM/SIGINT, then fans the stop out:
    flush per-shard + merged metrics JSONL, gracefully drain every worker
    (in-flight requests finish; see ``ShardSupervisor.drain``), and exit 0
    so process managers read the shutdown as clean.
    """
    import signal
    import threading

    from repro.serve import BatchConfig, build_sharded_service, demo_dataset

    reuse = {"auto": None, "on": True, "off": False}[args.reuse_port]
    print(
        f"bootstrapping demo model (genetic search) for {args.shards} shards...",
        flush=True,
    )
    supervisor = build_sharded_service(
        demo_dataset(seed=args.seed),
        args.registry,
        n_shards=args.shards,
        space=args.space,
        application=args.application,
        host=args.host,
        port=args.port,
        reuse_port=reuse,
        generations=args.generations,
        population_size=args.population_size,
        seed=args.seed,
        batch_config=BatchConfig(
            max_batch=args.max_batch,
            max_latency_s=args.max_latency_ms / 1000.0,
        ),
        backend=args.backend,
    )
    try:
        _check_bootstrap(supervisor.serving, args.backend)
    except AssertionError as failure:
        print(f"FAILED check: {failure}", file=sys.stderr)
        supervisor.serving.close()
        return 1

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())

    supervisor.start()
    try:
        print(
            f"serving {args.space}/{args.application} "
            f"v{supervisor.serving.slot.version} on {args.host}:{supervisor.port} "
            f"({args.shards} shards, {supervisor.mode} mode; SIGTERM drains)",
            flush=True,
        )
        stop.wait()
        print("draining fleet...", flush=True)
        report_dir = obs.default_report_dir()
        if report_dir is not None:
            try:
                path = supervisor.flush_metrics(
                    report_dir / "metrics_serve_shards.jsonl"
                )
                print(f"[metrics] {path}", flush=True)
            except Exception as exc:  # metrics must never block the drain
                print(f"[metrics] flush failed: {exc}", flush=True)
    finally:
        supervisor.drain()
    print("fleet drained, exiting", flush=True)
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'list', or 'serve'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (default: $REPRO_SCALE or 'bench')",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        default=None,
        help="also render the experiment's figures as SVG files into DIR",
    )
    parser.add_argument(
        "--report-dir",
        metavar="DIR",
        default=os.environ.get("REPRO_REPORT_DIR", "reports"),
        help="directory for per-experiment report files (default: reports/, "
        "git-ignored; override with $REPRO_REPORT_DIR; '-' disables)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, (_, description) in EXPERIMENTS.items():
            print(f"  {key:<10s} {description}")
        print("  serve      Online prediction server (repro.serve; own flags, try 'serve --help')")
        return 0

    scale = current_scale(args.scale)
    keys = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2

    report_dir = None if args.report_dir == "-" else Path(args.report_dir)
    if report_dir is not None:
        report_dir.mkdir(parents=True, exist_ok=True)

    status = 0
    for key in keys:
        start = time.time()
        try:
            report = run_experiment(key, scale, args.svg)
            failure = None
        except ExperimentCheckError as exc:
            report = getattr(exc, "report", "")
            failure = str(exc)
            status = 1
        header = f"[{key} @ scale={scale.name}, {time.time() - start:.1f}s]"
        print(f"\n{header}")
        print(report)
        if failure is not None:
            print(f"FAILED check: {failure}", file=sys.stderr)
        if report_dir is not None:
            path = report_dir / f"{key.replace('-', '_')}.txt"
            path.write_text(f"{header}\n{report}\n")
    if report_dir is not None and obs.enabled():
        metrics_path = obs.export_jsonl(
            report_dir / "metrics_experiments.jsonl", run="experiments"
        )
        print(f"\n[metrics] {metrics_path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
