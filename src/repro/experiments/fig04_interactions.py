"""Figure 4 — interaction frequency across the best models.

A two-dimensional histogram over variable pairs counting how often each
pairwise interaction appears in the 50 best models after 20 generations.
The paper's observations: hardware-software interactions (the upper-left
block of its matrix) are well represented, and the best models remain
*diverse* in their interaction choices — no single pair dominates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import (
    Scale,
    build_general_dataset,
    current_scale,
    run_genetic_search,
)


@dataclasses.dataclass
class Fig4Result:
    names: Tuple[str, ...]
    counts: np.ndarray                 # symmetric (p, p) appearance counts
    n_models: int
    region_totals: Dict[str, int]      # sw-sw / sw-hw / hw-hw appearance totals
    top_pairs: List[Tuple[str, str, int]]
    diversity: float                   # distinct pairs used / total appearances


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig4Result:
    scale = scale or current_scale()
    train, _ = build_general_dataset(scale, seed)
    result = run_genetic_search(train, scale, seed=7)

    names = train.variable_names
    p = len(names)
    n_software = len(train.x_names)
    counts = np.zeros((p, p), dtype=int)
    population = result.population  # final (sorted) population = best models
    for chromosome in population:
        for i, j in chromosome.interactions:
            counts[i, j] += 1
            counts[j, i] += 1

    regions = {"sw-sw": 0, "sw-hw": 0, "hw-hw": 0}
    pair_counts: List[Tuple[str, str, int]] = []
    for i in range(p):
        for j in range(i + 1, p):
            if counts[i, j] == 0:
                continue
            pair_counts.append((names[i], names[j], int(counts[i, j])))
            if i < n_software and j < n_software:
                regions["sw-sw"] += int(counts[i, j])
            elif i >= n_software and j >= n_software:
                regions["hw-hw"] += int(counts[i, j])
            else:
                regions["sw-hw"] += int(counts[i, j])

    pair_counts.sort(key=lambda item: -item[2])
    total = sum(c for *_, c in pair_counts)
    return Fig4Result(
        names=names,
        counts=counts,
        n_models=len(population),
        region_totals=regions,
        top_pairs=pair_counts[:12],
        diversity=len(pair_counts) / max(total, 1),
    )


def report(result: Fig4Result) -> str:
    lines = [
        f"Figure 4 — interaction frequency in the {result.n_models} best models",
        "  appearances by region: "
        + ", ".join(f"{k}={v}" for k, v in result.region_totals.items()),
        f"  distinct pairs / appearances: {result.diversity:.2f} "
        "(paper: 'considerable diversity')",
        "  most frequent pairwise interactions:",
    ]
    for a, b, count in result.top_pairs:
        lines.append(f"    {a:>4s} x {b:<4s}  {count:3d}  {'#' * count}")
    lines.append("  upper-triangle heatmap (rows/cols x1..x13,y1..y13):")
    peak = max(int(result.counts.max()), 1)
    glyphs = " .:-=+*#%@"
    for i, name in enumerate(result.names):
        row = "".join(
            glyphs[min(int(result.counts[i, j] * (len(glyphs) - 1) / peak), len(glyphs) - 1)]
            if j > i else " "
            for j in range(len(result.names))
        )
        lines.append(f"    {name:>4s} |{row}|")
    return "\n".join(lines)
