"""Figure 5 — genetic search convergence.

"Accuracy improves as the genetic algorithm evolves for 20 generations.
Median errors summed for 7 applications."  Useful models appear after only
a few generations; marginal benefits diminish approaching generation 20.

The driver runs the main genetic search (shared, cached) and reports the
per-generation sum of per-application median errors.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.experiments.common import (
    Scale,
    build_general_dataset,
    current_scale,
    run_genetic_search,
)


@dataclasses.dataclass
class Fig5Result:
    generations: List[int]
    sum_errors: List[float]       # sum of per-app median errors, best model
    best_fitness: List[float]     # mean per-app median error, best model
    final_sum_error: float


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig5Result:
    scale = scale or current_scale()
    train, _ = build_general_dataset(scale, seed)
    result = run_genetic_search(train, scale, seed=7)
    history = result.history
    return Fig5Result(
        generations=[r.generation for r in history],
        sum_errors=[r.best_sum_error for r in history],
        best_fitness=[r.best_fitness for r in history],
        final_sum_error=history[-1].best_sum_error,
    )


def report(result: Fig5Result) -> str:
    lines = [
        "Figure 5 — sum of per-application median errors vs. generation",
        f"  {'gen':>4s}  {'sum of median errors':>22s}  {'mean (fitness)':>15s}",
    ]
    peak = max(result.sum_errors)
    for gen, total, mean in zip(
        result.generations, result.sum_errors, result.best_fitness
    ):
        bar = "#" * int(round(36 * total / peak)) if peak else ""
        lines.append(f"  {gen:4d}  {total:22.3f}  {mean:15.3f}  {bar}")
    first, last = result.sum_errors[0], result.sum_errors[-1]
    lines.append(
        f"  improvement: {first:.3f} -> {last:.3f} "
        f"({(1 - last / first):.0%} lower; paper: errors fall with "
        "diminishing returns near generation 20)"
    )
    return "\n".join(lines)
