"""Table 3 — transformations chosen after the genetic search converges.

The paper inspects the best models after 20+ generations and tabulates the
common transformation per variable: some parameters end up un-used (the
rarely exercised FP multiplier count y12), some linear, some polynomial,
and the out-of-order window (y2) demands splines.

The driver takes the top quartile of the final population and reports the
*modal* transformation per variable, Table 3 style.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional

from repro.core.transforms import TransformKind
from repro.experiments.common import (
    Scale,
    build_general_dataset,
    current_scale,
    run_genetic_search,
)

_LABELS = {
    TransformKind.EXCLUDED: "un-used",
    TransformKind.LINEAR: "linear",
    TransformKind.QUADRATIC: "poly, degree 2",
    TransformKind.CUBIC: "poly, degree 3",
    TransformKind.SPLINE: "spline, 3 knots",
}

ROW_ORDER = (
    "un-used",
    "linear",
    "poly, degree 2",
    "poly, degree 3",
    "spline, 3 knots",
)


@dataclasses.dataclass
class Table3Result:
    modal_transform: Dict[str, str]          # variable -> modal transform label
    rows: Dict[str, List[str]]               # transform label -> variables
    n_models: int
    window_is_nonlinear: bool                # y2 got poly/spline in best models
    best_model_transforms: Dict[str, str]


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Table3Result:
    scale = scale or current_scale()
    train, _ = build_general_dataset(scale, seed)
    result = run_genetic_search(train, scale, seed=7)

    names = train.variable_names
    top = result.population[: max(4, len(result.population) // 4)]
    modal: Dict[str, str] = {}
    for index, name in enumerate(names):
        votes = Counter(_LABELS[TransformKind(c.genes[index])] for c in top)
        modal[name] = votes.most_common(1)[0][0]

    rows: Dict[str, List[str]] = {label: [] for label in ROW_ORDER}
    for name in names:
        rows[modal[name]].append(name)

    best = result.best_chromosome
    best_transforms = {
        name: _LABELS[TransformKind(g)] for name, g in zip(names, best.genes)
    }
    window = modal.get("y2", "")
    return Table3Result(
        modal_transform=modal,
        rows=rows,
        n_models=len(top),
        window_is_nonlinear=window not in ("un-used", "linear"),
        best_model_transforms=best_transforms,
    )


def report(result: Table3Result) -> str:
    lines = [
        f"Table 3 — modal transformations over the {result.n_models} best models",
        f"  {'transformation':<18s} variables",
    ]
    for label in ROW_ORDER:
        variables = result.rows[label]
        lines.append(f"  {label:<18s} {', '.join(variables) if variables else '-'}")
    lines.append(
        "  (paper: OoO window y2 needs splines; rare FP-mul y12 is dropped; "
        f"here y2 -> {result.modal_transform.get('y2')}, "
        f"y12 -> {result.modal_transform.get('y12')})"
    )
    return "\n".join(lines)
