"""Validation — interval timing model vs. cycle-level simulation.

The general study's performance substrate is the fast interval model
(:mod:`repro.uarch.pipeline`).  This driver quantifies its fidelity against
the independent cycle-level out-of-order simulator
(:mod:`repro.uarch.detailed`) across applications and design-space corners:
per-application Pearson/Spearman correlation of CPIs and the distribution
of interval/detailed CPI ratios.

This is the reproduction's analogue of validating an analytic model against
a reference simulator — the paper's own interval-model citations ([15, 24])
report the same kind of comparison against detailed simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core import pearson_correlation, spearman_correlation
from repro.experiments.common import Scale, cached, current_scale
from repro.uarch import Simulator, sample_configs
from repro.uarch.detailed import detailed_cpi
from repro.workloads import application_spec, generate_trace

VALIDATION_APPS = ("astar", "bzip2", "bwaves", "omnetpp", "hmmer")
SHARD = 1_500

#: Deliberately extreme designs — Table 2's own rationale ("include extreme
#: designs so that models infer interior points more accurately") applies
#: to validation too: uniformly random configurations cluster in a narrow
#: CPI band where residual noise swamps correlation.
CORNER_LEVELS = (
    (0, 0, 1, 1, 0, 0, 0, 4, 0, 0, 0, 0, 0),   # minimal machine
    (3, 5, 3, 4, 3, 3, 4, 0, 3, 1, 2, 1, 3),   # maximal machine
    (0, 5, 0, 0, 3, 3, 4, 0, 3, 1, 2, 1, 3),   # narrow but resource-rich
    (3, 0, 3, 4, 0, 0, 0, 4, 0, 0, 0, 0, 0),   # wide but starved
)


@dataclasses.dataclass
class TimingValidation:
    per_app_pearson: Dict[str, float]
    per_app_spearman: Dict[str, float]
    ratios: np.ndarray                  # interval / detailed, all pairs
    n_configs: int


def run(scale: Optional[Scale] = None, seed: int = 2012) -> TimingValidation:
    scale = scale or current_scale()
    n_configs = max(6, scale.tuning_caches // 4)

    def build():
        from repro.uarch import config_from_levels

        rng = np.random.default_rng(seed + 1800)
        corners = [config_from_levels(levels) for levels in CORNER_LEVELS]
        configs = corners + sample_configs(
            max(2, n_configs - len(corners)), rng
        )
        interval = Simulator()
        pearson: Dict[str, float] = {}
        spearman: Dict[str, float] = {}
        ratios = []
        for app in VALIDATION_APPS:
            trace = generate_trace(
                application_spec(app), SHARD, seed=seed % 1000, shard_length=SHARD
            )
            shard = trace.shards(SHARD)[0]
            fast, slow = [], []
            for config in configs:
                fast.append(interval.cpi(shard, config))
                slow.append(detailed_cpi(shard, config))
            fast, slow = np.array(fast), np.array(slow)
            pearson[app] = pearson_correlation(fast, slow)
            spearman[app] = spearman_correlation(fast, slow)
            ratios.append(fast / slow)
        return TimingValidation(
            per_app_pearson=pearson,
            per_app_spearman=spearman,
            ratios=np.concatenate(ratios),
            n_configs=n_configs,
        )

    return cached(f"valtiming-v14|{scale.name}|{seed}|{n_configs}", build)


def report(result: TimingValidation) -> str:
    lines = [
        "Validation — interval model vs. cycle-level OoO simulation "
        f"({result.n_configs} architectures per application)",
        f"  {'application':<12s} {'pearson':>8s} {'spearman':>9s}",
    ]
    for app in result.per_app_pearson:
        lines.append(
            f"  {app:<12s} {result.per_app_pearson[app]:>8.3f} "
            f"{result.per_app_spearman[app]:>9.3f}"
        )
    lines.append(
        f"  CPI ratio (interval/detailed): median "
        f"{np.median(result.ratios):.2f}, "
        f"range [{result.ratios.min():.2f}, {result.ratios.max():.2f}]"
    )
    return "\n".join(lines)
