"""Cross-backend transfer demo — CPU-searched specs warm-start the GPU.

The multi-backend question (ROADMAP: "Second timing backend +
cross-backend model transfer"): the same applications are profiled on
the OoO CPU interval model and the GPU warp-throughput model, a model
specification is searched on the CPU data, and then:

1. a **cold** genetic search runs on the GPU dataset from a random
   population, while a **warm** search — identical hyperparameters and
   seed — starts from the CPU search's final population.  The measured
   quantity is *generations-to-target*: how many generations each arm
   needs to reach the cold arm's final best fitness.
2. the CPU-searched **specification** (variables, transforms,
   interactions — not coefficients) is refit on the GPU data, and its
   validation accuracy is compared against the natively searched spec:
   the shared-representation transfer of Stevens & Klöckner / Li et al.

The acceptance check fails the run (exit 1 via the ``check()``
protocol) when warm-starting does not beat cold-starting, which is the
observable claim ``BENCH_transfer.json`` gates in CI.

Run with ``python -m repro.experiments transfer``.
"""

from __future__ import annotations

from typing import Dict

from repro.core import transfer_search
from repro.experiments.common import (
    Scale,
    build_general_dataset,
    cached,
    run_genetic_search,
)

#: Transfer-search sizing per scale: enough generations for the cold
#: arm's trajectory to have a measurable shape, and three paired trials
#: so the gate compares seed-aggregated totals rather than one lottery.
TRANSFER_SIZES = {
    "small": dict(population=10, generations=6, seed=5, pairs=3),
    "bench": dict(population=20, generations=8, seed=5, pairs=3),
    "full": dict(population=30, generations=10, seed=5, pairs=3),
}


def run(scale: Scale) -> Dict[str, object]:
    sizes = TRANSFER_SIZES[scale.name]
    train_cpu, val_cpu = build_general_dataset(scale, backend="cpu")
    source = run_genetic_search(train_cpu, scale, tag="main")
    train_gpu, val_gpu = build_general_dataset(scale, backend="gpu")

    def build():
        return transfer_search(
            source,
            train_gpu,
            val_gpu,
            source_backend="cpu",
            target_backend="gpu",
            population_size=sizes["population"],
            generations=sizes["generations"],
            seed=sizes["seed"],
            pairs=sizes["pairs"],
        )

    key = (
        f"transfer-v2|{scale.name}|{sizes['population']}|"
        f"{sizes['generations']}|{sizes['seed']}|{sizes['pairs']}"
    )
    outcome = cached(key, build)
    source_score = source.best_model(train_cpu).score(val_cpu)
    return {
        "scale": scale.name,
        "generations": sizes["generations"],
        "outcome": outcome,
        "source_score": source_score,
        "n_gpu_train": len(train_gpu),
        "n_gpu_val": len(val_gpu),
    }


def report(result: Dict[str, object]) -> str:
    outcome = result["outcome"]
    lines = [
        "Cross-backend transfer (cpu -> gpu)",
        f"  GPU dataset: {result['n_gpu_train']} train / "
        f"{result['n_gpu_val']} validation records",
        f"  source (cpu) model: median error "
        f"{result['source_score']['median_error']:.3f}, "
        f"rho {result['source_score']['correlation']:.3f}",
        "",
        f"  generations-to-target, total over {len(outcome.trials)} paired "
        f"trials: cold {outcome.cold_generations}, "
        f"warm {outcome.warm_generations} "
        f"({outcome.generations_saved} saved, "
        f"{outcome.speedup:.1f}x)",
    ]
    for t in outcome.trials:
        lines.append(
            f"    seed {t.seed}: target {t.target_fitness:.4f}  "
            f"cold {t.cold_generations} gens -> {t.cold_final:.4f}  "
            f"warm {t.warm_generations} gens -> {t.warm_final:.4f}"
        )
    lines += [
        "",
        "  first trial's cold trajectory: "
        + " ".join(f"{r.best_fitness:.4f}" for r in outcome.cold.history),
        "  first trial's warm trajectory: "
        + " ".join(f"{r.best_fitness:.4f}" for r in outcome.warm.history),
        "",
        "  shared-representation spec (cpu-searched, gpu-refit): "
        f"median error {outcome.shared_spec_score['median_error']:.3f}, "
        f"rho {outcome.shared_spec_score['correlation']:.3f}",
        "  natively searched spec (gpu):                        "
        f"median error {outcome.native_spec_score['median_error']:.3f}, "
        f"rho {outcome.native_spec_score['correlation']:.3f}",
    ]
    return "\n".join(lines)


def check(result: Dict[str, object]) -> None:
    """Warm-start must beat cold-start in generations-to-target, and the
    transferred representation must remain a usable GPU predictor."""
    outcome = result["outcome"]
    assert outcome.warm_generations < outcome.cold_generations, (
        f"warm start did not beat cold start: warm totalled "
        f"{outcome.warm_generations} generations-to-target over "
        f"{len(outcome.trials)} trials, cold {outcome.cold_generations}"
    )
    wins = sum(
        t.warm_generations < t.cold_generations for t in outcome.trials
    )
    assert wins * 2 > len(outcome.trials), (
        f"warm start won only {wins}/{len(outcome.trials)} paired trials"
    )
    shared = outcome.shared_spec_score
    assert shared["correlation"] >= 0.5, (
        f"shared-representation spec no longer ranks GPU designs "
        f"(rho {shared['correlation']:.3f} < 0.5)"
    )
