"""Figure 10 — shard-level extrapolation (leave-one-application-out).

Profiles of shards from n-1 applications train a model with *no* update;
it predicts the performance of shards from application n.  Each application
takes a turn as the newcomer.  Accurate shard-level predictions demonstrate
exploitable shared behavior across application shards — the foundation of
the paper's sharing strategy (§2.1).

Paper: median errors ~8%, rho >= 0.9, validated against 300 separately
profiled shards per application.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.core import (
    BoxplotStats,
    InferredModel,
    ProfileDataset,
    absolute_percentage_errors,
    pearson_correlation,
)
from repro.experiments.common import (
    GeneralStudy,
    Scale,
    build_general_dataset,
    cached,
    current_scale,
    empty_general_dataset,
    run_genetic_search,
)
from repro.uarch import sample_configs


@dataclasses.dataclass
class Fig10Result:
    per_application: Dict[str, BoxplotStats]
    per_application_rho: Dict[str, float]
    overall: BoxplotStats
    overall_rho: float


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig10Result:
    scale = scale or current_scale()

    def build():
        train, _ = build_general_dataset(scale, seed)
        search_result = run_genetic_search(train, scale, seed=7)
        spec = search_result.best_chromosome.to_spec(train.variable_names)

        study = GeneralStudy(scale, seed)
        rng = np.random.default_rng(seed + 400)
        apps = study.applications()
        validation_shards = max(4, scale.validation_pairs // 2)

        per_app: Dict[str, BoxplotStats] = {}
        per_rho: Dict[str, float] = {}
        all_errors: List[np.ndarray] = []
        all_preds: List[np.ndarray] = []
        all_targets: List[np.ndarray] = []
        for held_out in apps:
            fit_data = empty_general_dataset()
            for app in apps:
                if app == held_out:
                    continue
                configs = sample_configs(scale.configs_per_app, rng)
                fit_data.extend(study.sample_records(app, configs, rng))
            model = InferredModel.fit(spec, fit_data)

            n_shards = len(study.shards(held_out))
            records = []
            for _ in range(validation_shards):
                shard_index = int(rng.integers(0, n_shards))
                config = sample_configs(1, rng)[0]
                records.append(study.record(held_out, shard_index, config))
            probe = ProfileDataset(fit_data.x_names, fit_data.y_names, records)
            predictions = model.predict(probe)
            targets = probe.targets()
            errors = absolute_percentage_errors(predictions, targets)
            per_app[held_out] = BoxplotStats.from_errors(errors)
            per_rho[held_out] = pearson_correlation(predictions, targets)
            all_errors.append(errors)
            all_preds.append(predictions)
            all_targets.append(targets)

        return Fig10Result(
            per_application=per_app,
            per_application_rho=per_rho,
            overall=BoxplotStats.from_errors(np.concatenate(all_errors)),
            overall_rho=pearson_correlation(
                np.concatenate(all_preds), np.concatenate(all_targets)
            ),
        )

    return cached(f"fig10-v12|{scale.name}|{seed}", build)


def report(result: Fig10Result) -> str:
    lines = [
        "Figure 10 — shard-level extrapolation, leave-one-application-out",
    ]
    for app, stats in result.per_application.items():
        lines.append("  " + stats.row(app))
        lines.append(f"  {'':<18s} rho = {result.per_application_rho[app]:.3f}")
    lines.append("  " + result.overall.row("ALL"))
    lines.append(
        f"  {'':<18s} rho = {result.overall_rho:.3f}  "
        "(paper: median ~8%, rho >= 0.9; bwaves is the known outlier)"
    )
    return "\n".join(lines)
