"""Figure 3 — heteroscedastic software behavior and variance stabilization.

Each SPEC-like shard reports the *sum* of its re-use distances for 256B
data blocks.  The raw per-shard sums form a long-tailed, right-skewed
distribution (outliers an order of magnitude above the mode); transforming
x -> x**(1/5) stabilizes the variance and symmetrizes the histogram.

The driver reproduces both panels as histograms and quantifies the claim
with skewness before/after, plus the automatically chosen ladder power.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.core import choose_ladder_power, skewness, stabilize
from repro.experiments.common import GeneralStudy, Scale, cached, current_scale
from repro.profiling import reuse_distance_sums

FIGURE3_BLOCK_BYTES = 256
FIGURE3_POWER = 5


@dataclasses.dataclass
class Fig3Result:
    sums: np.ndarray                  # per-shard sum of re-use distances
    raw_skewness: float
    transformed_skewness: float
    chosen_power: int
    raw_histogram: Tuple[np.ndarray, np.ndarray]
    transformed_histogram: Tuple[np.ndarray, np.ndarray]
    tail_ratio: float                 # p99 / mode of the raw distribution


def run(scale: Optional[Scale] = None, seed: int = 2012) -> Fig3Result:
    scale = scale or current_scale()

    def build():
        study = GeneralStudy(scale, seed)
        sums: List[float] = []
        for app in study.applications():
            for shard in study.shards(app):
                positions = np.flatnonzero(shard.memory_mask())
                sums.append(
                    reuse_distance_sums(
                        shard.addr[positions], positions, FIGURE3_BLOCK_BYTES
                    )
                )
        return np.array(sums)

    sums = cached(f"fig03-v12|{scale.name}|{seed}", build)
    transformed = stabilize(sums, FIGURE3_POWER)

    raw_hist = np.histogram(sums, bins=30)
    tr_hist = np.histogram(transformed, bins=30)
    counts, edges = raw_hist
    mode = edges[np.argmax(counts)] or edges[np.argmax(counts) + 1]
    return Fig3Result(
        sums=sums,
        raw_skewness=skewness(sums),
        transformed_skewness=skewness(transformed),
        chosen_power=choose_ladder_power(sums),
        raw_histogram=raw_hist,
        transformed_histogram=tr_hist,
        tail_ratio=float(np.percentile(sums, 99) / max(mode, 1.0)),
    )


def report(result: Fig3Result) -> str:
    lines = [
        "Figure 3 — sum of 256B-block re-use distances per shard",
        f"  shards: {len(result.sums)}",
        f"  raw skewness:          {result.raw_skewness:8.2f}   (long right tail)",
        f"  x^(1/5) skewness:      {result.transformed_skewness:8.2f}   (stabilized)",
        f"  auto-chosen power n:   {result.chosen_power:8d}   (paper uses 5)",
        f"  p99 / modal bin:       {result.tail_ratio:8.1f}x  (paper: ~10x outliers)",
        "",
        "  (a) raw histogram (30 bins):",
        _ascii_hist(result.raw_histogram),
        "  (b) x^(1/5) histogram (30 bins):",
        _ascii_hist(result.transformed_histogram),
    ]
    return "\n".join(lines)


def _ascii_hist(histogram, width: int = 48) -> str:
    counts, edges = histogram
    peak = max(int(counts.max()), 1)
    rows = []
    for count, lo in zip(counts, edges[:-1]):
        bar = "#" * int(round(width * count / peak))
        rows.append(f"    {lo:12.3g} |{bar}")
    return "\n".join(rows)
