"""Bounded retries with deterministic, seeded exponential backoff.

:class:`RetryPolicy` is the one retry/backoff vocabulary of the repo —
``serve.client`` uses it to survive dropped connections, corrupted
frames, and 429/408 replies; anything else that talks to a flaky
dependency can reuse it.  Three properties matter:

* **bounded** — ``max_attempts`` is a hard cap; the last error always
  propagates, never an infinite loop;
* **deterministic** — jitter is derived from ``(seed, failure number)``,
  not wall-clock entropy, so a test (or a re-run of a chaos seed)
  observes the exact same backoff schedule (property-tested in
  ``tests/test_faults.py``);
* **capped** — the un-jittered schedule is monotone non-decreasing and
  clamped to ``max_delay_s``; jitter perturbs by at most ``±jitter``
  fraction and can never push a delay negative.

Attempt bookkeeping goes to :mod:`repro.obs` (``retry.attempts``,
``retry.retries``, ``retry.giveups``) so a chaos run shows how much
retrying its faults caused.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import time
from typing import Callable, FrozenSet, Iterator, List, Optional, Tuple, Type, TypeVar

from repro import obs

T = TypeVar("T")

#: Server reply statuses worth retrying: timeouts (408), shed load (429),
#: transient server errors (500/503).  Client errors (400/404) are not.
DEFAULT_RETRY_STATUSES: FrozenSet[int] = frozenset({408, 429, 500, 503})


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between failures."""

    max_attempts: int = 4            #: total tries, including the first
    base_delay_s: float = 0.05       #: backoff after the first failure
    multiplier: float = 2.0          #: exponential growth per failure
    max_delay_s: float = 2.0         #: cap on any single backoff
    jitter: float = 0.1              #: ± fraction applied to each backoff
    seed: int = 0                    #: derives the deterministic jitter
    attempt_timeout_s: Optional[float] = None  #: per-attempt budget (transport-level)
    retry_statuses: FrozenSet[int] = DEFAULT_RETRY_STATUSES

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1 (backoff must not shrink)")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # -- the schedule ----------------------------------------------------------------

    def base_backoff_s(self, failure: int) -> float:
        """Un-jittered backoff after the ``failure``-th failure (1-based).

        ``min(max_delay_s, base_delay_s * multiplier**(failure-1))`` —
        monotone non-decreasing in ``failure`` and capped.
        """
        if failure < 1:
            raise ValueError("failure numbers are 1-based")
        return min(self.max_delay_s, self.base_delay_s * self.multiplier ** (failure - 1))

    def backoff_s(self, failure: int) -> float:
        """Jittered backoff: the base scaled by a seeded ±``jitter`` draw."""
        base = self.base_backoff_s(failure)
        if not self.jitter:
            return base
        unit = random.Random(f"{self.seed}:{failure}").random()  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def schedule(self) -> List[float]:
        """Every backoff this policy can sleep, in order (length
        ``max_attempts - 1``)."""
        return [self.backoff_s(f) for f in range(1, self.max_attempts)]

    def retryable_status(self, status: int) -> bool:
        return status in self.retry_statuses

    def derive(self, salt) -> "RetryPolicy":
        """This policy with its jitter stream re-seeded from ``(seed, salt)``.

        The derived seed is the first 8 bytes of
        ``sha256("<seed>:<salt>")`` — a pure function of the parent seed
        and the salt, so two callers that derive with the same salt see
        the same backoff schedule, while different salts decorrelate
        their jitter (no thundering herd of identically-jittered
        retries).  ``ServeClient`` salts with its per-instance request
        sequence number, which survives reconnects — the derivation is
        documented in DESIGN.md §8.
        """
        digest = hashlib.sha256(f"{self.seed}:{salt}".encode("utf-8")).digest()
        return dataclasses.replace(
            self, seed=int.from_bytes(digest[:8], "big")
        )

    # -- execution helpers -----------------------------------------------------------

    def attempts(self) -> Iterator[Tuple[int, bool]]:
        """Yield ``(attempt_number, is_last)`` pairs, 1-based."""
        for attempt in range(1, self.max_attempts + 1):
            yield attempt, attempt == self.max_attempts

    def sleep(self, failure: int) -> float:
        """Sleep the backoff for ``failure`` and return the duration."""
        delay = self.backoff_s(failure)
        if delay > 0:
            time.sleep(delay)
        return delay

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (ConnectionError, OSError, TimeoutError),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Run ``fn`` under this policy, sleeping between failures.

        ``on_retry(failure_number, error)`` is called before each backoff
        (e.g. to reset a connection).  The final failure propagates.
        """
        attempts_counter = obs.counter("retry.attempts")
        for attempt, is_last in self.attempts():
            attempts_counter.inc()
            try:
                return fn()
            except retry_on as exc:
                if is_last:
                    obs.counter("retry.giveups").inc()
                    raise
                obs.counter("retry.retries").inc()
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(attempt)
        raise AssertionError("unreachable")  # pragma: no cover


#: A policy that never retries — for call sites that must fail fast but
#: share the RetryPolicy-shaped interface.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)
