"""Deterministic, seedable fault injection for the hot paths.

The serving, parallelism, and registry layers are threaded with *named
injection points* — ``faults.site("serve.read_frame")`` and friends — that
are zero-cost no-ops until a :class:`FaultPlan` is armed (mirroring the
``REPRO_OBS=0`` philosophy: one module-level ``None`` check on the fast
path).  An armed plan is a seeded *schedule* mapping sites to actions:

``raise[:token]``
    Raise an exception at the site.  ``token`` selects a registered
    exception factory (see :func:`register_exception`); the default is
    :class:`InjectedFault`.
``delay:seconds``
    Sleep at the site (``asyncio.sleep`` through :func:`site_async`, so
    event-loop call sites stay responsive and per-request deadlines can
    fire).
``corrupt``
    Deterministically flip bytes of the payload passed to the site —
    used on framed byte strings to simulate wire corruption of the
    length prefix or JSON body.
``kill[:code]``
    ``os._exit`` the current process: a worker crash that no ``except``
    clause can absorb.  Used with the supervised process pool.
``drop``
    Raise :class:`InjectedDrop` (a ``ConnectionError``): socket-layer
    call sites translate it into a torn connection.

When each rule fires is part of the schedule, not left to chance:

* ``@n1,n2,...`` fires on exactly those 1-based hits of the rule
  (hit counters live in shared memory, so under the default ``fork``
  start method a rule sees ONE global hit sequence across every worker
  process — "kill the first chunk evaluated anywhere" means exactly one
  death, however many workers race);
* ``%p`` fires with probability ``p``, decided by hashing
  ``(plan seed, rule index, hit number)`` — the decision sequence is a
  pure function of the seed, reproducible across runs and processes;
* no suffix fires on every hit.

Plans are armed programmatically (:func:`arm` / :func:`armed`) or from
the environment: ``REPRO_FAULTS="<seed>:<site>=<action>[@hits|%p][;...]"``
is parsed and armed when this package is first imported, which is how the
CI chaos job and spawned subprocesses join a schedule.

Every injected fault is counted in :mod:`repro.obs` (``faults.injected``,
``faults.<site>``, ``faults.action.<action>``), so chaos tests can assert
that the faults they planned actually happened.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import multiprocessing
import os
import random
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro import obs

FAULTS_ENV = "REPRO_FAULTS"

ACTIONS = ("raise", "delay", "corrupt", "kill", "drop")

#: Default exit code for ``kill`` — distinctive in worker post-mortems.
KILL_EXIT_CODE = 42

#: How many bytes ``corrupt`` flips (at most; short payloads flip fewer).
CORRUPT_BYTES = 3


class FaultError(ValueError):
    """A fault specification could not be parsed."""


class InjectedFault(RuntimeError):
    """The default exception raised by a ``raise`` action."""

    def __init__(self, site: str, message: Optional[str] = None):
        super().__init__(message or f"injected fault at {site!r}")
        self.site = site


class InjectedDrop(ConnectionError):
    """An injected connection drop (``drop`` action).

    Subclasses :class:`ConnectionError` so transport code paths handle it
    exactly like a real peer reset.
    """

    def __init__(self, site: str):
        super().__init__(f"injected connection drop at {site!r}")
        self.site = site


#: Exception factories selectable by ``raise:<token>``.  Modules with
#: domain-specific failures register theirs at import time (e.g.
#: ``repro.serve.batching`` registers ``queue_full`` so a plan can make
#: the server answer 429).
_EXCEPTIONS: Dict[str, Callable[[str], BaseException]] = {
    "fault": InjectedFault,
    "drop": InjectedDrop,
    "connection": lambda site: ConnectionError(f"injected connection error at {site!r}"),
    "os": lambda site: OSError(f"injected os error at {site!r}"),
    "timeout": lambda site: TimeoutError(f"injected timeout at {site!r}"),
}


def register_exception(token: str, factory: Callable[[str], BaseException]) -> None:
    """Make ``raise:<token>`` raise ``factory(site_name)``."""
    _EXCEPTIONS[token] = factory


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule: where, what, and when."""

    site: str                               #: exact name, or prefix ending in ``*``
    action: str                             #: one of :data:`ACTIONS`
    arg: Optional[str] = None               #: action argument (token/seconds/code)
    hits: Optional[FrozenSet[int]] = None   #: 1-based hit numbers; None = every hit
    probability: Optional[float] = None     #: seeded per-hit coin; None = always

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise FaultError(f"unknown fault action {self.action!r} (know {ACTIONS})")
        if self.hits is not None and self.probability is not None:
            raise FaultError(f"rule for {self.site!r} has both @hits and %probability")
        if self.hits is not None and any(h < 1 for h in self.hits):
            raise FaultError(f"hit numbers are 1-based, got {sorted(self.hits)}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"probability must be in [0, 1], got {self.probability}")
        if self.action == "delay":
            try:
                if self.delay_s < 0:
                    raise ValueError
            except (TypeError, ValueError):
                raise FaultError(
                    f"delay needs a non-negative seconds arg, got {self.arg!r}"
                ) from None
        if self.action == "raise" and self.token not in _EXCEPTIONS:
            raise FaultError(
                f"raise:{self.token} is not a registered exception "
                f"(know {sorted(_EXCEPTIONS)})"
            )

    def matches(self, site_name: str) -> bool:
        if self.site.endswith("*"):
            return site_name.startswith(self.site[:-1])
        return site_name == self.site

    @property
    def delay_s(self) -> float:
        return float(self.arg if self.arg is not None else 0.05)

    @property
    def exit_code(self) -> int:
        return int(self.arg) if self.arg is not None else KILL_EXIT_CODE

    @property
    def token(self) -> str:
        return self.arg or "fault"

    def spec(self) -> str:
        """Render back to the one-rule spec syntax."""
        text = f"{self.site}={self.action}"
        if self.arg is not None:
            text += f":{self.arg}"
        if self.hits is not None:
            text += "@" + ",".join(str(h) for h in sorted(self.hits))
        if self.probability is not None:
            text += f"%{self.probability:g}"
        return text


@dataclasses.dataclass(frozen=True)
class Outcome:
    """A triggered rule, ready to execute at a site."""

    rule: FaultRule
    index: int
    hit: int
    site: str


class FaultPlan:
    """A seeded schedule of fault rules with shared-memory hit counters.

    The hit counters are ``multiprocessing.Value`` cells created when the
    plan is built, so forked workers (process pools, killed-worker drills)
    advance the *same* sequence as the parent — rule ``@1`` fires exactly
    once per armed plan, process-wide, not once per process.
    """

    def __init__(self, rules: List[FaultRule], seed: int = 0):
        self.rules = list(rules)
        self.seed = int(seed)
        self._hits = [multiprocessing.Value("q", 0) for _ in self.rules]
        self._injected = [multiprocessing.Value("q", 0) for _ in self.rules]

    # -- construction ----------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``site=action[:arg][@hits|%p][;...]`` into a plan."""
        rules = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            rules.append(cls._parse_rule(part))
        if not rules:
            raise FaultError(f"fault spec {spec!r} contains no rules")
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse the ``$REPRO_FAULTS`` form ``<seed>:<spec>``."""
        head, sep, spec = value.partition(":")
        if not sep:
            raise FaultError(
                f"${FAULTS_ENV} must look like '<seed>:<spec>', got {value!r}"
            )
        try:
            seed = int(head)
        except ValueError:
            raise FaultError(f"${FAULTS_ENV} seed {head!r} is not an integer") from None
        return cls.parse(spec, seed=seed)

    @staticmethod
    def _parse_rule(text: str) -> FaultRule:
        site, sep, rest = text.partition("=")
        if not sep or not site.strip():
            raise FaultError(f"fault rule {text!r} is not 'site=action'")
        hits: Optional[FrozenSet[int]] = None
        probability: Optional[float] = None
        if "@" in rest:
            rest, _, raw = rest.partition("@")
            try:
                hits = frozenset(int(h) for h in raw.split(",") if h.strip())
            except ValueError:
                raise FaultError(f"bad hit list {raw!r} in {text!r}") from None
            if not hits:
                raise FaultError(f"empty hit list in {text!r}")
        elif "%" in rest:
            rest, _, raw = rest.partition("%")
            try:
                probability = float(raw)
            except ValueError:
                raise FaultError(f"bad probability {raw!r} in {text!r}") from None
        action, _, arg = rest.partition(":")
        return FaultRule(
            site=site.strip(),
            action=action.strip(),
            arg=arg.strip() or None,
            hits=hits,
            probability=probability,
        )

    def spec(self) -> str:
        return ";".join(rule.spec() for rule in self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, spec={self.spec()!r})"

    # -- bookkeeping -----------------------------------------------------------------

    def hit_counts(self) -> List[int]:
        """Raw site hits per rule (shared across forked processes)."""
        return [int(cell.value) for cell in self._hits]

    def injected_counts(self) -> List[int]:
        """Faults actually injected per rule."""
        return [int(cell.value) for cell in self._injected]

    def reset(self) -> None:
        for cell in (*self._hits, *self._injected):
            with cell.get_lock():
                cell.value = 0

    # -- firing ----------------------------------------------------------------------

    def decide(self, site_name: str) -> Optional[Outcome]:
        """Consume one hit; return the triggered outcome, or ``None``.

        The decision is a pure function of ``(seed, rule index, hit
        number)``, so any interleaving of processes/threads that produces
        the same hit numbering produces the same injections.
        """
        for index, rule in enumerate(self.rules):
            if not rule.matches(site_name):
                continue
            cell = self._hits[index]
            with cell.get_lock():
                cell.value += 1
                hit = int(cell.value)
            if rule.hits is not None and hit not in rule.hits:
                continue
            if rule.probability is not None:
                coin = random.Random(f"{self.seed}:{index}:{hit}").random()
                if coin >= rule.probability:
                    continue
            with self._injected[index].get_lock():
                self._injected[index].value += 1
            obs.counter("faults.injected").inc()
            obs.counter(f"faults.{site_name}").inc()
            obs.counter(f"faults.action.{rule.action}").inc()
            return Outcome(rule=rule, index=index, hit=hit, site=site_name)
        return None

    def execute(self, outcome: Outcome, payload=None):
        """Apply a non-delay outcome: raise, corrupt, kill, or drop."""
        rule = outcome.rule
        if rule.action == "raise":
            raise _EXCEPTIONS[rule.token](outcome.site)
        if rule.action == "drop":
            raise InjectedDrop(outcome.site)
        if rule.action == "kill":
            os._exit(rule.exit_code)
        if rule.action == "corrupt":
            if payload is None:
                raise InjectedFault(
                    outcome.site, f"corrupt fault at payload-less site {outcome.site!r}"
                )
            return self._corrupt(outcome, payload)
        raise AssertionError(f"unexecutable action {rule.action!r}")  # pragma: no cover

    def apply(self, site_name: str, payload=None):
        """Synchronous site body: decide and execute (blocking sleep for delay)."""
        outcome = self.decide(site_name)
        if outcome is None:
            return payload
        if outcome.rule.action == "delay":
            time.sleep(outcome.rule.delay_s)
            return payload
        return self.execute(outcome, payload)

    def _corrupt(self, outcome: Outcome, payload: bytes) -> bytes:
        """Flip a few bytes, positions/values derived from the seed."""
        data = bytearray(payload)
        if not data:
            return bytes(data)
        rng = random.Random(f"{self.seed}:{outcome.index}:{outcome.hit}:corrupt")
        for position in rng.sample(range(len(data)), min(CORRUPT_BYTES, len(data))):
            data[position] ^= rng.randrange(1, 256)  # non-zero: guaranteed change
        return bytes(data)


# -- the armed plan (module-global, like the obs registry) -----------------------------

_armed: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, if any."""
    return _armed


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan``: every ``site()`` call now consults it."""
    global _armed
    _armed = plan
    return plan


def disarm() -> None:
    """Return every site to its zero-cost no-op state."""
    global _armed
    _armed = None


@contextlib.contextmanager
def armed(plan: FaultPlan):
    """Arm ``plan`` for the duration of a ``with`` block (test helper)."""
    global _armed
    previous = _armed
    arm(plan)
    try:
        yield plan
    finally:
        _armed = previous


def site(name: str, payload=None):
    """A named injection point.  Returns ``payload`` (possibly corrupted).

    Disarmed cost is one global load and an identity check; call sites on
    hot paths need no gating of their own.
    """
    plan = _armed
    if plan is None:
        return payload
    return plan.apply(name, payload)


async def site_async(name: str, payload=None):
    """:func:`site` for event-loop call sites: delays await ``asyncio.sleep``
    so concurrent tasks (and per-request deadlines) keep running."""
    plan = _armed
    if plan is None:
        return payload
    outcome = plan.decide(name)
    if outcome is None:
        return payload
    if outcome.rule.action == "delay":
        await asyncio.sleep(outcome.rule.delay_s)
        return payload
    return plan.execute(outcome, payload)


def arm_from_env(environ=os.environ) -> Optional[FaultPlan]:
    """Arm from ``$REPRO_FAULTS`` when set; returns the armed plan."""
    value = environ.get(FAULTS_ENV, "").strip()
    if not value:
        return None
    return arm(FaultPlan.from_env(value))
