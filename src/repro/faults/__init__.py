"""``repro.faults`` — deterministic fault injection + retry policies.

Two halves, documented in DESIGN.md §8:

* :mod:`repro.faults.plan` — seedable :class:`FaultPlan` schedules fired
  at named injection points (:func:`site` / :func:`site_async`) threaded
  through the serving, parallelism, and registry hot paths.  Zero-cost
  no-ops until a plan is armed; armable from ``$REPRO_FAULTS``.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, the bounded,
  deterministically jittered exponential-backoff policy the serve client
  (and anything else flaky-adjacent) recovers with.

Typical chaos-test usage::

    from repro import faults

    plan = faults.FaultPlan.parse("serve.write_frame=corrupt@1", seed=7)
    with faults.armed(plan):
        ...   # first reply frame is corrupted; client retries through it
    assert plan.injected_counts() == [1]
"""

from repro.faults.plan import (
    ACTIONS,
    FAULTS_ENV,
    FaultError,
    FaultPlan,
    FaultRule,
    InjectedDrop,
    InjectedFault,
    Outcome,
    active_plan,
    arm,
    arm_from_env,
    armed,
    disarm,
    register_exception,
    site,
    site_async,
)
from repro.faults.retry import DEFAULT_RETRY_STATUSES, NO_RETRY, RetryPolicy

# Join any schedule the environment carries (CI chaos job, fork/spawn
# subprocesses): the env var names both the seed and the spec, so every
# process that imports the package sees the same plan shape.
arm_from_env()

__all__ = [
    "ACTIONS",
    "DEFAULT_RETRY_STATUSES",
    "FAULTS_ENV",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "InjectedDrop",
    "InjectedFault",
    "NO_RETRY",
    "Outcome",
    "RetryPolicy",
    "active_plan",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "register_exception",
    "site",
    "site_async",
]
