"""Lightweight trace spans: wall/CPU timing with a context stack.

A span brackets one phase of work::

    with obs.span("ga.generation"):
        ...

On exit it records the wall and CPU durations into the registry's
histograms ``span.<name>.wall_seconds`` and ``span.<name>.cpu_seconds``
(so the count, sum, and distribution of every phase accumulate without
any per-span allocation surviving the span), and while active it sits on
a per-thread context stack — :func:`current_stack` names the enclosing
phases, which exporters and tests can use to see *where* time is going.

Spans are deliberately aggregate-only: there is no retained per-span
event log to grow without bound under serving traffic.  When
observability is disabled the shared :data:`NULL_SPAN` is handed out and
``with`` costs two empty method calls.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.obs.registry import SECONDS_BUCKETS, MetricsRegistry

_stack = threading.local()


def current_stack() -> List[str]:
    """Names of the active spans in this thread, outermost first."""
    return list(getattr(_stack, "names", ()))


def current_span() -> Optional[str]:
    """The innermost active span name, or ``None`` outside any span."""
    names = getattr(_stack, "names", None)
    return names[-1] if names else None


class Span:
    """One timed phase; re-usable but not re-entrant."""

    __slots__ = ("name", "registry", "wall_s", "cpu_s", "_wall0", "_cpu0")

    def __init__(self, name: str, registry: MetricsRegistry):
        self.name = name
        self.registry = registry
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def __enter__(self) -> "Span":
        names = getattr(_stack, "names", None)
        if names is None:
            names = _stack.names = []
        names.append(self.name)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        names = getattr(_stack, "names", None)
        if names and names[-1] == self.name:
            names.pop()
        registry = self.registry
        registry.histogram(f"span.{self.name}.wall_seconds", SECONDS_BUCKETS).observe(
            self.wall_s
        )
        registry.histogram(f"span.{self.name}.cpu_seconds", SECONDS_BUCKETS).observe(
            self.cpu_s
        )
        return False


class NullSpan:
    """Stateless no-op span; one shared instance serves every call site."""

    __slots__ = ()
    name = "<null>"
    wall_s = 0.0
    cpu_s = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpan()
