"""The metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` lives per process (module-level in
:mod:`repro.obs`); instruments are plain Python objects with no locks, so
single-threaded hot paths pay one dict lookup to fetch an instrument and
one attribute update to record.  Cross-*process* aggregation is explicit:
worker processes record into a fresh registry (see ``obs.collect``),
return its :meth:`~MetricsRegistry.snapshot`, and the parent merges the
snapshots back **in input order** via :meth:`~MetricsRegistry.merge` — so
a parallel run aggregates to exactly the serial run's numbers for any
worker split (property-tested in ``tests/test_obs.py``).

Merge semantics:

* counters add;
* histograms add per-bucket counts, counts, and sums; min/max combine;
  bucket bounds must match exactly (they are part of the metric identity);
* gauges are last-write-wins: a snapshot that ever set the gauge
  overwrites the current value, which is deterministic because merges
  happen in input order.

When observability is disabled (``REPRO_OBS=0``) callers never see these
classes: :mod:`repro.obs` hands out the shared no-op twins below, whose
methods are empty — the instrumentation compiles down to a handful of
no-op calls on hot paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bounds for durations in seconds: log-spaced from
#: 10 microseconds to 5 minutes.  The catch-all +inf bucket is implicit.
SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Default bounds for small integer sizes (batch occupancy, queue depth).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (queue depth, live model version)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper edges; an observation lands in the first
    bucket whose bound is >= the value, or the implicit +inf bucket.  Fixed
    bounds make cross-process merging exact: two histograms of the same
    metric always add bucket-by-bucket.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = SECONDS_BUCKETS):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # bisect on the bucket bounds
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Process-wide collection of named instruments.

    Instruments are created on first use and identified by name; asking
    for an existing name returns the same object (asking with conflicting
    histogram bounds raises).  ``snapshot()`` produces a plain-dict,
    JSON-serializable view; ``merge()`` folds such a snapshot back in.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else SECONDS_BUCKETS
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != instrument.bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different bounds"
            )
        return instrument

    # -- snapshot / merge ----------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """JSON-serializable view of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "updates": g.updates}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a worker snapshot into this registry (see module docstring)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, state in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if state.get("updates", 0):
                gauge.value = float(state["value"])
            gauge.updates += int(state.get("updates", 0))
        for name, state in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, state["bounds"])
            if list(histogram.bounds) != [float(b) for b in state["bounds"]]:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds differ"
                )
            histogram.counts = [
                a + int(b) for a, b in zip(histogram.counts, state["counts"])
            ]
            histogram.count += int(state["count"])
            histogram.sum += float(state["sum"])
            if state.get("min") is not None:
                histogram.min = min(histogram.min, float(state["min"]))
            if state.get("max") is not None:
                histogram.max = max(histogram.max, float(state["max"]))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def instruments(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )


# -- no-op twins (handed out when REPRO_OBS=0) ------------------------------------------


class NullCounter:
    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0.0
    updates = 0

    def set(self, value: float) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    name = "<null>"
    bounds: Tuple[float, ...] = ()
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass


#: Shared stateless singletons: every disabled call site gets the same
#: object, so the no-op mode is testable by identity.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
