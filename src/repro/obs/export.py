"""Exporters: machine-readable JSONL files and Prometheus-style text.

JSONL is the CI interchange format: every benchmark and experiment run
appends one line per instrument to a file under the report directory
(``reports/`` by default, ``$REPRO_REPORT_DIR`` to override), and
``scripts/check_bench.py`` consumes those files to gate regressions.
Each line is self-describing::

    {"run": "kernels", "ts": ..., "type": "counter", "name": "...", ...}

The Prometheus dump is the human/scrape format served by the prediction
server's ``metrics`` op (``python -m repro.experiments serve
--metrics-dump`` fetches and prints it): counters and gauges one line
each, histograms as cumulative ``_bucket{le="..."}`` series with ``_sum``
and ``_count``, names sanitized to the ``[a-zA-Z0-9_]`` metric charset.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Dict, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def default_report_dir() -> Optional[Path]:
    """The report directory (created on demand), or ``None`` if disabled.

    Resolution matches ``python -m repro.experiments``: ``$REPRO_REPORT_DIR``
    wins, ``-`` disables report files entirely, default is ``reports/`` at
    the current working directory.
    """
    raw = os.environ.get("REPRO_REPORT_DIR", "reports")
    if raw == "-":
        return None
    path = Path(raw)
    path.mkdir(parents=True, exist_ok=True)
    return path


def snapshot_to_jsonl(
    snapshot: Dict[str, dict], run: str, timestamp: Optional[float] = None
) -> str:
    """Render a registry snapshot as JSONL (one metric per line)."""
    ts = round(time.time() if timestamp is None else timestamp, 3)
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(
            {"run": run, "ts": ts, "type": "counter", "name": name, "value": value}
        )
    for name, state in snapshot.get("gauges", {}).items():
        lines.append(
            {
                "run": run,
                "ts": ts,
                "type": "gauge",
                "name": name,
                "value": state["value"],
                "updates": state["updates"],
            }
        )
    for name, state in snapshot.get("histograms", {}).items():
        lines.append(
            {
                "run": run,
                "ts": ts,
                "type": "histogram",
                "name": name,
                "count": state["count"],
                "sum": state["sum"],
                "min": state["min"],
                "max": state["max"],
                "mean": state["sum"] / state["count"] if state["count"] else 0.0,
                "bounds": state["bounds"],
                "counts": state["counts"],
            }
        )
    return "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)


def write_jsonl(
    snapshot: Dict[str, dict],
    path,
    run: str,
    append: bool = False,
) -> Path:
    """Write (or append) a snapshot's JSONL rendering to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = snapshot_to_jsonl(snapshot, run)
    with open(path, "a" if append else "w") as handle:
        handle.write(text)
    return path


def read_jsonl(path) -> list:
    """Parse a metrics JSONL file back into a list of records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _label_text(labels: Optional[Dict[str, str]], extra: str = "") -> str:
    """Render a ``{k="v",...}`` label block (empty string when no labels)."""
    parts = [f'{k}="{v}"' for k, v in (labels or {}).items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _emit_snapshot(
    out: list,
    snapshot: Dict[str, dict],
    labels: Optional[Dict[str, str]],
    emit_type: bool = True,
) -> None:
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name)
        if emit_type:
            out.append(f"# TYPE {metric} counter")
        out.append(f"{metric}{_label_text(labels)} {value}")
    for name, state in snapshot.get("gauges", {}).items():
        metric = _metric_name(name)
        if emit_type:
            out.append(f"# TYPE {metric} gauge")
        out.append(f"{metric}{_label_text(labels)} {state['value']}")
    for name, state in snapshot.get("histograms", {}).items():
        metric = _metric_name(name)
        if emit_type:
            out.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(state["bounds"], state["counts"]):
            cumulative += count
            le = _label_text(labels, f'le="{bound}"')
            out.append(f"{metric}_bucket{le} {cumulative}")
        le = _label_text(labels, 'le="+Inf"')
        out.append(f"{metric}_bucket{le} {state['count']}")
        out.append(f"{metric}_sum{_label_text(labels)} {state['sum']}")
        out.append(f"{metric}_count{_label_text(labels)} {state['count']}")


def prometheus_text(
    snapshot: Dict[str, dict], labels: Optional[Dict[str, str]] = None
) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    ``labels`` are attached to every sample — shard workers label their
    dump with ``{"shard": "<i>"}`` so a scrape of the fleet distinguishes
    per-shard accept/batch series.
    """
    out: list = []
    _emit_snapshot(out, snapshot, labels)
    return "\n".join(out) + ("\n" if out else "")


def prometheus_text_multi(series) -> str:
    """Render several labeled snapshots as one exposition document.

    ``series`` is an iterable of ``(labels, snapshot)`` pairs; the
    supervisor uses it to expose the whole fleet (one ``shard="<i>"``
    sample set per worker) without repeating ``# TYPE`` headers for
    metrics that appear in every shard.
    """
    out: list = []
    seen_types: set = set()
    for labels, snapshot in series:
        filtered = {
            kind: {
                name: state
                for name, state in snapshot.get(kind, {}).items()
            }
            for kind in ("counters", "gauges", "histograms")
        }
        # Emit TYPE headers only for metrics not yet declared.
        for kind in ("counters", "gauges", "histograms"):
            first = {
                name: state
                for name, state in filtered[kind].items()
                if (kind, name) not in seen_types
            }
            rest = {
                name: state
                for name, state in filtered[kind].items()
                if (kind, name) in seen_types
            }
            if first:
                _emit_snapshot(out, {kind: first}, labels, emit_type=True)
            if rest:
                _emit_snapshot(out, {kind: rest}, labels, emit_type=False)
            seen_types.update((kind, name) for name in filtered[kind])
    return "\n".join(out) + ("\n" if out else "")
