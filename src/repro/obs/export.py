"""Exporters: machine-readable JSONL files and Prometheus-style text.

JSONL is the CI interchange format: every benchmark and experiment run
appends one line per instrument to a file under the report directory
(``reports/`` by default, ``$REPRO_REPORT_DIR`` to override), and
``scripts/check_bench.py`` consumes those files to gate regressions.
Each line is self-describing::

    {"run": "kernels", "ts": ..., "type": "counter", "name": "...", ...}

The Prometheus dump is the human/scrape format served by the prediction
server's ``metrics`` op (``python -m repro.experiments serve
--metrics-dump`` fetches and prints it): counters and gauges one line
each, histograms as cumulative ``_bucket{le="..."}`` series with ``_sum``
and ``_count``, names sanitized to the ``[a-zA-Z0-9_]`` metric charset.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Dict, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def default_report_dir() -> Optional[Path]:
    """The report directory (created on demand), or ``None`` if disabled.

    Resolution matches ``python -m repro.experiments``: ``$REPRO_REPORT_DIR``
    wins, ``-`` disables report files entirely, default is ``reports/`` at
    the current working directory.
    """
    raw = os.environ.get("REPRO_REPORT_DIR", "reports")
    if raw == "-":
        return None
    path = Path(raw)
    path.mkdir(parents=True, exist_ok=True)
    return path


def snapshot_to_jsonl(
    snapshot: Dict[str, dict], run: str, timestamp: Optional[float] = None
) -> str:
    """Render a registry snapshot as JSONL (one metric per line)."""
    ts = round(time.time() if timestamp is None else timestamp, 3)
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(
            {"run": run, "ts": ts, "type": "counter", "name": name, "value": value}
        )
    for name, state in snapshot.get("gauges", {}).items():
        lines.append(
            {
                "run": run,
                "ts": ts,
                "type": "gauge",
                "name": name,
                "value": state["value"],
                "updates": state["updates"],
            }
        )
    for name, state in snapshot.get("histograms", {}).items():
        lines.append(
            {
                "run": run,
                "ts": ts,
                "type": "histogram",
                "name": name,
                "count": state["count"],
                "sum": state["sum"],
                "min": state["min"],
                "max": state["max"],
                "mean": state["sum"] / state["count"] if state["count"] else 0.0,
                "bounds": state["bounds"],
                "counts": state["counts"],
            }
        )
    return "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)


def write_jsonl(
    snapshot: Dict[str, dict],
    path,
    run: str,
    append: bool = False,
) -> Path:
    """Write (or append) a snapshot's JSONL rendering to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = snapshot_to_jsonl(snapshot, run)
    with open(path, "a" if append else "w") as handle:
        handle.write(text)
    return path


def read_jsonl(path) -> list:
    """Parse a metrics JSONL file back into a list of records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def prometheus_text(snapshot: Dict[str, dict]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    out = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name)
        out.append(f"# TYPE {metric} counter")
        out.append(f"{metric} {value}")
    for name, state in snapshot.get("gauges", {}).items():
        metric = _metric_name(name)
        out.append(f"# TYPE {metric} gauge")
        out.append(f"{metric} {state['value']}")
    for name, state in snapshot.get("histograms", {}).items():
        metric = _metric_name(name)
        out.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(state["bounds"], state["counts"]):
            cumulative += count
            out.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        out.append(f'{metric}_bucket{{le="+Inf"}} {state["count"]}')
        out.append(f"{metric}_sum {state['sum']}")
        out.append(f"{metric}_count {state['count']}")
    return "\n".join(out) + ("\n" if out else "")
