"""``repro.obs`` — stdlib-only observability for the whole pipeline.

The paper's methodology is an always-on loop (profile, re-specify via
genetic search, redeploy); this package is how the loop watches itself:

* a process-wide :class:`~repro.obs.registry.MetricsRegistry` of
  counters, gauges, and fixed-bucket histograms (lock-free; explicit
  in-order merge aggregates worker-process snapshots deterministically —
  see :func:`collect` and ``repro.parallel(collect_metrics=True)``);
* lightweight trace :func:`span`\\ s recording wall/CPU time per phase
  into histograms, with a per-thread context stack;
* exporters: JSONL files under ``reports/`` for the CI regression gate
  (``scripts/check_bench.py``) and a Prometheus-style text dump served by
  the prediction server's ``metrics`` op.

Everything funnels through the module-level accessors below so call sites
stay one-liners::

    from repro import obs

    obs.counter("engine.gram_fits").inc()
    obs.gauge("serve.queue_depth").set(len(queue))
    with obs.span("ga.generation"):
        ...

Disabling: ``REPRO_OBS=0`` in the environment (read at import), or
:func:`configure` at runtime.  Disabled accessors hand out shared no-op
singletons (``NULL_COUNTER`` etc.), so instrumented hot paths degrade to
a few empty method calls — benchmarked at <2% on the GA smoke benchmark
even when *enabled*, and instrumentation-free when disabled
(``tests/test_obs.py`` asserts the no-op identities).
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional, Sequence

from repro.obs.export import (
    default_report_dir,
    prometheus_text,
    prometheus_text_multi,
    read_jsonl,
    snapshot_to_jsonl,
    write_jsonl,
)
from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span, current_span, current_stack

OBS_ENV = "REPRO_OBS"

_enabled = os.environ.get(OBS_ENV, "1").strip() != "0"
_registry = MetricsRegistry()


def enabled() -> bool:
    """Is observability collecting right now?"""
    return _enabled


def configure(enabled: Optional[bool] = None) -> None:
    """Turn collection on/off at runtime (tests, overhead benchmarks).

    Instrument handles are resolved through the accessors below at call
    time, except where call sites cache them (documented per site); cached
    handles keep the mode they were created under.
    """
    global _enabled
    if enabled is not None:
        _enabled = bool(enabled)


def get_registry() -> MetricsRegistry:
    """The live process-wide registry (even when collection is disabled)."""
    return _registry


def reset() -> None:
    """Clear every instrument in the process-wide registry."""
    _registry.reset()


def counter(name: str) -> Counter:
    return _registry.counter(name) if _enabled else NULL_COUNTER


def gauge(name: str) -> Gauge:
    return _registry.gauge(name) if _enabled else NULL_GAUGE


def histogram(name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
    return _registry.histogram(name, bounds) if _enabled else NULL_HISTOGRAM


def span(name: str) -> Span:
    """A context manager timing one phase (no-op singleton when disabled)."""
    return Span(name, _registry) if _enabled else NULL_SPAN


def snapshot() -> dict:
    """JSON-serializable state of the process-wide registry."""
    return _registry.snapshot()


def merge(snapshot_dict: dict) -> None:
    """Fold a worker snapshot into the process-wide registry."""
    if _enabled:
        _registry.merge(snapshot_dict)


@contextlib.contextmanager
def collect() -> Iterator[MetricsRegistry]:
    """Record into a *fresh* registry for the duration of the block.

    The worker-process half of deterministic aggregation: everything the
    block records lands in an isolated registry (the yielded object) whose
    snapshot the caller ships back for in-order merging — crucially *not*
    polluted by counts inherited from the parent process under fork.  The
    process-wide registry is restored on exit.
    """
    global _registry
    previous = _registry
    fresh = MetricsRegistry()
    _registry = fresh
    try:
        yield fresh
    finally:
        _registry = previous


def export_jsonl(path, run: str, append: bool = False):
    """Write the live registry's snapshot as JSONL to ``path``."""
    return write_jsonl(snapshot(), path, run, append=append)


def prometheus_dump(labels: Optional[dict] = None) -> str:
    """The live registry in Prometheus text exposition format.

    ``labels`` (e.g. ``{"shard": "3"}``) are attached to every sample.
    """
    return prometheus_text(snapshot(), labels=labels)


__all__ = [
    "OBS_ENV",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "collect",
    "configure",
    "counter",
    "current_span",
    "current_stack",
    "default_report_dir",
    "enabled",
    "export_jsonl",
    "gauge",
    "get_registry",
    "histogram",
    "merge",
    "prometheus_dump",
    "prometheus_text",
    "prometheus_text_multi",
    "read_jsonl",
    "reset",
    "snapshot",
    "snapshot_to_jsonl",
    "span",
    "write_jsonl",
]
