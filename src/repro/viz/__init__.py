"""Dependency-free SVG rendering of the paper's figures.

``repro.viz.svg`` is a tiny chart library (lines, histograms, boxplots,
heatmaps, grouped bars); ``repro.viz.figures`` maps experiment results to
paper-style charts.  Used by ``python -m repro.experiments <id> --svg DIR``.
"""

from repro.viz.svg import (
    boxplot_rows,
    document,
    grouped_bars,
    heatmap,
    histogram,
    line_chart,
)
from repro.viz.figures import BUILDERS, render

__all__ = [
    "boxplot_rows",
    "document",
    "grouped_bars",
    "heatmap",
    "histogram",
    "line_chart",
    "BUILDERS",
    "render",
]
