"""Figure builders: experiment results -> paper-style SVG charts.

Each builder takes the result object returned by the corresponding
``repro.experiments.<driver>.run()`` and produces one or more SVG
documents.  :func:`render` dispatches by experiment id and writes files
to a directory — this is what ``python -m repro.experiments <id> --svg DIR``
calls.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List


from repro.viz.svg import (
    boxplot_rows,
    grouped_bars,
    heatmap,
    histogram,
    line_chart,
)


def fig03(result) -> Dict[str, str]:
    raw_counts, raw_edges = result.raw_histogram
    tr_counts, tr_edges = result.transformed_histogram
    return {
        "fig03a_raw": histogram(
            raw_counts.tolist(), raw_edges.tolist(),
            "Figure 3(a): sum of re-use distances per shard",
            "sum of 256B-block re-use distances",
        ),
        "fig03b_stabilized": histogram(
            tr_counts.tolist(), tr_edges.tolist(),
            "Figure 3(b): variance-stabilized x^(1/5)",
            "(sum of re-use distances)^(1/5)",
        ),
    }


def fig04(result) -> Dict[str, str]:
    return {
        "fig04_interactions": heatmap(
            result.counts,
            list(result.names),
            list(result.names),
            f"Figure 4: interaction frequency in {result.n_models} best models",
            annotate=False,
        )
    }


def fig05(result) -> Dict[str, str]:
    return {
        "fig05_convergence": line_chart(
            {"sum of per-app median errors": (result.generations, result.sum_errors)},
            "Figure 5: genetic search convergence",
            "generation",
            "sum of median errors",
        )
    }


def fig07_08(result) -> Dict[str, str]:
    rows = {}
    for scenario in (
        result.interpolation,
        result.variant_extrapolation,
        result.new_software,
        result.new_hardware_software,
    ):
        stats = scenario.errors
        rows[f"{scenario.name} (rho={scenario.correlation:.2f})"] = (
            stats.minimum, stats.q1, stats.median, stats.q3, stats.maximum
        )
    return {
        "fig07_errors": boxplot_rows(
            rows, "Figures 7-8: prediction error by scenario",
            "absolute percentage error",
        )
    }


def fig10(result) -> Dict[str, str]:
    rows = {
        f"{app} (rho={result.per_application_rho[app]:.2f})": (
            stats.minimum, stats.q1, stats.median, stats.q3, stats.maximum
        )
        for app, stats in result.per_application.items()
    }
    return {
        "fig10_shard_extrapolation": boxplot_rows(
            rows, "Figure 10: shard-level extrapolation error",
            "absolute percentage error",
        )
    }


def fig12_13(result) -> Dict[str, str]:
    return {
        "fig12_blocking": grouped_bars(
            {
                str(k): {"block rows": result.by_brow[k], "block cols": result.by_bcol[k]}
                for k in sorted(result.by_brow)
            },
            "Figure 12: SpMV performance vs. block size (raefsky3)",
            "average Mflop/s",
        ),
        "fig13_cache": grouped_bars(
            {str(k): {"line size (B)": v} for k, v in result.by_line.items()},
            "Figure 13: SpMV performance vs. cache line size",
            "average Mflop/s",
        ),
    }


def fig14(result) -> Dict[str, str]:
    rows = {}
    for name, acc in result.per_matrix.items():
        stats = acc.performance
        rows[name] = (stats.minimum, stats.q1, stats.median, stats.q3, stats.maximum)
    return {
        "fig14_accuracy": boxplot_rows(
            rows, "Figure 14: SpMV performance prediction error",
            "absolute percentage error",
        )
    }


def fig15(result) -> Dict[str, str]:
    block_labels = [str(b) for b in range(1, 9)]
    base = result.profiled[0, 0]
    base_pred = result.predicted[0, 0]
    return {
        "fig15a_profiled": heatmap(
            (result.profiled / base).tolist(), block_labels, block_labels,
            "Figure 15(a): profiled speedup over 1x1 (nasasrb)",
        ),
        "fig15b_predicted": heatmap(
            (result.predicted / base_pred).tolist(), block_labels, block_labels,
            "Figure 15(b): predicted speedup over 1x1 (nasasrb)",
        ),
    }


def fig16(result) -> Dict[str, str]:
    speed = {
        name: {
            "application": tuning.application.speedup,
            "architecture": tuning.architecture.speedup,
            "coordinated": tuning.coordinated.speedup,
        }
        for name, tuning in result.per_matrix.items()
    }
    energy = {
        name: {
            "baseline": tuning.baseline.nj_per_flop,
            "application": tuning.application.nj_per_flop,
            "architecture": tuning.architecture.nj_per_flop,
            "coordinated": tuning.coordinated.nj_per_flop,
        }
        for name, tuning in result.per_matrix.items()
    }
    return {
        "fig16a_speedup": grouped_bars(
            speed, "Figure 16(a): speedup by tuning strategy", "speedup (x)"
        ),
        "fig16b_energy": grouped_bars(
            energy, "Figure 16(b): energy by tuning strategy", "nJ/Flop"
        ),
    }


#: Experiment id -> figure builder.  Ids match repro.experiments.__main__.
BUILDERS: Dict[str, Callable] = {
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig07-08": fig07_08,
    "fig10": fig10,
    "fig12-13": fig12_13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
}


def render(experiment_id: str, result, out_dir) -> List[Path]:
    """Render the figures of one experiment into ``out_dir``.

    Returns the written paths; experiments without a figure builder (the
    purely tabular ones) return an empty list.
    """
    builder = BUILDERS.get(experiment_id)
    if builder is None:
        return []
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    for stem, svg_text in builder(result).items():
        path = out / f"{stem}.svg"
        path.write_text(svg_text)
        written.append(path)
    return written
