"""A small dependency-free SVG chart library.

matplotlib is unavailable in this environment, and the experiment drivers
only need a handful of chart types to render the paper's figures: line
charts (Figure 5), histograms (Figure 3), boxplot rows (Figures 7, 10, 14),
heatmaps (Figures 4, 15), and grouped bars (Figures 12, 13, 16).  This
module provides exactly those, emitting self-contained SVG documents.

All charts share one geometry helper (:class:`Frame`) that maps data
coordinates onto a padded pixel viewport and draws axes with tick labels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

WIDTH = 640
HEIGHT = 400
MARGIN_LEFT = 70
MARGIN_RIGHT = 20
MARGIN_TOP = 44
MARGIN_BOTTOM = 52

#: A small colorblind-friendly cycle.
PALETTE = ("#3a6ea5", "#d1495b", "#66a182", "#edae49", "#6f5e76", "#2e4057")


def _fmt(value: float) -> str:
    """Compact numeric formatting for tick labels."""
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.2f}"


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round-ish tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n - 1)
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            raw = step * magnitude
            break
    first = (lo // raw) * raw
    ticks = []
    value = first
    while value <= hi + raw * 1e-9:
        if value >= lo - raw * 1e-9:
            ticks.append(round(value, 10))
        value += raw
    return ticks or [lo, hi]


@dataclasses.dataclass
class Frame:
    """Maps data space onto the padded SVG viewport."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    width: int = WIDTH
    height: int = HEIGHT

    def __post_init__(self):
        if self.x_max <= self.x_min:
            self.x_max = self.x_min + 1.0
        if self.y_max <= self.y_min:
            self.y_max = self.y_min + 1.0

    @property
    def plot_width(self) -> float:
        return self.width - MARGIN_LEFT - MARGIN_RIGHT

    @property
    def plot_height(self) -> float:
        return self.height - MARGIN_TOP - MARGIN_BOTTOM

    def x(self, value: float) -> float:
        frac = (value - self.x_min) / (self.x_max - self.x_min)
        return MARGIN_LEFT + frac * self.plot_width

    def y(self, value: float) -> float:
        frac = (value - self.y_min) / (self.y_max - self.y_min)
        return self.height - MARGIN_BOTTOM - frac * self.plot_height

    def axes(self, title: str, x_label: str, y_label: str,
             x_tick_labels: Optional[Dict[float, str]] = None) -> List[str]:
        """Axis lines, ticks, labels, and the chart title."""
        parts = [
            f'<rect x="0" y="0" width="{self.width}" height="{self.height}" '
            'fill="white"/>',
            f'<text x="{self.width / 2}" y="22" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{escape(title)}</text>',
        ]
        x0, y0 = MARGIN_LEFT, self.height - MARGIN_BOTTOM
        x1, y1 = self.width - MARGIN_RIGHT, MARGIN_TOP
        parts.append(
            f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>'
        )
        parts.append(
            f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>'
        )
        if x_tick_labels is None:
            x_tick_labels = {t: _fmt(t) for t in _ticks(self.x_min, self.x_max)}
        for value, label in x_tick_labels.items():
            px = self.x(value)
            if not (x0 - 1 <= px <= x1 + 1):
                continue
            parts.append(
                f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" y2="{y0 + 5}" '
                'stroke="black"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{y0 + 18}" text-anchor="middle" '
                f'font-size="11">{escape(label)}</text>'
            )
        for value in _ticks(self.y_min, self.y_max):
            py = self.y(value)
            if not (y1 - 1 <= py <= y0 + 1):
                continue
            parts.append(
                f'<line x1="{x0 - 5}" y1="{py:.1f}" x2="{x0}" y2="{py:.1f}" '
                'stroke="black"/>'
            )
            parts.append(
                f'<text x="{x0 - 8}" y="{py + 4:.1f}" text-anchor="end" '
                f'font-size="11">{_fmt(value)}</text>'
            )
            parts.append(
                f'<line x1="{x0}" y1="{py:.1f}" x2="{x1}" y2="{py:.1f}" '
                'stroke="#dddddd" stroke-width="0.5"/>'
            )
        parts.append(
            f'<text x="{(x0 + x1) / 2}" y="{self.height - 12}" '
            f'text-anchor="middle" font-size="12">{escape(x_label)}</text>'
        )
        parts.append(
            f'<text x="16" y="{(y0 + y1) / 2}" text-anchor="middle" '
            f'font-size="12" transform="rotate(-90 16 {(y0 + y1) / 2})">'
            f"{escape(y_label)}</text>"
        )
        return parts


def document(parts: Sequence[str], width: int = WIDTH, height: int = HEIGHT) -> str:
    """Wrap drawing parts into a complete SVG document."""
    body = "\n".join(parts)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" font-family="Helvetica, Arial, sans-serif">\n'
        f"{body}\n</svg>\n"
    )


def line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    title: str,
    x_label: str,
    y_label: str,
) -> str:
    """Multi-series line chart; series maps name -> (xs, ys)."""
    if not series:
        raise ValueError("line_chart needs at least one series")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    frame = Frame(min(all_x), max(all_x), min(min(all_y), 0), max(all_y) * 1.05)
    parts = frame.axes(title, x_label, y_label)
    for i, (name, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        points = " ".join(f"{frame.x(x):.1f},{frame.y(y):.1f}" for x, y in zip(xs, ys))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="2"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{frame.x(x):.1f}" cy="{frame.y(y):.1f}" r="2.5" '
                f'fill="{color}"/>'
            )
        parts.append(
            f'<text x="{WIDTH - MARGIN_RIGHT - 6}" y="{MARGIN_TOP + 16 + 16 * i}" '
            f'text-anchor="end" font-size="11" fill="{color}">{escape(name)}</text>'
        )
    return document(parts)


def histogram(
    counts: Sequence[float],
    edges: Sequence[float],
    title: str,
    x_label: str,
    y_label: str = "shards",
) -> str:
    """Histogram from numpy-style (counts, edges)."""
    if len(edges) != len(counts) + 1:
        raise ValueError("edges must have one more entry than counts")
    frame = Frame(edges[0], edges[-1], 0, max(max(counts), 1) * 1.05)
    parts = frame.axes(title, x_label, y_label)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        x = frame.x(lo)
        w = max(frame.x(hi) - x - 1, 0.5)
        y = frame.y(count)
        h = frame.y(0) - y
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{PALETTE[0]}" fill-opacity="0.85"/>'
        )
    return document(parts)


def boxplot_rows(
    rows: Dict[str, Tuple[float, float, float, float, float]],
    title: str,
    x_label: str,
) -> str:
    """Horizontal boxplots; rows maps label -> (min, q1, median, q3, max)."""
    if not rows:
        raise ValueError("boxplot_rows needs at least one row")
    hi = max(stats[4] for stats in rows.values())
    frame = Frame(0, hi * 1.05, 0, len(rows))
    labels = {}
    parts = frame.axes(title, x_label, "", x_tick_labels=None)
    for i, (label, (lo, q1, med, q3, top)) in enumerate(rows.items()):
        cy = frame.y(i + 0.5)
        half = min(14.0, frame.plot_height / (2.5 * len(rows)))
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<line x1="{frame.x(lo):.1f}" y1="{cy:.1f}" '
            f'x2="{frame.x(top):.1f}" y2="{cy:.1f}" stroke="{color}"/>'
        )
        for whisker in (lo, top):
            parts.append(
                f'<line x1="{frame.x(whisker):.1f}" y1="{cy - half:.1f}" '
                f'x2="{frame.x(whisker):.1f}" y2="{cy + half:.1f}" stroke="{color}"/>'
            )
        parts.append(
            f'<rect x="{frame.x(q1):.1f}" y="{cy - half:.1f}" '
            f'width="{max(frame.x(q3) - frame.x(q1), 0.5):.1f}" '
            f'height="{2 * half:.1f}" fill="{color}" fill-opacity="0.35" '
            f'stroke="{color}"/>'
        )
        parts.append(
            f'<line x1="{frame.x(med):.1f}" y1="{cy - half:.1f}" '
            f'x2="{frame.x(med):.1f}" y2="{cy + half:.1f}" stroke="{color}" '
            'stroke-width="2.5"/>'
        )
        parts.append(
            f'<text x="{MARGIN_LEFT - 8}" y="{cy + 4:.1f}" text-anchor="end" '
            f'font-size="11">{escape(label)}</text>'
        )
        labels[label] = cy
    return document(parts)


def heatmap(
    grid,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: str,
    annotate: bool = True,
) -> str:
    """Matrix heatmap with optional cell annotations."""
    n_rows = len(row_labels)
    n_cols = len(col_labels)
    values = [[float(grid[i][j]) for j in range(n_cols)] for i in range(n_rows)]
    flat = [v for row in values for v in row]
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0
    frame = Frame(0, n_cols, 0, n_rows)
    parts = frame.axes(
        title, "", "",
        x_tick_labels={j + 0.5: str(lbl) for j, lbl in enumerate(col_labels)},
    )
    for i in range(n_rows):
        for j in range(n_cols):
            frac = (values[i][j] - lo) / span
            # White -> deep blue ramp.
            shade = int(235 - frac * 165)
            x = frame.x(j)
            y = frame.y(n_rows - i)  # row 0 at the top
            w = frame.x(j + 1) - x
            h = frame.y(n_rows - i - 1) - y
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
                f'fill="rgb({shade},{shade + int(frac * 10)},235)" stroke="#f5f5f5"/>'
            )
            if annotate:
                parts.append(
                    f'<text x="{x + w / 2:.1f}" y="{y + h / 2 + 4:.1f}" '
                    f'text-anchor="middle" font-size="10">'
                    f"{_fmt(values[i][j])}</text>"
                )
    for i, label in enumerate(row_labels):
        cy = (frame.y(n_rows - i) + frame.y(n_rows - i - 1)) / 2
        parts.append(
            f'<text x="{MARGIN_LEFT - 8}" y="{cy + 4:.1f}" text-anchor="end" '
            f'font-size="11">{escape(str(label))}</text>'
        )
    return document(parts)


def grouped_bars(
    groups: Dict[str, Dict[str, float]],
    title: str,
    y_label: str,
) -> str:
    """Grouped bar chart; groups maps group label -> {series label: value}."""
    if not groups:
        raise ValueError("grouped_bars needs at least one group")
    series_names: List[str] = []
    for entries in groups.values():
        for name in entries:
            if name not in series_names:
                series_names.append(name)
    hi = max(v for entries in groups.values() for v in entries.values())
    frame = Frame(0, len(groups), 0, hi * 1.1)
    parts = frame.axes(
        title, "", y_label,
        x_tick_labels={
            i + 0.5: label for i, label in enumerate(groups)
        },
    )
    band = frame.plot_width / len(groups)
    bar = band * 0.8 / max(1, len(series_names))
    for g, (group, entries) in enumerate(groups.items()):
        base_x = frame.x(g) + band * 0.1
        for s, name in enumerate(series_names):
            value = entries.get(name)
            if value is None:
                continue
            color = PALETTE[s % len(PALETTE)]
            y = frame.y(value)
            parts.append(
                f'<rect x="{base_x + s * bar:.1f}" y="{y:.1f}" '
                f'width="{bar * 0.92:.1f}" height="{frame.y(0) - y:.1f}" '
                f'fill="{color}"/>'
            )
    for s, name in enumerate(series_names):
        color = PALETTE[s % len(PALETTE)]
        parts.append(
            f'<text x="{WIDTH - MARGIN_RIGHT - 6}" y="{MARGIN_TOP + 16 + 16 * s}" '
            f'text-anchor="end" font-size="11" fill="{color}">{escape(name)}</text>'
        )
    return document(parts)
