"""Unit tests for the instruction-set substrate."""

import numpy as np
import pytest

from repro.isa import FU_LATENCY, OpClass, Trace, TRACE_DTYPE, empty_trace, opclass_names
from repro.isa.instructions import FU_ISSUE_INTERVAL, N_OPCLASSES


class TestOpClass:
    def test_six_classes_match_table1_mix(self):
        assert N_OPCLASSES == 6

    def test_values_are_dense_from_zero(self):
        assert sorted(int(c) for c in OpClass) == list(range(6))

    def test_names_ordered_by_value(self):
        names = opclass_names()
        assert names[0] == "CONTROL"
        assert names[5] == "MEMORY"
        assert len(names) == 6

    def test_latency_table_covers_all_classes(self):
        assert len(FU_LATENCY) == N_OPCLASSES
        assert (FU_LATENCY >= 1.0).all()

    def test_issue_interval_table_covers_all_classes(self):
        assert len(FU_ISSUE_INTERVAL) == N_OPCLASSES
        assert (FU_ISSUE_INTERVAL >= 1.0).all()

    def test_muldiv_slower_than_alu(self):
        assert FU_LATENCY[OpClass.FP_MULDIV] > FU_LATENCY[OpClass.FP_ALU]
        assert FU_LATENCY[OpClass.INT_MULDIV] > FU_LATENCY[OpClass.INT_ALU]


class TestEmptyTrace:
    def test_length(self):
        assert len(empty_trace(10)) == 10

    def test_zeroed(self):
        data = empty_trace(4)
        assert data["op"].sum() == 0
        assert data["addr"].sum() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            empty_trace(-1)

    def test_dtype(self):
        assert empty_trace(1).dtype == TRACE_DTYPE


class TestTrace:
    def _trace(self, n=10):
        data = empty_trace(n)
        data["op"] = np.arange(n) % 6
        data["addr"][data["op"] == int(OpClass.MEMORY)] = 64
        return Trace(data, "t")

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            Trace(np.zeros(4, dtype=np.int64))

    def test_len_and_repr(self):
        t = self._trace(12)
        assert len(t) == 12
        assert "12 instructions" in repr(t)

    def test_opclass_counts_sum_to_length(self):
        t = self._trace(13)
        assert t.opclass_counts().sum() == 13

    def test_opclass_counts_has_all_classes(self):
        assert len(self._trace().opclass_counts()) == 6

    def test_memory_mask(self):
        t = self._trace(12)
        assert t.memory_mask().sum() == 2  # ops 5 and 11

    def test_control_mask(self):
        t = self._trace(12)
        assert t.control_mask().sum() == 2  # ops 0 and 6

    def test_slice_view(self):
        t = self._trace(10)
        s = t.slice(2, 6)
        assert len(s) == 4
        assert (s.op == t.op[2:6]).all()

    def test_slice_bounds_checked(self):
        t = self._trace(10)
        with pytest.raises(IndexError):
            t.slice(5, 11)
        with pytest.raises(IndexError):
            t.slice(-1, 5)

    def test_shards_equal_length(self):
        t = self._trace(10)
        shards = t.shards(3)
        assert [len(s) for s in shards] == [3, 3, 3]  # remainder dropped

    def test_shards_cover_prefix(self):
        t = self._trace(9)
        shards = t.shards(3)
        joined = np.concatenate([s.op for s in shards])
        assert (joined == t.op[:9]).all()

    def test_shards_named(self):
        t = self._trace(6)
        assert t.shards(3)[1].name == "t/shard001"

    def test_shard_length_validated(self):
        with pytest.raises(ValueError):
            self._trace().shards(0)

    def test_iter_shards_matches_shards(self):
        t = self._trace(10)
        assert [s.name for s in t.iter_shards(2)] == [s.name for s in t.shards(2)]

    def test_concatenate(self):
        a, b = self._trace(4), self._trace(6)
        joined = Trace.concatenate([a, b], "j")
        assert len(joined) == 10
        assert joined.name == "j"

    def test_concatenate_empty(self):
        assert len(Trace.concatenate([])) == 0
