"""Chaos suite: the serving stack under an armed :class:`FaultPlan`.

Every scenario injects a real fault — a reply dropped mid-frame, a stalled
dispatch, corrupted frame bytes, a full batch queue, a publisher killed
between write and link, a worker process killed mid-chunk — and asserts the
stack degrades the way DESIGN.md §8 promises: the client's retry policy
recovers, the server keeps serving, the registry quarantines and falls
back, and the GA result is bit-identical to the fault-free serial run.

``REPRO_CHAOS_SEED`` selects the fault/jitter seed (the CI chaos job runs
three fixed seeds); the module dumps the accumulated obs registry to
``reports/metrics_chaos_<seed>.jsonl`` so every injected fault is visible
in the uploaded artifact.
"""

import json
import socket
import struct

import asyncio
import os
import time

import pytest

from repro import faults, obs
from repro.core.genetic import GeneticSearch
from repro.faults import FaultPlan, InjectedFault, RetryPolicy
from repro.obs.export import default_report_dir, snapshot_to_jsonl
from repro.serve import (
    BatchConfig,
    ModelKey,
    ModelRegistry,
    ServeClient,
    ServerThread,
)
from repro.serve.bootstrap import build_service, demo_dataset, outlier_profiles
from repro.serve.registry import QUARANTINE_DIR

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Fast deterministic backoff so injected faults cost milliseconds.
FAST_RETRY = RetryPolicy(base_delay_s=0.01, max_delay_s=0.1, seed=CHAOS_SEED)

_LENGTH = struct.Struct(">I")


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(scope="module", autouse=True)
def _chaos_report():
    """Dump everything this module counted for the CI artifact upload."""
    yield
    report_dir = default_report_dir()
    if report_dir is None:
        return
    text = snapshot_to_jsonl(obs.snapshot(), run=f"chaos-seed{CHAOS_SEED}")
    (report_dir / f"metrics_chaos_{CHAOS_SEED}.jsonl").write_text(text + "\n")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    server, serving, registry = build_service(
        demo_dataset(seed=0),
        tmp_path_factory.mktemp("registry"),
        generations=1,
        population_size=6,
        batch_config=BatchConfig(max_batch=32, max_latency_s=0.001),
        request_deadline_s=0.3,
    )
    with ServerThread(server) as thread:
        yield server, serving, registry, thread.port
    serving.close()


@pytest.fixture
def client(service):
    *_, port = service
    with ServeClient(port=port, timeout=2.0, retry=FAST_RETRY) as c:
        yield c


def _count(name):
    return obs.counter(name).value


# -- client retry policy vs injected transport faults ----------------------------------


class TestClientRecovers:
    def test_reply_dropped_mid_frame(self, client):
        """The server dies mid-reply; the client reconnects and retries."""
        before_retries = _count("client.retries")
        before_drops = _count("serve.dropped_connections")
        plan = FaultPlan.parse("serve.write_frame=drop@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            assert client.ping()
        assert plan.injected_counts() == [1]
        assert _count("client.retries") >= before_retries + 1
        assert _count("serve.dropped_connections") >= before_drops + 1
        assert _count("faults.serve.write_frame") >= 1

    def test_delayed_dispatch_hits_request_deadline(self, client):
        """An injected stall trips the per-request deadline; the 408 is
        retryable and the second attempt answers instantly."""
        before_retries = _count("client.retries")
        before_deadline = _count("serve.deadline_timeouts")
        plan = FaultPlan.parse("serve.dispatch=delay:5.0@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            assert client.ping()
        assert plan.injected_counts() == [1]
        assert _count("serve.deadline_timeouts") >= before_deadline + 1
        assert _count("client.retries") >= before_retries + 1

    def test_corrupted_reply_frame(self, client):
        """Flipped bytes on the wire unframe the reply; the client tears
        the connection down and retries clean."""
        plan = FaultPlan.parse("serve.write_frame=corrupt@1", seed=CHAOS_SEED)
        with faults.armed(plan):
            reply = client.info()
        assert reply["ok"] and reply["model_version"] >= 1
        assert plan.injected_counts() == [1]
        assert _count("faults.action.corrupt") >= 1

    def test_queue_full_429_then_retry(self, client):
        """A transient 429 backs off on the same connection and succeeds."""
        before_retries = _count("client.retries")
        before_429 = _count("serve.rejected_429")
        plan = FaultPlan.parse(
            "serve.dispatch=raise:queue_full@1", seed=CHAOS_SEED
        )
        with faults.armed(plan):
            reply = client.predict([0.1, 0.2, 0.3], [1.0, 1.5])
        assert reply["ok"]
        assert plan.injected_counts() == [1]
        assert _count("serve.rejected_429") == before_429 + 1
        assert _count("client.retries") == before_retries + 1


# -- server-side degradation on hostile frames -----------------------------------------


def _raw_exchange(sock, frame):
    sock.sendall(frame)
    header = b""
    while len(header) < _LENGTH.size:
        chunk = sock.recv(_LENGTH.size - len(header))
        if not chunk:
            raise ConnectionError("closed")
        header += chunk
    (length,) = _LENGTH.unpack(header)
    body = b""
    while len(body) < length:
        body += sock.recv(length - len(body))
    return json.loads(body.decode("utf-8"))


class TestServerDegradation:
    def test_corrupt_body_gets_400_and_connection_survives(self, service):
        *_, port = service
        with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
            garbage = b"\x00{not json at all"
            reply = _raw_exchange(sock, _LENGTH.pack(len(garbage)) + garbage)
            assert reply == {
                "ok": False,
                "status": 400,
                "error": reply["error"],
            }
            # The framing survived, so the SAME connection still serves.
            good = json.dumps({"op": "ping"}).encode()
            reply = _raw_exchange(sock, _LENGTH.pack(len(good)) + good)
            assert reply["ok"]
        assert _count("serve.bad_frames") >= 1

    def test_bogus_length_prefix_gets_413_then_close(self, service):
        *_, port = service
        with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
            reply = _raw_exchange(sock, _LENGTH.pack(2**31))
            assert reply["ok"] is False and reply["status"] == 413
            # The stream cannot be re-framed after a bogus prefix: closed.
            assert sock.recv(1) == b""


# -- ServingManager: failed update degrades to the last-good model ---------------------


class TestUpdateDegradation:
    def test_failed_update_keeps_serving_then_recovers(self, tmp_path):
        ds = demo_dataset(seed=0)
        server, serving, registry = build_service(
            ds,
            tmp_path / "registry",
            generations=1,
            update_generations=1,
            population_size=6,
            min_update_profiles=8,
        )

        def frame(n, seed):
            return {
                "application": "newapp",
                "profiles": [
                    {"x": p.x.tolist(), "y": p.y.tolist(), "z": p.z}
                    for p in outlier_profiles("newapp", n=n, seed=seed)
                ],
            }

        async def scenario():
            v_before = serving.slot.version
            plan = FaultPlan.parse("serve.update=raise@1", seed=CHAOS_SEED)
            with faults.armed(plan):
                reply = await serving.handle_observe(frame(10, seed=99))
                assert reply["update_scheduled"]
                await serving.wait_for_update()
            assert plan.injected_counts() == [1]

            # Degraded, not down: the slot still holds the last-good model
            # and the failure is visible in stats, not raised anywhere.
            assert serving.stats.updates_failed == 1
            assert serving.stats.last_error.startswith("InjectedFault")
            assert serving.slot.version == v_before
            assert registry.latest_version(serving.key) == v_before
            assert serving.stats_dict()["last_error"] == serving.stats.last_error

            # The next update (fault plan exhausted) completes and swaps.
            reply = await serving.handle_observe(frame(10, seed=100))
            assert reply["update_scheduled"]
            await serving.wait_for_update()
            assert serving.stats.updates_completed == 1
            assert serving.stats.last_error is None
            assert serving.slot.version == v_before + 1
            return v_before

        try:
            asyncio.run(scenario())
        finally:
            serving.close()


# -- registry crash safety -------------------------------------------------------------


def _trained_model(seed=0):
    search = GeneticSearch(population_size=6, seed=seed, n_workers=1)
    ds = demo_dataset(n_apps=2, n_per_app=20, seed=seed)
    return search.run(ds, generations=1).best_model(ds)


class TestRegistryCrashSafety:
    KEY = ModelKey("demo", "chaos")

    def test_torn_publish_is_quarantined_and_previous_served(self, tmp_path):
        root = tmp_path / "registry"
        registry = ModelRegistry(root)
        registry.publish(self.KEY, _trained_model(seed=1))

        # Kill the publisher in the window between the durable tmp write
        # and the os.link that makes the version visible.
        plan = FaultPlan.parse("registry.publish.link=raise@1", seed=CHAOS_SEED)
        with faults.armed(plan), pytest.raises(InjectedFault):
            registry.publish(self.KEY, _trained_model(seed=2))

        entry_dir = root / self.KEY.slug
        assert len(list(entry_dir.glob(".tmp-*"))) == 1  # the torn artifact
        before = _count("registry.quarantined")

        # A fresh open is the crash-recovery point.
        recovered = ModelRegistry(root)
        assert registry.versions(self.KEY) == [1]
        model, version = recovered.load(self.KEY)
        assert version == 1
        assert not list(entry_dir.glob(".tmp-*"))
        assert len(list((entry_dir / QUARANTINE_DIR).iterdir())) == 1
        assert _count("registry.quarantined") == before + 1

    def test_corrupt_latest_manifest_falls_back_to_predecessor(self, tmp_path):
        root = tmp_path / "registry"
        registry = ModelRegistry(root)
        registry.publish(self.KEY, _trained_model(seed=1))
        registry.publish(self.KEY, _trained_model(seed=2))
        (root / self.KEY.slug / "v000002.json").write_text("{ torn mid-write")

        fresh = ModelRegistry(root)  # no cache: must read the torn bytes
        model, version = fresh.load(self.KEY)
        assert version == 1
        assert fresh.versions(self.KEY) == [1]  # v2 quarantined, not served
        assert len(list((root / self.KEY.slug / QUARANTINE_DIR).iterdir())) == 1


# -- the acceptance bar: GA survives killed workers bit-identically --------------------


class TestShardFleetChaos:
    def test_shard_kill_midload_zero_failed_client_requests(self, tmp_path):
        """The sharded acceptance bar: a worker killed mid-load (the
        ``shard.request=kill`` site, armed before the fork so the shared
        hit counter spans the fleet) costs ZERO failed client requests —
        retries ride out the crash, the supervisor respawns the shard,
        and the fleet ends at full strength."""
        import threading

        from repro.serve import build_sharded_service

        plan = FaultPlan.parse("shard.request=kill@25", seed=CHAOS_SEED)
        supervisor = build_sharded_service(
            demo_dataset(seed=0),
            tmp_path / "registry",
            n_shards=3,
            generations=1,
            population_size=6,
        )
        deaths_before = _count("shard.worker_deaths")
        failures = []
        with faults.armed(plan):
            supervisor.start()
            try:

                def drive(worker_id: int) -> None:
                    try:
                        with ServeClient(
                            port=supervisor.port,
                            timeout=5.0,
                            retry=FAST_RETRY.derive(worker_id),
                        ) as client:
                            for _ in range(40):
                                reply = client.predict_row(
                                    [1.0, 0.5, 0.2, 1.0, 1.5]
                                )
                                assert reply["ok"]
                    except Exception as exc:
                        failures.append((worker_id, repr(exc)))

                workers = [
                    threading.Thread(target=drive, args=(i,)) for i in range(4)
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join(120)

                assert failures == [], failures[:3]
                # Exactly one kill fired, fleet-wide (the counter lives in
                # shared memory, so the parent sees the worker's hits).
                assert sum(plan.injected_counts()) == 1

                # The supervisor noticed the death and respawned.
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    if (
                        supervisor.respawns >= 1
                        and _count("shard.worker_deaths") >= deaths_before + 1
                    ):
                        with supervisor._handles_lock:
                            live = sum(
                                1
                                for h in supervisor._handles.values()
                                if h.process.is_alive()
                            )
                        if live == 3:
                            break
                    time.sleep(0.05)
                else:
                    pytest.fail("killed shard was not respawned in time")
            finally:
                # Stats/drain frames also hit shard.request; scrape with
                # the plan disarmed so bookkeeping cannot re-inject.
                faults.disarm()
        stats = supervisor.fleet_stats()
        try:
            assert stats["live"] == 3
            assert stats["respawns"] >= 1
        finally:
            supervisor.drain()


class TestGeneticSearchUnderWorkerDeath:
    def test_kill_one_worker_per_generation_bit_identical(self):
        """The ISSUE's acceptance criterion: a GA run whose fault plan
        kills a worker mid-chunk yields the same best chromosome (and the
        same per-generation history) as the fault-free serial run."""
        ds = demo_dataset(n_apps=2, n_per_app=20, seed=CHAOS_SEED)
        serial = GeneticSearch(population_size=8, seed=3, n_workers=1).run(
            ds, generations=2
        )

        before_deaths = _count("parallel.worker_deaths")
        plan = FaultPlan.parse("engine.evaluate_chunk=kill@1,4", seed=CHAOS_SEED)
        with faults.armed(plan):
            chaotic = GeneticSearch(population_size=8, seed=3, n_workers=2).run(
                ds, generations=2
            )

        assert sum(plan.injected_counts()) >= 1
        assert _count("parallel.worker_deaths") >= before_deaths + 1
        assert chaotic.best_chromosome == serial.best_chromosome
        assert chaotic.best_fitness == serial.best_fitness
        assert chaotic.history == serial.history
